//! Textual, per-function listing of a VDG — the IR-dump counterpart of
//! the Graphviz export in [`crate::dot`]. Lines look like
//!
//! ```text
//! fn sum:
//!   n12: o15:store, o16:int = entry<sum>
//!   n14: o18:value = lookup* (o17, o15)
//! ```

use crate::graph::{Graph, NodeId, NodeKind, VFuncId, ValueKind};
use std::fmt::Write as _;

/// Renders the whole graph grouped by function.
pub fn to_text(g: &Graph) -> String {
    let owner = owner_map(g);
    let mut out = String::new();
    for f in g.func_ids() {
        let _ = writeln!(out, "fn {}:", g.func(f).name);
        for (id, _) in g.nodes() {
            if owner[id.0 as usize] == f {
                let _ = writeln!(out, "  {}", node_line(g, id));
            }
        }
    }
    out
}

/// Renders one node as `nID: outputs = op (inputs)`.
pub fn node_line(g: &Graph, id: NodeId) -> String {
    let n = g.node(id);
    let outs: Vec<String> = n
        .outputs
        .iter()
        .map(|&o| format!("o{}:{}", o.0, kind_str(g.output(o).kind)))
        .collect();
    let ins: Vec<String> = (0..n.inputs.len())
        .map(|p| format!("o{}", g.input_src(id, p).0))
        .collect();
    let mut s = format!("n{}: ", id.0);
    if !outs.is_empty() {
        s.push_str(&outs.join(", "));
        s.push_str(" = ");
    }
    s.push_str(&op_str(g, &n.kind));
    if !ins.is_empty() {
        s.push_str(" (");
        s.push_str(&ins.join(", "));
        s.push(')');
    }
    s
}

fn kind_str(k: ValueKind) -> &'static str {
    match k {
        ValueKind::Store => "store",
        ValueKind::Ptr => "ptr",
        ValueKind::Func => "fn",
        ValueKind::Agg { has_ptr: true } => "agg+ptr",
        ValueKind::Agg { has_ptr: false } => "agg",
        ValueKind::Scalar => "scalar",
    }
}

fn op_str(g: &Graph, kind: &NodeKind) -> String {
    match kind {
        NodeKind::Base(b) => format!("&{}", g.base(*b).display()),
        NodeKind::Alloc(b) => format!("alloc {}", g.base(*b).display()),
        NodeKind::FuncConst(b) => format!("fnconst {}", g.base(*b).display()),
        NodeKind::InitStore => "initstore".into(),
        NodeKind::ScalarConst => "const".into(),
        NodeKind::NullConst => "null".into(),
        NodeKind::Member(f) => format!("member .{}", g.field_name(*f)),
        NodeKind::IndexElem => "index [*]".into(),
        NodeKind::PassThrough => "ptr-arith".into(),
        NodeKind::ExtractField(f) => format!("extract .{}", g.field_name(*f)),
        NodeKind::ExtractElem => "extract [*]".into(),
        NodeKind::Primop => "primop".into(),
        NodeKind::Gamma => "gamma".into(),
        NodeKind::Lookup { indirect } => {
            if *indirect {
                "lookup*".into()
            } else {
                "lookup".into()
            }
        }
        NodeKind::Update { indirect } => {
            if *indirect {
                "update*".into()
            } else {
                "update".into()
            }
        }
        NodeKind::Call => "call".into(),
        NodeKind::Return { func } => format!("return<{}>", g.func(*func).name),
        NodeKind::Entry { func } => format!("entry<{}>", g.func(*func).name),
        NodeKind::CopyMem => "copymem".into(),
        NodeKind::Free => "free".into(),
    }
}

/// Node ownership by function, derived from the builder's contiguous
/// per-function layout (entry node first).
pub fn owner_map(g: &Graph) -> Vec<VFuncId> {
    let mut entries: Vec<(u32, VFuncId)> = g.func_ids().map(|f| (g.func(f).entry.0, f)).collect();
    entries.sort_unstable();
    let mut owner = vec![g.root(); g.node_count()];
    for (i, &(start, f)) in entries.iter().enumerate() {
        let end = entries
            .get(i + 1)
            .map(|&(s, _)| s)
            .unwrap_or(g.node_count() as u32);
        for id in start..end {
            owner[id as usize] = f;
        }
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{lower, BuildOptions};

    #[test]
    fn listing_covers_every_node_and_function() {
        let p = cfront::compile(
            "int g;\n\
             int *addr(void) { return &g; }\n\
             int main(void) { return *(addr()); }",
        )
        .unwrap();
        let graph = lower(&p, &BuildOptions::default()).unwrap();
        let text = to_text(&graph);
        assert!(text.contains("fn addr:"));
        assert!(text.contains("fn main:"));
        assert!(text.contains("fn <root>:"));
        for (id, _) in graph.nodes() {
            assert!(text.contains(&format!("n{}:", id.0)), "missing node {id}");
        }
        assert!(text.contains("lookup*"), "the indirect read shows");
        assert!(text.contains("&g"), "the address constant shows");
    }

    #[test]
    fn node_line_shapes() {
        let p =
            cfront::compile("int main(void) { int a; int *p; p = &a; *p = 1; return a; }").unwrap();
        let graph = lower(&p, &BuildOptions::default()).unwrap();
        let update = graph
            .nodes()
            .find(|(_, n)| matches!(n.kind, NodeKind::Update { indirect: true }))
            .map(|(id, _)| id)
            .unwrap();
        let line = node_line(&graph, update);
        assert!(line.contains("update*"), "{line}");
        assert!(line.contains(":store ="), "{line}");
        assert!(line.matches(", o").count() >= 1, "three inputs: {line}");
    }
}
