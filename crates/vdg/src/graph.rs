//! The Value Dependence Graph (VDG) data model.
//!
//! Computation is expressed by nodes that consume input values (outputs of
//! other nodes) and produce output values \[WCES94\]. Memory accesses —
//! direct and indirect alike — are uniform `lookup` and `update` operations
//! over explicit store values; calls and returns connect function graphs.
//! Non-addressed scalar locals never touch the store (the SSA-like
//! transformation the paper credits in §5.1.1).

use cfront::ast::ExprId;
use cfront::Span;
use std::collections::HashMap;
use std::fmt;

/// Node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Output index (program-wide, across all nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutputId(pub u32);

/// Input index (program-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputId(pub u32);

/// Function index within the graph. User functions come first, in
/// `cfront::ast::FuncId` order; the synthetic root (global initialization
/// plus the call to `main`) is last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VFuncId(pub u32);

/// Base-location index (paper §2: one per variable, one per static heap
/// allocation site, plus string literals and functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BaseId(pub u32);

/// Interned struct/union field name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

/// The kind of value an output carries; drives the Figure 2 "alias-related
/// outputs" statistic and the Figure 3 / Figure 6 per-type pair counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// A store (memory state) value.
    Store,
    /// A data pointer value.
    Ptr,
    /// A function value (function constants and loaded function pointers).
    Func,
    /// An aggregate value; `has_ptr` records whether it can transitively
    /// contain pointers or function values.
    Agg {
        /// Whether the aggregate can transitively hold pointers.
        has_ptr: bool,
    },
    /// A non-pointer scalar. Never carries points-to pairs.
    Scalar,
}

impl ValueKind {
    /// Whether outputs of this kind can carry pointer or function values
    /// (the Figure 2 definition of an alias-related output).
    pub fn is_alias_related(self) -> bool {
        matches!(
            self,
            ValueKind::Store | ValueKind::Ptr | ValueKind::Func | ValueKind::Agg { has_ptr: true }
        )
    }
}

/// What a base-location names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseKind {
    /// A global variable.
    Global {
        /// The variable's name.
        name: String,
    },
    /// A local variable or parameter. `weak` is set for locals of
    /// recursive procedures whose address escapes (paper §3.1 footnote 4)
    /// under the `Weak` scheme, and for the "older instances" base under
    /// the `Cooper` scheme.
    Local {
        /// The owning function.
        func: VFuncId,
        /// The variable's name (unique per slot, not per name).
        name: String,
    },
    /// A heap allocation site (static occurrence of `malloc` etc.).
    Heap {
        /// A human-readable site label (`func:builtin#n`).
        site: String,
    },
    /// Storage of a string literal (global, read-only in spirit).
    StrLit {
        /// Sequence number of the literal within the program.
        index: u32,
    },
    /// A function, as the referent of function values.
    Func {
        /// The named function.
        func: VFuncId,
    },
}

/// A base-location: its kind plus updateability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseInfo {
    /// What this base names.
    pub kind: BaseKind,
    /// Whether this base denotes at most one runtime location, making
    /// paths rooted here candidates for strong updates.
    pub single_instance: bool,
    /// Under the Cooper scheme, the companion base denoting all *older*
    /// stack instances of a recursive-addressed local; the primary base
    /// then denotes the most recent instance.
    pub cooper_older: Option<BaseId>,
    /// For heap and string-literal bases: the AST expression of the
    /// allocation/literal, used by the interpreter oracle to correlate
    /// concrete and abstract storage.
    pub site_expr: Option<ExprId>,
}

impl BaseInfo {
    /// Display name for diagnostics and table output.
    pub fn display(&self) -> String {
        match &self.kind {
            BaseKind::Global { name } => name.clone(),
            BaseKind::Local { name, .. } => {
                if self.cooper_older.is_some() {
                    format!("{name}@recent")
                } else {
                    name.clone()
                }
            }
            BaseKind::Heap { site } => format!("heap:{site}"),
            BaseKind::StrLit { index } => format!("str#{index}"),
            BaseKind::Func { .. } => "fn".to_string(),
        }
    }
}

/// Node operation kinds. See module docs; transfer functions live in the
/// `alias` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Address constant `&base`; output `{(ε, base)}`.
    Base(BaseId),
    /// Heap allocation site; output `{(ε, heap-base)}`.
    Alloc(BaseId),
    /// Function constant; output `{(ε, fn-base)}`.
    FuncConst(BaseId),
    /// The empty store at program entry.
    InitStore,
    /// A pointer-free constant (integer literals, `sizeof`).
    ScalarConst,
    /// The null pointer: a pointer output with no pairs (paper Fig. 4
    /// footnote: such reads reference zero locations).
    NullConst,
    /// Struct field address: `in ptr -> out ptr`, extending the referent
    /// path with `.field`. Union member accesses are identities and never
    /// produce this node.
    Member(FieldId),
    /// Array element address: extends the referent path with `[*]`.
    IndexElem,
    /// Pointer-preserving arithmetic (`p+i`, pointer casts): pairs of
    /// input 0 pass through; further inputs are ignored.
    PassThrough,
    /// Extracts a field from an aggregate *value* (prefix-subtracts
    /// `.field` from pair paths).
    ExtractField(FieldId),
    /// Extracts an element from an aggregate value (prefix-subtracts `[*]`).
    ExtractElem,
    /// Scalar primitive operation; consumes values, emits no pairs.
    Primop,
    /// Control-flow merge; the union of its inputs (predicates are ignored,
    /// paper Fig. 1 `if` rule).
    Gamma,
    /// Store read: `inputs [loc, store] -> output value`. `indirect` marks
    /// reads through a computed pointer (the Figure 4 population).
    Lookup {
        /// Read through a computed pointer rather than a named variable.
        indirect: bool,
    },
    /// Store write: `inputs [loc, store, value] -> output store`.
    Update {
        /// Write through a computed pointer rather than a named variable.
        indirect: bool,
    },
    /// Call: `inputs [func, store, actuals..] -> outputs [store, result?]`.
    Call,
    /// Return: `inputs [store, value?]`; no outputs. Terminates `func`.
    Return {
        /// The function this node terminates.
        func: VFuncId,
    },
    /// Function entry: `outputs [store, params..]`.
    Entry {
        /// The function whose formals these outputs are.
        func: VFuncId,
    },
    /// `memcpy`-style library model: `inputs [store, dst, src] -> store`.
    /// Store pairs under `src`'s referents are re-rooted under `dst`'s.
    CopyMem,
    /// `free(p)`: `inputs [ptr, store] -> output store`. The store passes
    /// through unchanged — deallocation does not change what locations
    /// hold — but the node records the kill-set (the pointer input's
    /// referents) the memory-safety checkers read, analogous to how
    /// strong updates read `Update` location sets.
    Free,
}

/// A node: kind, ports, and provenance.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operation.
    pub kind: NodeKind,
    /// Input ports, in operand order.
    pub inputs: Vec<InputId>,
    /// Output ports.
    pub outputs: Vec<OutputId>,
    /// Source range of the originating construct.
    pub span: Span,
    /// The AST expression that generated this node, when meaningful; used
    /// by the interpreter oracle to correlate concrete and abstract
    /// dereferences.
    pub site: Option<ExprId>,
}

/// Metadata of an output port.
#[derive(Debug, Clone, Copy)]
pub struct OutputInfo {
    /// The producing node.
    pub node: NodeId,
    /// The kind of value carried.
    pub kind: ValueKind,
}

/// Metadata of an input port.
#[derive(Debug, Clone, Copy)]
pub struct InputInfo {
    /// The consuming node.
    pub node: NodeId,
    /// Position within the node's input list.
    pub port: u32,
    /// The output feeding this input.
    pub src: OutputId,
}

/// A `spawn` site in `main` under the SC thread model.
#[derive(Debug, Clone)]
pub struct SpawnInfo {
    /// The spawned call's [`NodeKind::Call`] node.
    pub node: NodeId,
    /// The underlying call expression ([`cfront::ast::ExprKind::Call`]),
    /// anchoring diagnostics and oracle traces.
    pub site: ExprId,
    /// Span of the `spawn` keyword.
    pub span: Span,
    /// The spawned thread's entry function.
    pub callee: VFuncId,
}

/// The program's static thread structure: spawn sites, a per-expression
/// pending-spawn mask over `main`, and a spawn-site may-happen-in-parallel
/// relation. Spawn sites are numbered in source order and capped at 64 so
/// pending sets fit a `u64` bitmask.
///
/// The pending-set analysis is a structural walk of `main`: `spawn` adds
/// its site's bit, `join` (a join-all barrier) clears the set, branches
/// union their arms, and loops run to a fixpoint. It over-approximates
/// which spawned threads may still be live at each point, so the race
/// checker's MHP relation is sound (never misses a concurrent pair).
#[derive(Debug, Clone, Default)]
pub struct ThreadModel {
    /// Spawn sites of `main`, in source order.
    pub spawns: Vec<SpawnInfo>,
    /// For each expression of `main`, the bitmask of spawn sites whose
    /// threads may still be running when the expression executes.
    pub pending_at: HashMap<ExprId, u64>,
    /// `mhp[i]` is the bitmask of spawn sites that may run in parallel
    /// with site `i`. Bit `i` itself set means two instances of the same
    /// site may overlap (a respawn in a loop without an intervening join).
    pub mhp: Vec<u64>,
}

impl ThreadModel {
    /// Whether the program spawns any threads.
    pub fn uses_threads(&self) -> bool {
        !self.spawns.is_empty()
    }

    /// Whether spawn sites `i` and `j` may run in parallel.
    pub fn spawns_mhp(&self, i: usize, j: usize) -> bool {
        self.mhp.get(i).is_some_and(|m| m & (1u64 << j) != 0)
    }

    /// The pending-spawn mask at an expression of `main` (0 when the
    /// expression is not in `main` or no spawn is live there).
    pub fn pending(&self, e: ExprId) -> u64 {
        self.pending_at.get(&e).copied().unwrap_or(0)
    }
}

/// Per-function information.
#[derive(Debug, Clone)]
pub struct FuncInfo {
    /// Source-level name (`<root>` for the synthetic root).
    pub name: String,
    /// The function's [`NodeKind::Entry`] node.
    pub entry: NodeId,
    /// All of its [`NodeKind::Return`] nodes.
    pub returns: Vec<NodeId>,
    /// Whether the function's address is taken anywhere (candidates for
    /// indirect calls).
    pub address_taken: bool,
}

/// The whole-program Value Dependence Graph.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    outputs: Vec<OutputInfo>,
    inputs: Vec<InputInfo>,
    consumers: Vec<Vec<InputId>>,
    bases: Vec<BaseInfo>,
    fields: Vec<String>,
    field_map: HashMap<String, FieldId>,
    funcs: Vec<FuncInfo>,
    /// `reach[f]` holds the functions transitively callable from `f`
    /// under the conservative call graph (direct calls plus, for indirect
    /// calls, every address-taken function).
    reach: Vec<Vec<bool>>,
    /// Base of each global variable, by `GlobalId` index.
    global_bases: Vec<BaseId>,
    /// Base of each store-resident local: `(func, slot)` -> base.
    local_bases: HashMap<(u32, u32), BaseId>,
    /// Static thread structure (empty for sequential programs).
    thread_model: ThreadModel,
}

impl Graph {
    /// Creates an empty graph (used by the builder).
    pub fn new() -> Self {
        Self::default()
    }

    // ----- construction (used by `crate::build`) ---------------------------

    /// Adds a node with the given output kinds; inputs are attached
    /// afterwards with [`Graph::add_input`].
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        out_kinds: &[ValueKind],
        span: Span,
        site: Option<ExprId>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let mut outs = Vec::with_capacity(out_kinds.len());
        for &k in out_kinds {
            let oid = OutputId(self.outputs.len() as u32);
            self.outputs.push(OutputInfo { node: id, kind: k });
            self.consumers.push(Vec::new());
            outs.push(oid);
        }
        self.nodes.push(Node {
            kind,
            inputs: Vec::new(),
            outputs: outs,
            span,
            site,
        });
        id
    }

    /// Wires `src` into the next input port of `node`.
    pub fn add_input(&mut self, node: NodeId, src: OutputId) -> InputId {
        let iid = InputId(self.inputs.len() as u32);
        let port = self.nodes[node.0 as usize].inputs.len() as u32;
        self.inputs.push(InputInfo { node, port, src });
        self.nodes[node.0 as usize].inputs.push(iid);
        self.consumers[src.0 as usize].push(iid);
        iid
    }

    /// Registers a base-location.
    pub fn add_base(&mut self, info: BaseInfo) -> BaseId {
        let id = BaseId(self.bases.len() as u32);
        self.bases.push(info);
        id
    }

    /// Interns a field name.
    pub fn intern_field(&mut self, name: &str) -> FieldId {
        if let Some(&id) = self.field_map.get(name) {
            return id;
        }
        let id = FieldId(self.fields.len() as u32);
        self.fields.push(name.to_string());
        self.field_map.insert(name.to_string(), id);
        id
    }

    /// Registers a function record; the builder fills entry/returns.
    pub fn add_func(&mut self, info: FuncInfo) -> VFuncId {
        let id = VFuncId(self.funcs.len() as u32);
        self.funcs.push(info);
        id
    }

    /// Mutable access for the builder.
    pub fn func_mut(&mut self, f: VFuncId) -> &mut FuncInfo {
        &mut self.funcs[f.0 as usize]
    }

    /// Installs the conservative reachability matrix (builder).
    pub fn set_reach(&mut self, reach: Vec<Vec<bool>>) {
        self.reach = reach;
    }

    /// Installs the variable base maps (builder).
    pub fn set_var_bases(
        &mut self,
        global_bases: Vec<BaseId>,
        local_bases: HashMap<(u32, u32), BaseId>,
    ) {
        self.global_bases = global_bases;
        self.local_bases = local_bases;
    }

    /// Installs the thread model (builder).
    pub fn set_thread_model(&mut self, tm: ThreadModel) {
        self.thread_model = tm;
    }

    /// The program's static thread structure.
    pub fn thread_model(&self) -> &ThreadModel {
        &self.thread_model
    }

    /// The base-location of a global variable.
    pub fn global_base(&self, g: u32) -> BaseId {
        self.global_bases[g as usize]
    }

    /// The base-location of a store-resident local, if any.
    pub fn local_base(&self, func: VFuncId, slot: u32) -> Option<BaseId> {
        self.local_bases.get(&(func.0, slot)).copied()
    }

    // ----- accessors --------------------------------------------------------

    /// The node table.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes (Figure 2, "VDG nodes").
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Output metadata.
    pub fn output(&self, id: OutputId) -> OutputInfo {
        self.outputs[id.0 as usize]
    }

    /// Number of outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Iterates all outputs.
    pub fn output_ids(&self) -> impl Iterator<Item = OutputId> {
        (0..self.outputs.len() as u32).map(OutputId)
    }

    /// Input metadata.
    pub fn input(&self, id: InputId) -> InputInfo {
        self.inputs[id.0 as usize]
    }

    /// The inputs consuming `out`.
    pub fn consumers(&self, out: OutputId) -> &[InputId] {
        &self.consumers[out.0 as usize]
    }

    /// The output feeding input port `port` of `node`.
    pub fn input_src(&self, node: NodeId, port: usize) -> OutputId {
        let iid = self.nodes[node.0 as usize].inputs[port];
        self.inputs[iid.0 as usize].src
    }

    /// Whether `node` has an input at `port` (variadic nodes).
    pub fn has_input(&self, node: NodeId, port: usize) -> bool {
        self.nodes[node.0 as usize].inputs.len() > port
    }

    /// Base-location metadata.
    pub fn base(&self, id: BaseId) -> &BaseInfo {
        &self.bases[id.0 as usize]
    }

    /// Number of base-locations.
    pub fn base_count(&self) -> usize {
        self.bases.len()
    }

    /// Iterates base ids.
    pub fn base_ids(&self) -> impl Iterator<Item = BaseId> {
        (0..self.bases.len() as u32).map(BaseId)
    }

    /// Field name of an interned field.
    pub fn field_name(&self, id: FieldId) -> &str {
        &self.fields[id.0 as usize]
    }

    /// Looks up an interned field by name (None if no member access ever
    /// touched it).
    pub fn field_id(&self, name: &str) -> Option<FieldId> {
        self.field_map.get(name).copied()
    }

    /// Function metadata.
    pub fn func(&self, id: VFuncId) -> &FuncInfo {
        &self.funcs[id.0 as usize]
    }

    /// Number of functions (including the synthetic root).
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Iterates function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = VFuncId> {
        (0..self.funcs.len() as u32).map(VFuncId)
    }

    /// The synthetic root function (always last).
    pub fn root(&self) -> VFuncId {
        VFuncId(self.funcs.len() as u32 - 1)
    }

    /// Whether `from` can transitively call `to` (conservative).
    pub fn can_reach(&self, from: VFuncId, to: VFuncId) -> bool {
        self.reach
            .get(from.0 as usize)
            .and_then(|r| r.get(to.0 as usize).copied())
            .unwrap_or(true)
    }

    /// Whether `f` sits on a call-graph cycle (conservatively).
    pub fn is_recursive(&self, f: VFuncId) -> bool {
        self.can_reach(f, f)
    }

    // ----- derived statistics ----------------------------------------------

    /// Count of alias-related outputs (Figure 2).
    pub fn alias_related_output_count(&self) -> usize {
        self.outputs
            .iter()
            .filter(|o| o.kind.is_alias_related())
            .count()
    }

    /// All indirect memory operations: `(node, is_write)` (Figure 4
    /// population).
    pub fn indirect_mem_ops(&self) -> Vec<(NodeId, bool)> {
        self.nodes()
            .filter_map(|(id, n)| match n.kind {
                NodeKind::Lookup { indirect: true } => Some((id, false)),
                NodeKind::Update { indirect: true } => Some((id, true)),
                _ => None,
            })
            .collect()
    }

    /// All memory operations, direct and indirect.
    pub fn all_mem_ops(&self) -> Vec<(NodeId, bool)> {
        self.nodes()
            .filter_map(|(id, n)| match n.kind {
                NodeKind::Lookup { .. } => Some((id, false)),
                NodeKind::Update { .. } => Some((id, true)),
                _ => None,
            })
            .collect()
    }

    /// Basic structural validation; called by the builder in debug builds
    /// and by tests.
    pub fn validate(&self) -> Result<(), String> {
        for (id, n) in self.nodes() {
            let arity: Option<usize> = match n.kind {
                NodeKind::Base(_)
                | NodeKind::Alloc(_)
                | NodeKind::FuncConst(_)
                | NodeKind::InitStore
                | NodeKind::ScalarConst
                | NodeKind::NullConst
                | NodeKind::Entry { .. } => Some(0),
                NodeKind::Member(_)
                | NodeKind::IndexElem
                | NodeKind::ExtractField(_)
                | NodeKind::ExtractElem => Some(1),
                NodeKind::Lookup { .. } => Some(2),
                NodeKind::Free => Some(2),
                NodeKind::Update { .. } => Some(3),
                NodeKind::CopyMem => Some(3),
                NodeKind::PassThrough | NodeKind::Primop | NodeKind::Gamma => None,
                NodeKind::Call => None,
                NodeKind::Return { .. } => None,
            };
            if let Some(a) = arity {
                if n.inputs.len() != a {
                    return Err(format!(
                        "node {id:?} ({:?}) expects {a} inputs, has {}",
                        n.kind,
                        n.inputs.len()
                    ));
                }
            }
            if matches!(n.kind, NodeKind::Gamma) && n.inputs.is_empty() {
                return Err(format!("gamma {id:?} has no inputs"));
            }
            if matches!(n.kind, NodeKind::Return { .. }) && !n.outputs.is_empty() {
                return Err(format!("return {id:?} has outputs"));
            }
            for &iid in &n.inputs {
                if self.inputs[iid.0 as usize].node != id {
                    return Err(format!("input {iid:?} does not point back to {id:?}"));
                }
            }
        }
        for f in self.func_ids() {
            let fi = self.func(f);
            if !matches!(self.node(fi.entry).kind, NodeKind::Entry { .. }) {
                return Err(format!("function {} entry is not an Entry node", fi.name));
            }
        }
        Ok(())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for OutputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wiring_updates_consumers() {
        let mut g = Graph::new();
        let a = g.add_node(
            NodeKind::ScalarConst,
            &[ValueKind::Scalar],
            Span::dummy(),
            None,
        );
        let b = g.add_node(NodeKind::Primop, &[ValueKind::Scalar], Span::dummy(), None);
        let out = g.node(a).outputs[0];
        let iid = g.add_input(b, out);
        assert_eq!(g.consumers(out), &[iid]);
        assert_eq!(g.input(iid).node, b);
        assert_eq!(g.input(iid).port, 0);
        assert_eq!(g.input_src(b, 0), out);
    }

    #[test]
    fn alias_related_kinds() {
        assert!(ValueKind::Store.is_alias_related());
        assert!(ValueKind::Ptr.is_alias_related());
        assert!(ValueKind::Func.is_alias_related());
        assert!(ValueKind::Agg { has_ptr: true }.is_alias_related());
        assert!(!ValueKind::Agg { has_ptr: false }.is_alias_related());
        assert!(!ValueKind::Scalar.is_alias_related());
    }

    #[test]
    fn field_interning() {
        let mut g = Graph::new();
        let f1 = g.intern_field("next");
        let f2 = g.intern_field("next");
        let f3 = g.intern_field("prev");
        assert_eq!(f1, f2);
        assert_ne!(f1, f3);
        assert_eq!(g.field_name(f1), "next");
    }

    #[test]
    fn validate_catches_bad_arity() {
        let mut g = Graph::new();
        g.add_node(
            NodeKind::Lookup { indirect: false },
            &[ValueKind::Scalar],
            Span::dummy(),
            None,
        );
        assert!(g.validate().is_err());
    }
}
