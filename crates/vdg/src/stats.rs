//! Graph-level statistics: the size columns of the paper's Figure 2.

use crate::graph::{Graph, NodeKind};

/// The Figure 2 row for one program: source lines, VDG nodes, and
/// alias-related outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeStats {
    /// Non-blank source lines.
    pub lines: usize,
    /// Total VDG nodes.
    pub nodes: usize,
    /// Outputs that can carry pointer or function values (pointer,
    /// function, pointer-bearing aggregate, or store type).
    pub alias_related_outputs: usize,
}

/// Computes the Figure 2 row for `graph`, given the program's source text.
pub fn size_stats(graph: &Graph, source: &str) -> SizeStats {
    SizeStats {
        lines: source.lines().filter(|l| !l.trim().is_empty()).count(),
        nodes: graph.node_count(),
        alias_related_outputs: graph.alias_related_output_count(),
    }
}

/// A breakdown of node kinds, useful for debugging graph construction and
/// for the repository's own sanity tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeBreakdown {
    /// Reads of named variables.
    pub lookups_direct: usize,
    /// Reads through computed pointers.
    pub lookups_indirect: usize,
    /// Writes to named variables.
    pub updates_direct: usize,
    /// Writes through computed pointers.
    pub updates_indirect: usize,
    /// Call nodes.
    pub calls: usize,
    /// Merge nodes.
    pub gammas: usize,
    /// Everything else (constants, address computations, primops...).
    pub other: usize,
}

/// Counts node kinds.
pub fn node_breakdown(graph: &Graph) -> NodeBreakdown {
    let mut b = NodeBreakdown::default();
    for (_, n) in graph.nodes() {
        match n.kind {
            NodeKind::Lookup { indirect: false } => b.lookups_direct += 1,
            NodeKind::Lookup { indirect: true } => b.lookups_indirect += 1,
            NodeKind::Update { indirect: false } => b.updates_direct += 1,
            NodeKind::Update { indirect: true } => b.updates_indirect += 1,
            NodeKind::Call => b.calls += 1,
            NodeKind::Gamma => b.gammas += 1,
            _ => b.other += 1,
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{lower, BuildOptions};

    #[test]
    fn stats_count_nodes_and_outputs() {
        let src = "int g;\nint main(void) { int *p; p = &g; *p = 3; return g; }\n";
        let prog = cfront::compile(src).expect("compiles");
        let graph = lower(&prog, &BuildOptions::default()).expect("lowers");
        let s = size_stats(&graph, src);
        assert_eq!(s.lines, 2);
        assert!(s.nodes > 5);
        assert!(s.alias_related_outputs > 0);
        let b = node_breakdown(&graph);
        assert_eq!(b.updates_indirect, 1, "{b:?}");
        assert_eq!(b.lookups_direct, 1, "{b:?}"); // `return g`
        assert_eq!(b.calls, 1); // root calls main
    }
}
