//! # vdg — Value Dependence Graph IR
//!
//! The intermediate representation of the Ruf (PLDI 1995) reproduction.
//! A VDG \[WCES94\] expresses computation as nodes consuming and producing
//! values; memory state is an explicit *store* value threaded through
//! `lookup`/`update` nodes, and non-addressed scalar locals never touch
//! the store. The alias analyses in the `alias` crate run directly over
//! this graph.
//!
//! ```
//! use vdg::build::{lower, BuildOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = cfront::compile("int g; int main(void) { int *p; p = &g; return *p; }")?;
//! let graph = lower(&program, &BuildOptions::default())?;
//! assert_eq!(graph.indirect_mem_ops().len(), 1); // the `*p` read
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod display;
pub mod dot;
pub mod graph;
pub mod stats;

pub use build::{lower, BuildOptions, RecLocalScheme};
pub use graph::{
    BaseId, BaseInfo, BaseKind, FieldId, Graph, InputId, Node, NodeId, NodeKind, OutputId,
    SpawnInfo, ThreadModel, VFuncId, ValueKind,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn build(src: &str) -> Graph {
        let p = cfront::compile(src).expect("compiles");
        lower(&p, &BuildOptions::default()).expect("lowers")
    }

    #[test]
    fn direct_and_indirect_ops_distinguished() {
        let g = build(
            "int g; int a[4];\n\
             int main(void) { int *p; p = &g; *p = 1; g = 2; a[0] = 3; return p[0]; }",
        );
        let indirect = g.indirect_mem_ops();
        // `*p = 1` (write) and `p[0]` (read).
        assert_eq!(indirect.len(), 2);
        let all = g.all_mem_ops();
        assert!(all.len() > indirect.len());
    }

    #[test]
    fn register_locals_produce_no_memory_traffic() {
        let g = build("int main(void) { int a; int b; a = 1; b = a + 2; return b; }");
        assert!(g.all_mem_ops().is_empty());
    }

    #[test]
    fn addressed_locals_are_store_resident() {
        let g = build("int main(void) { int a; int *p; p = &a; a = 1; return *p; }");
        // `a = 1` is a direct update; `*p` is an indirect lookup.
        let ops = g.all_mem_ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(g.indirect_mem_ops().len(), 1);
    }

    #[test]
    fn loops_create_cycles() {
        let g = build(
            "int main(void) { int i; int s; s = 0; \
             for (i = 0; i < 10; i++) { s += i; } return s; }",
        );
        // There must be at least one gamma with an input sourced from a
        // node with a higher id (the back edge).
        let mut has_back_edge = false;
        for (id, n) in g.nodes() {
            if matches!(n.kind, NodeKind::Gamma) {
                for &iid in &n.inputs {
                    let src_node = g.output(g.input(iid).src).node;
                    if src_node.0 > id.0 {
                        has_back_edge = true;
                    }
                }
            }
        }
        assert!(has_back_edge);
    }

    #[test]
    fn recursion_detected() {
        let g = build(
            "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }\n\
             int main(void) { return fact(5); }",
        );
        let fact = VFuncId(0);
        let main = VFuncId(1);
        assert!(g.is_recursive(fact));
        assert!(!g.is_recursive(main));
        assert!(g.can_reach(main, fact));
        assert!(!g.can_reach(fact, main));
    }

    #[test]
    fn address_taken_functions_flagged() {
        let g = build(
            "int f(int x) { return x; }\n\
             int h(int x) { return x + 1; }\n\
             int main(void) { int (*fp)(int); fp = f; return fp(1) + h(2); }",
        );
        assert!(g.func(VFuncId(0)).address_taken);
        assert!(!g.func(VFuncId(1)).address_taken);
    }

    #[test]
    fn recursive_addressed_local_is_weak_by_default() {
        let g = build(
            "int walk(int n) {\n\
               int slot; int *p;\n\
               p = &slot; *p = n;\n\
               if (n > 0) return walk(n - 1);\n\
               return slot;\n\
             }\n\
             int main(void) { return walk(3); }",
        );
        let weak_local = g
            .base_ids()
            .map(|b| g.base(b))
            .find(|b| matches!(&b.kind, BaseKind::Local { name, .. } if name == "slot"))
            .expect("slot base exists");
        assert!(!weak_local.single_instance);
    }

    #[test]
    fn cooper_scheme_splits_recursive_locals() {
        let p = cfront::compile(
            "int walk(int n) { int slot; int *p; p = &slot; *p = n; \
             if (n > 0) return walk(n - 1); return slot; }\n\
             int main(void) { return walk(3); }",
        )
        .unwrap();
        let g = lower(
            &p,
            &BuildOptions {
                rec_local_scheme: RecLocalScheme::Cooper,
            },
        )
        .unwrap();
        let recent = g
            .base_ids()
            .map(|b| g.base(b))
            .find(|b| b.cooper_older.is_some())
            .expect("cooper-split base");
        assert!(recent.single_instance);
        let older = g.base(recent.cooper_older.unwrap());
        assert!(!older.single_instance);
    }

    #[test]
    fn non_recursive_addressed_locals_stay_strong() {
        let g = build("int main(void) { int a; int *p; p = &a; return *p; }");
        let a = g
            .base_ids()
            .map(|b| g.base(b))
            .find(|b| matches!(&b.kind, BaseKind::Local { name, .. } if name == "a"))
            .unwrap();
        assert!(a.single_instance);
    }

    #[test]
    fn heap_sites_one_base_per_static_call() {
        let g = build(
            "int *mk(void) { return (int*)malloc(4); }\n\
             int main(void) { int *a; int *b; a = mk(); b = mk(); \
             a = (int*)malloc(8); return *a + *b; }",
        );
        let heaps = g
            .base_ids()
            .filter(|b| matches!(g.base(*b).kind, BaseKind::Heap { .. }))
            .count();
        assert_eq!(heaps, 2); // one in mk, one in main
    }

    #[test]
    fn union_member_access_is_identity() {
        let g = build(
            "union u { int *p; int v; };\n\
             int main(void) { union u x; int a; x.p = &a; return x.v; }",
        );
        // No Member nodes should exist for union accesses.
        let members = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Member(_)))
            .count();
        assert_eq!(members, 0);
    }

    #[test]
    fn struct_member_access_creates_member_nodes() {
        let g = build(
            "struct s { int *p; int v; };\n\
             int main(void) { struct s x; int a; x.p = &a; return x.v; }",
        );
        let members = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Member(_)))
            .count();
        assert_eq!(members, 2);
    }

    #[test]
    fn rejects_main_with_params() {
        let p = cfront::compile("int main(int argc) { return argc; }").unwrap();
        let err = lower(&p, &BuildOptions::default()).unwrap_err();
        assert!(err.message.contains("main"));
    }

    #[test]
    fn rejects_builtin_as_value() {
        let p = cfront::compile("int main(void) { void *(*fp)(int); fp = malloc; return 0; }");
        // Sema types `malloc` loosely; lowering rejects the value use.
        if let Ok(p) = p {
            assert!(lower(&p, &BuildOptions::default()).is_err());
        }
    }

    #[test]
    fn graph_validates() {
        let g = build(
            "struct node { int v; struct node *next; };\n\
             struct node *rev(struct node *l) {\n\
               struct node *r; struct node *t; r = NULL;\n\
               while (l != NULL) { t = l->next; l->next = r; r = l; l = t; }\n\
               return r;\n\
             }\n\
             int main(void) { return rev(NULL) == NULL; }",
        );
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn switch_lowering_merges_states() {
        let g = build(
            "int x; int y; int z;\n\
             int main(void) { int c; int *r; c = 2; r = NULL; \
             switch (c) { case 1: r = &x; break; case 2: case 3: r = &y; break; \
             default: r = &z; break; } return *r; }",
        );
        assert_eq!(g.validate(), Ok(()));
        // r must be merged by a gamma over the case-group values plus the
        // default (the two stacked `case 2: case 3:` labels share a body).
        let max_gamma = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Gamma))
            .map(|(_, n)| n.inputs.len())
            .max()
            .unwrap_or(0);
        assert!(max_gamma >= 3, "gamma arity {max_gamma}");
    }

    #[test]
    fn do_while_lowers_with_back_edge() {
        let g = build(
            "int a; int b;\n\
             int main(void) { int *p; int n; p = &a; n = 3;\n\
               do { p = &b; n--; } while (n > 0);\n\
               return *p; }",
        );
        assert_eq!(g.validate(), Ok(()));
        let mut has_back_edge = false;
        for (id, n) in g.nodes() {
            if matches!(n.kind, NodeKind::Gamma) {
                for &iid in &n.inputs {
                    if g.output(g.input(iid).src).node.0 > id.0 {
                        has_back_edge = true;
                    }
                }
            }
        }
        assert!(has_back_edge);
    }

    #[test]
    fn break_and_continue_merge_states() {
        let g = build(
            "int a; int b; int c;\n\
             int main(void) { int *p; int i; p = &a;\n\
               for (i = 0; i < 10; i++) {\n\
                 if (i == 3) { p = &b; break; }\n\
                 if (i == 1) { continue; }\n\
                 p = &c;\n\
               }\n\
               return *p; }",
        );
        assert_eq!(g.validate(), Ok(()));
        // The final read must be reachable from a gamma merging the break
        // path; just assert the graph built and the deref exists.
        assert_eq!(g.indirect_mem_ops().len(), 1);
    }

    #[test]
    fn infinite_loop_with_break_has_no_cond_exit() {
        let g = build(
            "int main(void) { int n; n = 0;              for (;;) { n++; if (n > 3) { break; } } return n; }",
        );
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn ternary_on_pointers_creates_gamma() {
        let g = build(
            "int a; int b;\n\
             int main(void) { int c; int *p; c = getchar();\n\
               p = c ? &a : &b; return *p; }",
        );
        let gammas = g
            .nodes()
            .filter(|(_, n)| {
                matches!(n.kind, NodeKind::Gamma)
                    && matches!(g.output(n.outputs[0]).kind, ValueKind::Ptr)
            })
            .count();
        assert!(gammas >= 1);
    }

    #[test]
    fn memcpy_lowers_to_copymem() {
        let g = build(
            "struct s { int *p; };\n\
             int main(void) { struct s a; struct s b; int x; a.p = &x;\n\
               memcpy(&b, &a, sizeof(struct s)); return *(b.p); }",
        );
        let copies = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind, NodeKind::CopyMem))
            .count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn realloc_gets_fresh_site_plus_copy() {
        let g = build(
            "int main(void) { int *p; p = (int*)malloc(8);\n\
               p = (int*)realloc(p, 16); p[1] = 5; return p[1]; }",
        );
        let allocs = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Alloc(_)))
            .count();
        assert_eq!(allocs, 2);
        let copies = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind, NodeKind::CopyMem))
            .count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn init_lists_lower_elementwise() {
        let g = build(
            "int a; int b;\n\
             int *table[2] = {&a, &b};\n\
             int main(void) { return *(table[0]) + *(table[1]); }",
        );
        assert_eq!(g.validate(), Ok(()));
        // Two element updates in the root initializer.
        let updates = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Update { indirect: false }))
            .count();
        assert!(updates >= 2, "updates = {updates}");
    }

    #[test]
    fn string_literals_get_bases() {
        let g = build(
            "char *greet(void) { return \"hi\"; }\n\
             int main(void) { char *s; s = greet(); return s[0]; }",
        );
        let strs = g
            .base_ids()
            .filter(|&b| matches!(g.base(b).kind, BaseKind::StrLit { .. }))
            .count();
        assert_eq!(strs, 1);
    }

    #[test]
    fn aggregate_copy_is_lookup_then_update() {
        let g = build(
            "struct s { int *p; int v; };\n\
             int main(void) { struct s a; struct s b; int x; \
             a.p = &x; b = a; return *(b.p); }",
        );
        assert_eq!(g.validate(), Ok(()));
        // The struct copy reads all of `a` (direct lookup of agg kind).
        let agg_lookup = g.nodes().any(|(_, n)| {
            matches!(n.kind, NodeKind::Lookup { indirect: false })
                && matches!(
                    g.output(n.outputs[0]).kind,
                    ValueKind::Agg { has_ptr: true }
                )
        });
        assert!(agg_lookup);
    }

    // ----- thread model ----------------------------------------------------

    fn build_threaded(src: &str) -> (cfront::ast::Program, Graph) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        (p, g)
    }

    #[test]
    fn spawn_lowers_to_call_with_cyclic_store_gamma() {
        let (_, g) = build_threaded(
            "int g;\n\
             void w(void) { g = 2; }\n\
             int main(void) { spawn w(); g = 1; join; return g; }",
        );
        assert_eq!(g.validate(), Ok(()));
        let tm = g.thread_model();
        assert!(tm.uses_threads());
        assert_eq!(tm.spawns.len(), 1);
        // The spawned call is a real Call node whose store input is a
        // gamma, and that gamma also has a later (higher-numbered) store
        // input patched in at the join — the cross-thread cycle.
        let call = tm.spawns[0].node;
        let n = g.node(call);
        assert!(matches!(n.kind, NodeKind::Call));
        let child_in = g.output(g.input_src(call, 1)).node;
        let gamma = g.node(child_in);
        assert!(matches!(gamma.kind, NodeKind::Gamma));
        let n_gamma_inputs = gamma.inputs.len();
        assert!(
            (0..n_gamma_inputs)
                .any(|port| g.output(g.input_src(child_in, port)).node.0 > child_in.0),
            "spawn store gamma should be patched with a later store"
        );
    }

    #[test]
    fn spawn_edges_reach_the_callee_in_the_call_graph() {
        let (p, g) = build_threaded(
            "int g;\n\
             void w(void) { g = 2; }\n\
             int main(void) { spawn w(); join; return g; }",
        );
        let w = p.func_by_name("w").expect("w exists");
        let tm = g.thread_model();
        assert_eq!(tm.spawns[0].callee.0, w.0);
    }

    #[test]
    fn concurrent_spawns_are_mhp_and_join_separates() {
        let (_, g) = build_threaded(
            "int g;\n\
             void a(void) { g = 1; }\n\
             void b(void) { g = 2; }\n\
             int main(void) { spawn a(); spawn b(); join; spawn a(); join; return g; }",
        );
        let tm = g.thread_model();
        assert_eq!(tm.spawns.len(), 3);
        assert!(tm.spawns_mhp(0, 1), "both live before the join");
        assert!(tm.spawns_mhp(1, 0), "mhp is symmetric");
        assert!(!tm.spawns_mhp(0, 2), "join separates spawn 0 from spawn 2");
        assert!(!tm.spawns_mhp(1, 2));
        assert!(
            !tm.spawns_mhp(0, 0),
            "a single straight-line spawn is not self-mhp"
        );
    }

    #[test]
    fn loop_respawn_is_self_mhp() {
        let (_, g) = build_threaded(
            "int g;\n\
             void w(void) { g = g + 1; }\n\
             int main(void) { int i; for (i = 0; i < 3; i = i + 1) { spawn w(); } \
             join; return g; }",
        );
        let tm = g.thread_model();
        assert_eq!(tm.spawns.len(), 1);
        assert!(
            tm.spawns_mhp(0, 0),
            "a spawn re-entered by a loop without an intervening join overlaps itself"
        );
    }

    #[test]
    fn pending_masks_cover_main_accesses_between_spawn_and_join() {
        let (p, g) = build_threaded(
            "int g;\n\
             void w(void) { g = 2; }\n\
             int main(void) { spawn w(); g = 1; join; g = 3; return g; }",
        );
        let tm = g.thread_model();
        // Exactly the expressions between the spawn and the join carry
        // the spawn's pending bit; everything after the join is clear.
        let pending: Vec<_> = (0..p.exprs.len() as u32)
            .map(cfront::ast::ExprId)
            .filter(|&e| tm.pending(e) != 0)
            .collect();
        assert!(!pending.is_empty(), "the `g = 1` region must be pending");
        for &e in &pending {
            assert_eq!(tm.pending(e), 1, "only spawn bit 0 exists");
        }
        // `g = 3` and `return g` sit after the join: some assignment
        // expressions must be clear.
        let assigns: Vec<_> = (0..p.exprs.len() as u32)
            .map(cfront::ast::ExprId)
            .filter(|&e| matches!(p.exprs.get(e).kind, cfront::ast::ExprKind::Assign { .. }))
            .collect();
        assert!(assigns.iter().any(|&e| tm.pending(e) == 0));
        assert!(assigns.iter().any(|&e| tm.pending(e) == 1));
    }

    #[test]
    fn sequential_program_has_inert_thread_model() {
        let g = build("int main(void) { return 0; }");
        let tm = g.thread_model();
        assert!(!tm.uses_threads());
        assert!(tm.pending_at.is_empty());
    }
}
