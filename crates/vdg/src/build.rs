//! Lowering from a checked mini-C [`Program`] to the whole-program VDG.
//!
//! The lowering threads an explicit store value through every statement
//! and keeps non-addressed scalar locals in a register environment (the
//! SSA-like transformation of paper §5.1.1), so only genuine memory
//! traffic becomes `lookup`/`update` nodes. Control flow becomes `gamma`
//! merge nodes; loops produce cyclic graphs, which the fixpoint solvers
//! handle naturally.

use crate::graph::*;
use cfront::ast::{
    BinOp, Block, Builtin, Expr, ExprId, ExprKind, FuncDecl, IdentTarget, LocalId, Program, Stmt,
    UnOp,
};
use cfront::source::{Diagnostic, Span};
use cfront::types::{TypeId, TypeKind, TypeTable};
use std::collections::{HashMap, HashSet};

/// How locals of recursive procedures with escaping addresses are modeled
/// (paper §3.1, footnote 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecLocalScheme {
    /// One weakly-updateable base-location per such local.
    #[default]
    Weak,
    /// Cooper's model: a strongly-updateable base for the most recent
    /// instance plus a weak base for all older stack instances.
    Cooper,
}

/// Options controlling the lowering.
#[derive(Debug, Clone, Default)]
pub struct BuildOptions {
    /// Modeling of recursive procedures' addressed locals.
    pub rec_local_scheme: RecLocalScheme,
}

/// Lowers a checked program to its VDG.
///
/// # Errors
///
/// Returns a diagnostic for the few constructs the model excludes (taking
/// the address of a library builtin, a `main` with parameters, calling a
/// value that never names a function).
pub fn lower(program: &Program, opts: &BuildOptions) -> Result<Graph, Diagnostic> {
    let mut b = Builder::new(program, opts.clone());
    b.prepare()?;
    for (i, f) in program.funcs.iter().enumerate() {
        b.lower_func(VFuncId(i as u32), f)?;
    }
    b.lower_root()?;
    let tm = compute_thread_model(program, std::mem::take(&mut b.spawns));
    b.g.set_thread_model(tm);
    let g = b.finish();
    debug_assert_eq!(g.validate(), Ok(()));
    Ok(g)
}

/// Computes the value kind of a C type.
pub fn value_kind(types: &TypeTable, ty: TypeId) -> ValueKind {
    match types.kind(ty) {
        TypeKind::Ptr(inner) => {
            if matches!(types.kind(*inner), TypeKind::Func(_)) {
                ValueKind::Func
            } else {
                ValueKind::Ptr
            }
        }
        TypeKind::Func(_) => ValueKind::Func,
        TypeKind::Array(..) | TypeKind::Record(_) => ValueKind::Agg {
            has_ptr: types.contains_pointer(ty),
        },
        _ => ValueKind::Scalar,
    }
}

/// Dataflow state at a program point during lowering.
#[derive(Debug, Clone)]
struct State {
    env: HashMap<LocalId, OutputId>,
    store: OutputId,
}

/// Pending break/continue edges of the innermost loop.
#[derive(Debug, Default)]
struct LoopCtx {
    breaks: Vec<State>,
    continues: Vec<State>,
}

/// An lvalue: either a register slot or an address in memory.
#[derive(Debug, Clone, Copy)]
enum LV {
    Reg(LocalId),
    Mem { addr: OutputId, indirect: bool },
}

struct Builder<'p> {
    prog: &'p Program,
    opts: BuildOptions,
    g: Graph,
    /// Bases of globals, by GlobalId index.
    global_bases: Vec<BaseId>,
    /// Bases of store-resident locals: (func, slot) -> base.
    local_bases: HashMap<(u32, u32), BaseId>,
    /// Function-value bases, created on demand.
    func_bases: HashMap<VFuncId, BaseId>,
    /// Address-taken user functions.
    addr_taken_funcs: HashSet<u32>,
    /// Per-function recursion flags (filled in `prepare`).
    recursive: Vec<bool>,
    str_count: u32,
    heap_count: u32,

    // --- thread model (spawn sites live only while lowering `main`) ---
    /// Per-spawn child-store gammas awaiting a patch input at the next
    /// join-all barrier (or at `main`'s returns / fall-through).
    pending_spawn_gammas: Vec<NodeId>,
    /// Spawn sites in lowering (source) order.
    spawns: Vec<SpawnInfo>,

    // --- per-function lowering state ---
    cur_func: VFuncId,
    state: Option<State>,
    loops: Vec<LoopCtx>,
    scalar_const: Option<OutputId>,
    null_const: Option<OutputId>,
}

impl<'p> Builder<'p> {
    fn new(prog: &'p Program, opts: BuildOptions) -> Self {
        Builder {
            prog,
            opts,
            g: Graph::new(),
            global_bases: Vec::new(),
            local_bases: HashMap::new(),
            func_bases: HashMap::new(),
            addr_taken_funcs: HashSet::new(),
            recursive: Vec::new(),
            str_count: 0,
            heap_count: 0,
            pending_spawn_gammas: Vec::new(),
            spawns: Vec::new(),
            cur_func: VFuncId(0),
            state: None,
            loops: Vec::new(),
            scalar_const: None,
            null_const: None,
        }
    }

    fn types(&self) -> &TypeTable {
        &self.prog.types
    }

    fn expr(&self, e: ExprId) -> &Expr {
        self.prog.exprs.get(e)
    }

    fn ty_of(&self, e: ExprId) -> TypeId {
        self.prog.exprs.ty(e)
    }

    fn kind_of(&self, e: ExprId) -> ValueKind {
        value_kind(self.types(), self.ty_of(e))
    }

    // ----- preparation ------------------------------------------------------

    /// Computes the conservative call graph, function records, and
    /// variable base-locations.
    fn prepare(&mut self) -> Result<(), Diagnostic> {
        let nf = self.prog.funcs.len();
        // Function records (entries filled during lowering; placeholder ids).
        for f in &self.prog.funcs {
            self.g.add_func(FuncInfo {
                name: f.name.clone(),
                entry: NodeId(0),
                returns: Vec::new(),
                address_taken: false,
            });
        }
        self.g.add_func(FuncInfo {
            name: "<root>".to_string(),
            entry: NodeId(0),
            returns: Vec::new(),
            address_taken: false,
        });

        // Address-taken functions: any Ident naming a function outside
        // direct-callee position.
        let mut direct_callee_exprs = HashSet::new();
        for (_, e) in self.prog.exprs.iter() {
            if let ExprKind::Call { callee, .. } = &e.kind {
                let mut c = *callee;
                // `(*fp)(..)` and `(&f)(..)` peel one level.
                while let ExprKind::Unary {
                    op: UnOp::Deref | UnOp::Addr,
                    arg,
                } = &self.expr(c).kind
                {
                    c = *arg;
                }
                direct_callee_exprs.insert(c);
            }
        }
        for (id, e) in self.prog.exprs.iter() {
            if let ExprKind::Ident {
                target: Some(IdentTarget::Func(f)),
                ..
            } = &e.kind
            {
                if !direct_callee_exprs.contains(&id) {
                    self.addr_taken_funcs.insert(f.0);
                }
            }
        }
        for &f in &self.addr_taken_funcs {
            self.g.func_mut(VFuncId(f)).address_taken = true;
        }

        // Conservative call graph.
        let mut edges: Vec<HashSet<u32>> = vec![HashSet::new(); nf + 1];
        for (fi, f) in self.prog.funcs.iter().enumerate() {
            if let Some(body) = &f.body {
                let mut callees = HashSet::new();
                collect_calls(self.prog, body, &mut callees);
                for (indirect, target) in callees {
                    if indirect {
                        for &t in &self.addr_taken_funcs {
                            edges[fi].insert(t);
                        }
                    } else {
                        edges[fi].insert(target);
                    }
                }
            }
        }
        if let Some(main) = self.prog.func_by_name("main") {
            edges[nf].insert(main.0);
        }
        // Reachability by BFS.
        let mut reach = vec![vec![false; nf + 1]; nf + 1];
        for (start, row) in reach.iter_mut().enumerate() {
            let mut stack: Vec<u32> = edges[start].iter().copied().collect();
            while let Some(f) = stack.pop() {
                if !row[f as usize] {
                    row[f as usize] = true;
                    stack.extend(edges[f as usize].iter().copied());
                }
            }
        }
        self.recursive = (0..nf).map(|i| reach[i][i]).collect();
        self.g.set_reach(reach);

        // Global bases.
        for g in &self.prog.globals {
            let id = self.g.add_base(BaseInfo {
                kind: BaseKind::Global {
                    name: g.name.clone(),
                },
                single_instance: true,
                cooper_older: None,
                site_expr: None,
            });
            self.global_bases.push(id);
        }
        // Store-resident local bases.
        for (fi, f) in self.prog.funcs.iter().enumerate() {
            for (vi, v) in f.vars.iter().enumerate() {
                if !Self::store_resident(self.types(), v.addr_taken, v.ty) {
                    continue;
                }
                let owner_recursive = self.recursive[fi];
                let (single, older) = if !owner_recursive {
                    (true, None)
                } else {
                    match self.opts.rec_local_scheme {
                        RecLocalScheme::Weak => (false, None),
                        RecLocalScheme::Cooper => {
                            let older = self.g.add_base(BaseInfo {
                                kind: BaseKind::Local {
                                    func: VFuncId(fi as u32),
                                    name: format!("{}@older", v.name),
                                },
                                single_instance: false,
                                cooper_older: None,
                                site_expr: None,
                            });
                            (true, Some(older))
                        }
                    }
                };
                let id = self.g.add_base(BaseInfo {
                    kind: BaseKind::Local {
                        func: VFuncId(fi as u32),
                        name: v.name.clone(),
                    },
                    single_instance: single,
                    cooper_older: older,
                    site_expr: None,
                });
                self.local_bases.insert((fi as u32, vi as u32), id);
            }
        }
        Ok(())
    }

    /// Whether a variable lives in the store (vs. the register
    /// environment).
    fn store_resident(types: &TypeTable, addr_taken: bool, ty: TypeId) -> bool {
        addr_taken || types.is_aggregate(ty)
    }

    // ----- node helpers -------------------------------------------------------

    fn node1(
        &mut self,
        kind: NodeKind,
        out: ValueKind,
        span: Span,
        site: Option<ExprId>,
        ins: &[OutputId],
    ) -> OutputId {
        let n = self.g.add_node(kind, &[out], span, site);
        for &i in ins {
            self.g.add_input(n, i);
        }
        self.g.node(n).outputs[0]
    }

    fn scalar(&mut self) -> OutputId {
        if let Some(s) = self.scalar_const {
            return s;
        }
        let s = self.node1(
            NodeKind::ScalarConst,
            ValueKind::Scalar,
            Span::dummy(),
            None,
            &[],
        );
        self.scalar_const = Some(s);
        s
    }

    fn null(&mut self) -> OutputId {
        if let Some(s) = self.null_const {
            return s;
        }
        let s = self.node1(
            NodeKind::NullConst,
            ValueKind::Ptr,
            Span::dummy(),
            None,
            &[],
        );
        self.null_const = Some(s);
        s
    }

    fn base_addr(&mut self, base: BaseId, span: Span) -> OutputId {
        self.node1(NodeKind::Base(base), ValueKind::Ptr, span, None, &[])
    }

    fn func_const(&mut self, f: VFuncId, span: Span) -> OutputId {
        let base = *self.func_bases.entry(f).or_insert_with(|| {
            self.g.add_base(BaseInfo {
                kind: BaseKind::Func { func: f },
                single_instance: true,
                cooper_older: None,
                site_expr: None,
            })
        });
        self.node1(NodeKind::FuncConst(base), ValueKind::Func, span, None, &[])
    }

    fn local_base(&self, slot: LocalId) -> BaseId {
        self.local_bases[&(self.cur_func.0, slot.0)]
    }

    fn state(&mut self) -> &mut State {
        self.state.as_mut().expect("lowering in unreachable code")
    }

    fn store(&mut self) -> OutputId {
        self.state().store
    }

    /// Merges several reachable states (0 states = unreachable).
    fn merge_states(&mut self, states: Vec<State>, span: Span) -> Option<State> {
        if states.is_empty() {
            return None;
        }
        if states.len() == 1 {
            return states.into_iter().next();
        }
        // Store merge.
        let stores: Vec<OutputId> = states.iter().map(|s| s.store).collect();
        let store = if stores.iter().all(|s| *s == stores[0]) {
            stores[0]
        } else {
            self.node1(NodeKind::Gamma, ValueKind::Store, span, None, &stores)
        };
        // Env merge over the union of keys; a slot missing from some state
        // is an uninitialized path and contributes an undef (empty) value.
        let mut keys: Vec<LocalId> = states.iter().flat_map(|s| s.env.keys().copied()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut env = HashMap::new();
        for k in keys {
            let vals: Vec<Option<OutputId>> =
                states.iter().map(|s| s.env.get(&k).copied()).collect();
            let first = vals[0];
            if vals.iter().all(|v| *v == first) {
                if let Some(v) = first {
                    env.insert(k, v);
                }
                continue;
            }
            let kind = value_kind(
                self.types(),
                self.prog.funcs[self.cur_func.0 as usize].vars[k.0 as usize].ty,
            );
            let undef = self.scalar();
            let ins: Vec<OutputId> = vals.into_iter().map(|v| v.unwrap_or(undef)).collect();
            let merged = self.node1(NodeKind::Gamma, kind, span, None, &ins);
            env.insert(k, merged);
        }
        Some(State { env, store })
    }

    // ----- function lowering ---------------------------------------------------

    fn lower_func(&mut self, fid: VFuncId, f: &'p FuncDecl) -> Result<(), Diagnostic> {
        self.cur_func = fid;
        self.scalar_const = None;
        self.null_const = None;
        self.loops.clear();
        self.pending_spawn_gammas.clear();

        let out_kinds: Vec<ValueKind> = std::iter::once(ValueKind::Store)
            .chain(f.params().iter().map(|p| value_kind(self.types(), p.ty)))
            .collect();
        let entry = self
            .g
            .add_node(NodeKind::Entry { func: fid }, &out_kinds, f.span, None);
        self.g.func_mut(fid).entry = entry;
        let entry_outs = self.g.node(entry).outputs.clone();

        let mut env = HashMap::new();
        let mut store = entry_outs[0];
        // Prologue: spill store-resident parameters.
        for (pi, p) in f.params().iter().enumerate() {
            let slot = LocalId(pi as u32);
            let val = entry_outs[pi + 1];
            if Self::store_resident(self.types(), p.addr_taken, p.ty) {
                let base = self.local_base(slot);
                let addr = self.base_addr(base, p.span);
                store = self.node1(
                    NodeKind::Update { indirect: false },
                    ValueKind::Store,
                    p.span,
                    None,
                    &[addr, store, val],
                );
            } else {
                env.insert(slot, val);
            }
        }
        self.state = Some(State { env, store });

        if let Some(body) = &f.body {
            self.lower_block(body)?;
        }
        // Implicit return on fall-through.
        if self.state.is_some() {
            let store = self.store();
            self.patch_pending_spawns(store);
            let ret = self
                .g
                .add_node(NodeKind::Return { func: fid }, &[], f.span, None);
            self.g.add_input(ret, store);
            if !matches!(self.types().kind(f.ret), TypeKind::Void) {
                let undef = self.scalar();
                self.g.add_input(ret, undef);
            }
            self.g.func_mut(fid).returns.push(ret);
        }
        self.state = None;
        Ok(())
    }

    fn lower_root(&mut self) -> Result<(), Diagnostic> {
        let root = self.g.root();
        self.cur_func = root;
        self.scalar_const = None;
        self.null_const = None;
        let entry = self.g.add_node(
            NodeKind::Entry { func: root },
            &[ValueKind::Store],
            Span::dummy(),
            None,
        );
        self.g.func_mut(root).entry = entry;
        let init = self.node1(
            NodeKind::InitStore,
            ValueKind::Store,
            Span::dummy(),
            None,
            &[],
        );
        self.state = Some(State {
            env: HashMap::new(),
            store: init,
        });

        // Global initializers, in declaration order.
        for gi in 0..self.prog.globals.len() {
            let g = &self.prog.globals[gi];
            let Some(init) = g.init else { continue };
            let base = self.global_bases[gi];
            let addr = self.base_addr(base, g.span);
            self.lower_init_into(addr, g.ty, init, false)?;
        }

        // Call main.
        let Some(main) = self.prog.func_by_name("main") else {
            return Err(Diagnostic::new(
                Span::dummy(),
                "program has no `main` function",
            ));
        };
        let main_decl = &self.prog.funcs[main.0 as usize];
        if main_decl.n_params != 0 {
            return Err(Diagnostic::new(
                main_decl.span,
                "`main` must take no parameters in the modeled subset",
            ));
        }
        let fv = self.func_const(VFuncId(main.0), main_decl.span);
        let store = self.store();
        let ret_kind = value_kind(self.types(), main_decl.ret);
        let call = self.g.add_node(
            NodeKind::Call,
            &[ValueKind::Store, ret_kind],
            main_decl.span,
            None,
        );
        self.g.add_input(call, fv);
        self.g.add_input(call, store);
        self.state = None;
        Ok(())
    }

    fn finish(mut self) -> Graph {
        self.g
            .set_var_bases(self.global_bases.clone(), self.local_bases.clone());
        std::mem::take(&mut self.g)
    }

    // ----- statements ------------------------------------------------------------

    fn lower_block(&mut self, b: &'p Block) -> Result<(), Diagnostic> {
        for s in &b.stmts {
            if self.state.is_none() {
                // Unreachable trailing code is skipped entirely; the paper
                // notes spurious pairs on dead code are harmless, and our
                // representation simply never materializes dead nodes.
                break;
            }
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &'p Stmt) -> Result<(), Diagnostic> {
        match s {
            Stmt::Expr(e) => {
                self.eval(*e)?;
            }
            Stmt::Local {
                ty,
                init,
                slot,
                span,
                ..
            } => {
                let slot = slot.expect("sema assigns slots");
                let f = &self.prog.funcs[self.cur_func.0 as usize];
                let resident =
                    Self::store_resident(self.types(), f.vars[slot.0 as usize].addr_taken, *ty);
                match init {
                    None => {}
                    Some(init) => {
                        if resident {
                            let base = self.local_base(slot);
                            let addr = self.base_addr(base, *span);
                            self.lower_init_into(addr, *ty, *init, false)?;
                        } else {
                            let v = self.eval(*init)?;
                            self.state().env.insert(slot, v);
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.eval(*cond)?;
                let snap = self.state.clone();
                self.lower_block(then_blk)?;
                let then_state = self.state.take();
                self.state = snap;
                if let Some(eb) = else_blk {
                    self.lower_block(eb)?;
                }
                let else_state = self.state.take();
                let states: Vec<State> = [then_state, else_state].into_iter().flatten().collect();
                self.state = self.merge_states(states, span_of_stmt(self.prog, s));
            }
            Stmt::While { cond, body } => {
                self.lower_loop(Some(*cond), None, body, false)?;
            }
            Stmt::DoWhile { body, cond } => {
                self.lower_loop(Some(*cond), None, body, true)?;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                if self.state.is_some() {
                    self.lower_loop(*cond, *step, body, false)?;
                }
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                span,
            } => {
                self.eval(*scrutinee)?;
                let snap = self.state.clone();
                let mut ends = Vec::new();
                for c in cases {
                    self.state = snap.clone();
                    self.lower_block(&c.body)?;
                    if let Some(s) = self.state.take() {
                        ends.push(s);
                    }
                }
                match default {
                    Some(d) => {
                        self.state = snap;
                        self.lower_block(d)?;
                        if let Some(s) = self.state.take() {
                            ends.push(s);
                        }
                    }
                    None => {
                        // No matching case: control skips the switch.
                        if let Some(s) = snap {
                            ends.push(s);
                        }
                    }
                }
                self.state = self.merge_states(ends, *span);
            }
            Stmt::Return { value, span } => {
                let v = match value {
                    Some(v) => Some(self.eval(*v)?),
                    None => None,
                };
                let store = self.store();
                self.patch_pending_spawns(store);
                let fid = self.cur_func;
                // The return's site is its value expression, letting the
                // dangling-local checker match runtime escape evidence.
                let ret = self
                    .g
                    .add_node(NodeKind::Return { func: fid }, &[], *span, *value);
                self.g.add_input(ret, store);
                if let Some(v) = v {
                    self.g.add_input(ret, v);
                }
                self.g.func_mut(fid).returns.push(ret);
                self.state = None;
            }
            Stmt::Break(_) => {
                let st = self.state.take().expect("reachable break");
                self.loops
                    .last_mut()
                    .expect("break outside loop")
                    .breaks
                    .push(st);
            }
            Stmt::Continue(_) => {
                let st = self.state.take().expect("reachable continue");
                self.loops
                    .last_mut()
                    .expect("continue outside loop")
                    .continues
                    .push(st);
            }
            Stmt::Spawn { call, span } => self.lower_spawn(*call, *span)?,
            Stmt::Join(_) => {
                // A join-all barrier: every pending child's input store
                // learns what the parent wrote up to here, and the parent
                // continues with the store as-is (child effects already
                // flow in through each post-spawn merge gamma).
                let store = self.store();
                self.patch_pending_spawns(store);
                self.pending_spawn_gammas.clear();
            }
            Stmt::Block(b) => self.lower_block(b)?,
        }
        Ok(())
    }

    /// Lowers `spawn f(args)`: the child runs concurrently with the rest
    /// of `main`, so its input store is a gamma merging the store at the
    /// spawn with the parent's store at later join points (patched via
    /// [`Builder::patch_pending_spawns`]), and the parent's store after
    /// the spawn merges in the child's output store. The resulting cyclic
    /// store flow is resolved by the solvers' fixpoints and soundly
    /// over-approximates every SC interleaving.
    fn lower_spawn(&mut self, call: ExprId, span: Span) -> Result<(), Diagnostic> {
        if self.spawns.len() >= 64 {
            return Err(Diagnostic::new(
                span,
                "too many `spawn` sites (the thread model caps them at 64)",
            ));
        }
        let ExprKind::Call { callee, args } = self.expr(call).kind.clone() else {
            unreachable!("parser only builds Spawn over calls");
        };
        let ExprKind::Ident {
            target: Some(IdentTarget::Func(f)),
            ..
        } = self.expr(callee).kind
        else {
            unreachable!("sema restricts spawn to direct calls of named functions");
        };
        let fid = VFuncId(f.0);
        let fv = self.func_const(fid, span);
        let mut argvs = Vec::with_capacity(args.len());
        for &a in &args {
            argvs.push(self.eval_rvalue_for(a)?);
        }
        let s_spawn = self.store();

        // Child input store: seeded with the store at the spawn; later
        // join points add the parent's store so parent writes made while
        // the child runs stay visible to it.
        let child_gamma = self
            .g
            .add_node(NodeKind::Gamma, &[ValueKind::Store], span, None);
        self.g.add_input(child_gamma, s_spawn);
        let child_in = self.g.node(child_gamma).outputs[0];

        // The thread's call; its result port exists (solvers expect the
        // usual call shape) but is never consumed.
        let ret_ty = self.ty_of(call);
        let out_kinds: Vec<ValueKind> = if matches!(self.types().kind(ret_ty), TypeKind::Void) {
            vec![ValueKind::Store]
        } else {
            vec![ValueKind::Store, value_kind(self.types(), ret_ty)]
        };
        let call_node = self
            .g
            .add_node(NodeKind::Call, &out_kinds, span, Some(call));
        self.g.add_input(call_node, fv);
        self.g.add_input(call_node, child_in);
        for v in argvs {
            self.g.add_input(call_node, v);
        }
        let child_out = self.g.node(call_node).outputs[0];

        // Parent store after the spawn: the child may or may not have run
        // (and written) yet.
        let after = self.node1(
            NodeKind::Gamma,
            ValueKind::Store,
            span,
            None,
            &[s_spawn, child_out],
        );
        self.state().store = after;

        self.pending_spawn_gammas.push(child_gamma);
        self.spawns.push(SpawnInfo {
            node: call_node,
            site: call,
            span,
            callee: fid,
        });
        Ok(())
    }

    /// Feeds `store` into every pending spawned child's input-store gamma
    /// (at joins, `main`'s returns, and its fall-through end).
    fn patch_pending_spawns(&mut self, store: OutputId) {
        for i in 0..self.pending_spawn_gammas.len() {
            let gm = self.pending_spawn_gammas[i];
            self.g.add_input(gm, store);
        }
    }

    /// Shared lowering for `while` / `do-while` / `for` loop bodies.
    ///
    /// The loop header is a set of gamma nodes merging the entry state
    /// with the back edge; the back-edge inputs are patched after the body
    /// is lowered, producing a cyclic graph.
    fn lower_loop(
        &mut self,
        cond: Option<ExprId>,
        step: Option<ExprId>,
        body: &'p Block,
        body_first: bool,
    ) -> Result<(), Diagnostic> {
        let span = body
            .stmts
            .first()
            .map(|s| span_of_stmt(self.prog, s))
            .or_else(|| cond.map(|c| self.prog.exprs.get(c).span))
            .unwrap_or_else(Span::dummy);
        let entry = self.state.take().expect("reachable loop");

        // Which register slots the loop may redefine.
        let mut assigned = HashSet::new();
        if let Some(c) = cond {
            collect_assigned_exprs(self.prog, c, &mut assigned);
        }
        if let Some(st) = step {
            collect_assigned_exprs(self.prog, st, &mut assigned);
        }
        collect_assigned_block(self.prog, body, &mut assigned);

        // Header gammas: input 0 = entry value, input 1 patched later.
        let store_gamma = self
            .g
            .add_node(NodeKind::Gamma, &[ValueKind::Store], span, None);
        self.g.add_input(store_gamma, entry.store);
        let store_h = self.g.node(store_gamma).outputs[0];
        let mut env_h = entry.env.clone();
        let mut var_gammas: Vec<(LocalId, NodeId)> = Vec::new();
        let mut slots: Vec<LocalId> = assigned
            .iter()
            .copied()
            .filter(|s| entry.env.contains_key(s))
            .collect();
        slots.sort_unstable();
        for slot in slots {
            let kind = value_kind(
                self.types(),
                self.prog.funcs[self.cur_func.0 as usize].vars[slot.0 as usize].ty,
            );
            let gm = self.g.add_node(NodeKind::Gamma, &[kind], span, None);
            self.g.add_input(gm, entry.env[&slot]);
            env_h.insert(slot, self.g.node(gm).outputs[0]);
            var_gammas.push((slot, gm));
        }
        let header = State {
            env: env_h,
            store: store_h,
        };

        self.loops.push(LoopCtx::default());

        // Body/cond order differs between while-style and do-while.
        let (after_cond, body_end) = if body_first {
            // do { body } while (cond);
            self.state = Some(header.clone());
            self.lower_block(body)?;
            let ctx_continues = std::mem::take(&mut self.loops.last_mut().expect("loop").continues);
            let mut pre_cond: Vec<State> = ctx_continues;
            if let Some(s) = self.state.take() {
                pre_cond.push(s);
            }
            self.state = self.merge_states(pre_cond, span);
            if let (Some(_), Some(c)) = (&self.state, cond) {
                self.eval(c)?;
            }
            let after = self.state.take();
            (after.clone(), after)
        } else {
            // while (cond) { body; step; }
            self.state = Some(header.clone());
            if let Some(c) = cond {
                self.eval(c)?;
            }
            let after_cond = self.state.clone();
            self.lower_block(body)?;
            let ctx_continues = std::mem::take(&mut self.loops.last_mut().expect("loop").continues);
            let mut pre_step: Vec<State> = ctx_continues;
            if let Some(s) = self.state.take() {
                pre_step.push(s);
            }
            self.state = self.merge_states(pre_step, span);
            if let (Some(_), Some(st)) = (&self.state, step) {
                self.eval(st)?;
            }
            (after_cond, self.state.take())
        };

        // Patch back edges.
        let back = body_end.unwrap_or_else(|| header.clone());
        self.g.add_input(store_gamma, back.store);
        for (slot, gm) in &var_gammas {
            let v = back.env.get(slot).copied().unwrap_or(header.env[slot]);
            self.g.add_input(*gm, v);
        }

        // Loop exit: the state after the condition (when it is false) plus
        // all break states.
        let ctx = self.loops.pop().expect("loop ctx");
        let mut exits: Vec<State> = ctx.breaks;
        // Without a condition (`for (;;)`) the loop exits only via break.
        if cond.is_some() {
            if let Some(ac) = after_cond {
                exits.push(ac);
            }
        }
        self.state = self.merge_states(exits, span);
        Ok(())
    }

    // ----- initializers --------------------------------------------------------

    /// Lowers an initializer (possibly a brace list) into memory at `addr`.
    fn lower_init_into(
        &mut self,
        addr: OutputId,
        ty: TypeId,
        init: ExprId,
        indirect: bool,
    ) -> Result<(), Diagnostic> {
        let span = self.expr(init).span;
        if let ExprKind::InitList(items) = self.expr(init).kind.clone() {
            match self.types().kind(ty).clone() {
                TypeKind::Array(elem, _) => {
                    for item in items {
                        let ea =
                            self.node1(NodeKind::IndexElem, ValueKind::Ptr, span, None, &[addr]);
                        self.lower_init_into(ea, elem, item, indirect)?;
                    }
                }
                TypeKind::Record(r) => {
                    let rec = self.types().record(r);
                    let is_union = rec.is_union;
                    let fields: Vec<(String, TypeId)> =
                        rec.fields.iter().map(|f| (f.name.clone(), f.ty)).collect();
                    for (item, (fname, fty)) in items.into_iter().zip(fields) {
                        let fa = if is_union {
                            addr
                        } else {
                            let fid = self.g.intern_field(&fname);
                            self.node1(NodeKind::Member(fid), ValueKind::Ptr, span, None, &[addr])
                        };
                        self.lower_init_into(fa, fty, item, indirect)?;
                    }
                }
                _ => unreachable!("sema validated init lists"),
            }
            return Ok(());
        }
        // `char buf[...] = "text"`: character contents carry no pointers.
        if matches!(self.expr(init).kind, ExprKind::StrLit(_)) && self.types().is_array(ty) {
            return Ok(());
        }
        let v = self.eval(init)?;
        let store = self.store();
        let kind = ValueKind::Store;
        let st = self.node1(
            NodeKind::Update { indirect },
            kind,
            span,
            Some(init),
            &[addr, store, v],
        );
        self.state().store = st;
        Ok(())
    }

    // ----- lvalues ---------------------------------------------------------------

    fn eval_lvalue(&mut self, e: ExprId) -> Result<LV, Diagnostic> {
        let span = self.expr(e).span;
        match self.expr(e).kind.clone() {
            ExprKind::Ident { target, .. } => match target.expect("sema resolved") {
                IdentTarget::Local(slot) => {
                    let f = &self.prog.funcs[self.cur_func.0 as usize];
                    let v = &f.vars[slot.0 as usize];
                    if Self::store_resident(self.types(), v.addr_taken, v.ty) {
                        let base = self.local_base(slot);
                        let addr = self.base_addr(base, span);
                        Ok(LV::Mem {
                            addr,
                            indirect: false,
                        })
                    } else {
                        Ok(LV::Reg(slot))
                    }
                }
                IdentTarget::Global(gid) => {
                    let addr = self.base_addr(self.global_bases[gid.0 as usize], span);
                    Ok(LV::Mem {
                        addr,
                        indirect: false,
                    })
                }
                IdentTarget::Func(_) | IdentTarget::Builtin(_) => Err(Diagnostic::new(
                    span,
                    "functions are not assignable lvalues",
                )),
            },
            ExprKind::Unary {
                op: UnOp::Deref,
                arg,
            } => {
                let p = self.eval(arg)?;
                Ok(LV::Mem {
                    addr: p,
                    indirect: true,
                })
            }
            ExprKind::Member {
                base,
                arrow,
                record,
                field,
                ..
            } => {
                let rec = record.expect("sema resolved member");
                let is_union = self.types().record(rec).is_union;
                let (base_addr, indirect) = if arrow {
                    (self.eval(base)?, true)
                } else {
                    match self.eval_lvalue(base)? {
                        LV::Mem { addr, indirect } => (addr, indirect),
                        LV::Reg(_) => {
                            return Err(Diagnostic::new(
                                span,
                                "member access on a register value is not an lvalue",
                            ))
                        }
                    }
                };
                let addr = if is_union {
                    base_addr
                } else {
                    let fid = self.g.intern_field(&field);
                    self.node1(
                        NodeKind::Member(fid),
                        ValueKind::Ptr,
                        span,
                        None,
                        &[base_addr],
                    )
                };
                Ok(LV::Mem { addr, indirect })
            }
            ExprKind::Index { base, index } => {
                self.eval(index)?;
                let bt = self.ty_of(base);
                if self.types().is_array(bt) {
                    let (base_addr, indirect) = match self.eval_lvalue(base)? {
                        LV::Mem { addr, indirect } => (addr, indirect),
                        LV::Reg(_) => unreachable!("arrays are store-resident"),
                    };
                    let addr = self.node1(
                        NodeKind::IndexElem,
                        ValueKind::Ptr,
                        span,
                        None,
                        &[base_addr],
                    );
                    Ok(LV::Mem { addr, indirect })
                } else {
                    // Pointer indexing: address is the pointer value itself
                    // (array contents collapse to one path).
                    let p = self.eval(base)?;
                    Ok(LV::Mem {
                        addr: p,
                        indirect: true,
                    })
                }
            }
            ExprKind::StrLit(s) => {
                let base = self.g.add_base(BaseInfo {
                    kind: BaseKind::StrLit {
                        index: self.str_count,
                    },
                    single_instance: true,
                    cooper_older: None,
                    site_expr: Some(e),
                });
                self.str_count += 1;
                let _ = s;
                let addr = self.base_addr(base, span);
                Ok(LV::Mem {
                    addr,
                    indirect: false,
                })
            }
            _ => Err(Diagnostic::new(span, "expression is not an lvalue")),
        }
    }

    fn read_lv(&mut self, lv: LV, kind: ValueKind, span: Span, site: ExprId) -> OutputId {
        match lv {
            LV::Reg(slot) => match self.state().env.get(&slot).copied() {
                Some(v) => v,
                None => {
                    // Read of an uninitialized register local: an undef
                    // value with no points-to pairs.
                    let undef = self.scalar();
                    self.state().env.insert(slot, undef);
                    undef
                }
            },
            LV::Mem { addr, indirect } => {
                let store = self.store();
                self.node1(
                    NodeKind::Lookup { indirect },
                    kind,
                    span,
                    Some(site),
                    &[addr, store],
                )
            }
        }
    }

    fn write_lv(&mut self, lv: LV, val: OutputId, span: Span, site: ExprId) {
        match lv {
            LV::Reg(slot) => {
                self.state().env.insert(slot, val);
            }
            LV::Mem { addr, indirect } => {
                let store = self.store();
                let st = self.node1(
                    NodeKind::Update { indirect },
                    ValueKind::Store,
                    span,
                    Some(site),
                    &[addr, store, val],
                );
                self.state().store = st;
            }
        }
    }

    // ----- expressions -------------------------------------------------------------

    fn eval(&mut self, e: ExprId) -> Result<OutputId, Diagnostic> {
        let span = self.expr(e).span;
        let ekind = self.expr(e).kind.clone();
        match ekind {
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::SizeofType(_)
            | ExprKind::SizeofExpr(_) => Ok(self.scalar()),
            ExprKind::Null => Ok(self.null()),
            ExprKind::StrLit(_) => {
                let lv = self.eval_lvalue(e)?;
                let LV::Mem { addr, .. } = lv else {
                    unreachable!()
                };
                Ok(self.node1(NodeKind::IndexElem, ValueKind::Ptr, span, None, &[addr]))
            }
            ExprKind::Ident { target, .. } => match target.expect("sema resolved") {
                IdentTarget::Func(f) => Ok(self.func_const(VFuncId(f.0), span)),
                IdentTarget::Builtin(_) => Err(Diagnostic::new(
                    span,
                    "library builtins cannot be used as values",
                )),
                _ => {
                    let ty = self.ty_of(e);
                    if self.types().is_array(ty) {
                        // Array decay: pointer to the first element.
                        let lv = self.eval_lvalue(e)?;
                        let LV::Mem { addr, .. } = lv else {
                            unreachable!("arrays are store-resident")
                        };
                        Ok(self.node1(NodeKind::IndexElem, ValueKind::Ptr, span, None, &[addr]))
                    } else {
                        let kind = self.kind_of(e);
                        let lv = self.eval_lvalue(e)?;
                        Ok(self.read_lv(lv, kind, span, e))
                    }
                }
            },
            ExprKind::Unary { op, arg } => match op {
                UnOp::Deref => {
                    let pt = self.ty_of(e);
                    if self.types().is_func(pt) {
                        // `*fp` in call position: function value passes through.
                        return self.eval(arg);
                    }
                    let p = self.eval(arg)?;
                    let kind = self.kind_of(e);
                    let store = self.store();
                    Ok(self.node1(
                        NodeKind::Lookup { indirect: true },
                        kind,
                        span,
                        Some(e),
                        &[p, store],
                    ))
                }
                UnOp::Addr => {
                    if self.types().is_func(self.ty_of(arg)) {
                        let ExprKind::Ident {
                            target: Some(IdentTarget::Func(f)),
                            ..
                        } = self.expr(arg).kind
                        else {
                            return Err(Diagnostic::new(span, "cannot take this address"));
                        };
                        return Ok(self.func_const(VFuncId(f.0), span));
                    }
                    match self.eval_lvalue(arg)? {
                        LV::Mem { addr, .. } => Ok(addr),
                        LV::Reg(_) => unreachable!("sema marks addressed vars store-resident"),
                    }
                }
                UnOp::Neg | UnOp::Not | UnOp::BitNot => {
                    let v = self.eval(arg)?;
                    Ok(self.node1(NodeKind::Primop, ValueKind::Scalar, span, None, &[v]))
                }
            },
            ExprKind::Binary { op, lhs, rhs } => {
                let lk = self.kind_of(lhs);
                let rk = self.kind_of(rhs);
                let result_kind = self.kind_of(e);
                let lv = self.eval(lhs)?;
                let rv = self.eval(rhs)?;
                let lhs_ptrish = matches!(lk, ValueKind::Ptr | ValueKind::Agg { .. });
                let rhs_ptrish = matches!(rk, ValueKind::Ptr | ValueKind::Agg { .. });
                match op {
                    BinOp::Add | BinOp::Sub if matches!(result_kind, ValueKind::Ptr) => {
                        // Pointer arithmetic: pairs of the pointer side pass.
                        let (p, i) = if lhs_ptrish && !rhs_ptrish {
                            (lv, rv)
                        } else {
                            (rv, lv)
                        };
                        Ok(self.node1(NodeKind::PassThrough, ValueKind::Ptr, span, None, &[p, i]))
                    }
                    _ => Ok(self.node1(NodeKind::Primop, ValueKind::Scalar, span, None, &[lv, rv])),
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let lhs_kind = self.kind_of(lhs);
                match op {
                    None => {
                        let lv = self.eval_lvalue(lhs)?;
                        let rv = self.eval_rvalue_for(rhs)?;
                        self.write_lv(lv, rv, span, lhs);
                        Ok(rv)
                    }
                    Some(op) => {
                        let lv = self.eval_lvalue(lhs)?;
                        let old = self.read_lv(lv, lhs_kind, span, lhs);
                        let rv = self.eval(rhs)?;
                        let newv = if matches!(lhs_kind, ValueKind::Ptr)
                            && matches!(op, BinOp::Add | BinOp::Sub)
                        {
                            self.node1(
                                NodeKind::PassThrough,
                                ValueKind::Ptr,
                                span,
                                None,
                                &[old, rv],
                            )
                        } else {
                            self.node1(NodeKind::Primop, ValueKind::Scalar, span, None, &[old, rv])
                        };
                        self.write_lv(lv, newv, span, lhs);
                        Ok(newv)
                    }
                }
            }
            ExprKind::IncDec { pre, inc: _, arg } => {
                let kind = self.kind_of(arg);
                let lv = self.eval_lvalue(arg)?;
                let old = self.read_lv(lv, kind, span, arg);
                let one = self.scalar();
                let newv = if matches!(kind, ValueKind::Ptr) {
                    self.node1(
                        NodeKind::PassThrough,
                        ValueKind::Ptr,
                        span,
                        None,
                        &[old, one],
                    )
                } else {
                    self.node1(NodeKind::Primop, ValueKind::Scalar, span, None, &[old, one])
                };
                self.write_lv(lv, newv, span, arg);
                Ok(if pre { newv } else { old })
            }
            ExprKind::Call { callee, args } => self.eval_call(e, callee, &args, span),
            ExprKind::Member {
                base,
                arrow,
                record,
                field,
                ..
            } => {
                // Lvalue path when possible; otherwise extract from an
                // aggregate value (e.g. `f().x`).
                let can_lv = arrow || is_lvalue_expr(self.prog, base);
                if can_lv {
                    let kind = self.kind_of(e);
                    if self.types().is_array(self.ty_of(e)) {
                        let lv = self.eval_lvalue(e)?;
                        let LV::Mem { addr, .. } = lv else {
                            unreachable!()
                        };
                        return Ok(self.node1(
                            NodeKind::IndexElem,
                            ValueKind::Ptr,
                            span,
                            None,
                            &[addr],
                        ));
                    }
                    let lv = self.eval_lvalue(e)?;
                    Ok(self.read_lv(lv, kind, span, e))
                } else {
                    let v = self.eval(base)?;
                    let rec = record.expect("sema resolved");
                    if self.types().record(rec).is_union {
                        return Ok(v);
                    }
                    let fid = self.g.intern_field(&field);
                    let kind = self.kind_of(e);
                    Ok(self.node1(NodeKind::ExtractField(fid), kind, span, None, &[v]))
                }
            }
            ExprKind::Index { .. } => {
                let kind = self.kind_of(e);
                if self.types().is_array(self.ty_of(e)) {
                    let lv = self.eval_lvalue(e)?;
                    let LV::Mem { addr, .. } = lv else {
                        unreachable!()
                    };
                    return Ok(self.node1(
                        NodeKind::IndexElem,
                        ValueKind::Ptr,
                        span,
                        None,
                        &[addr],
                    ));
                }
                let lv = self.eval_lvalue(e)?;
                Ok(self.read_lv(lv, kind, span, e))
            }
            ExprKind::Cast { ty, arg } => {
                let v = self.eval(arg)?;
                if self.types().is_ptr(ty) {
                    Ok(self.node1(
                        NodeKind::PassThrough,
                        value_kind(self.types(), ty),
                        span,
                        None,
                        &[v],
                    ))
                } else {
                    Ok(self.scalar())
                }
            }
            ExprKind::Cond {
                cond,
                then_e,
                else_e,
            } => {
                self.eval(cond)?;
                let snap = self.state.clone();
                let tv = self.eval(then_e)?;
                let t_state = self.state.take();
                self.state = snap;
                let ev = self.eval(else_e)?;
                let e_state = self.state.take();
                let states: Vec<State> = [t_state, e_state].into_iter().flatten().collect();
                self.state = self.merge_states(states, span);
                let kind = self.kind_of(e);
                if matches!(kind, ValueKind::Scalar) {
                    Ok(self.node1(NodeKind::Primop, ValueKind::Scalar, span, None, &[tv, ev]))
                } else {
                    Ok(self.node1(NodeKind::Gamma, kind, span, None, &[tv, ev]))
                }
            }
            ExprKind::InitList(_) => Err(Diagnostic::new(
                span,
                "initializer list outside a declaration",
            )),
            ExprKind::Comma { lhs, rhs } => {
                self.eval(lhs)?;
                self.eval(rhs)
            }
        }
    }

    /// Evaluates an rvalue, reading whole aggregates out of memory when
    /// the expression is an aggregate lvalue (struct assignment reads).
    fn eval_rvalue_for(&mut self, e: ExprId) -> Result<OutputId, Diagnostic> {
        let ty = self.ty_of(e);
        if self.types().is_record(ty) && is_lvalue_expr(self.prog, e) {
            let span = self.expr(e).span;
            let kind = self.kind_of(e);
            let lv = self.eval_lvalue(e)?;
            return Ok(self.read_lv(lv, kind, span, e));
        }
        self.eval(e)
    }

    // ----- calls -------------------------------------------------------------------

    fn eval_call(
        &mut self,
        e: ExprId,
        callee: ExprId,
        args: &[ExprId],
        span: Span,
    ) -> Result<OutputId, Diagnostic> {
        // Builtin?
        let mut c = callee;
        while let ExprKind::Unary {
            op: UnOp::Deref | UnOp::Addr,
            arg,
        } = &self.expr(c).kind
        {
            c = *arg;
        }
        if let ExprKind::Ident {
            target: Some(IdentTarget::Builtin(b)),
            ..
        } = self.expr(c).kind
        {
            return self.eval_builtin(e, b, args, span);
        }

        let fv = self.eval(callee)?;
        let mut argvs = Vec::with_capacity(args.len());
        for &a in args {
            argvs.push(self.eval_rvalue_for(a)?);
        }
        let ret_ty = self.ty_of(e);
        let ret_kind = value_kind(self.types(), ret_ty);
        let has_result = !matches!(self.types().kind(ret_ty), TypeKind::Void);
        let out_kinds: Vec<ValueKind> = if has_result {
            vec![ValueKind::Store, ret_kind]
        } else {
            vec![ValueKind::Store]
        };
        let store = self.store();
        let call = self.g.add_node(NodeKind::Call, &out_kinds, span, Some(e));
        self.g.add_input(call, fv);
        self.g.add_input(call, store);
        for v in argvs {
            self.g.add_input(call, v);
        }
        let outs = self.g.node(call).outputs.clone();
        self.state().store = outs[0];
        Ok(if has_result { outs[1] } else { self.scalar() })
    }

    fn eval_builtin(
        &mut self,
        e: ExprId,
        b: Builtin,
        args: &[ExprId],
        span: Span,
    ) -> Result<OutputId, Diagnostic> {
        let mut argvs = Vec::with_capacity(args.len());
        for &a in args {
            argvs.push(self.eval(a)?);
        }
        use Builtin::*;
        match b {
            Malloc | Calloc => {
                let base = self.heap_base(b.name(), e);
                Ok(self.node1(NodeKind::Alloc(base), ValueKind::Ptr, span, Some(e), &[]))
            }
            Realloc => {
                // Result may be the original block or a fresh one whose
                // contents were copied over.
                let base = self.heap_base(b.name(), e);
                let fresh = self.node1(NodeKind::Alloc(base), ValueKind::Ptr, span, Some(e), &[]);
                let store = self.store();
                let copied = self.node1(
                    NodeKind::CopyMem,
                    ValueKind::Store,
                    span,
                    Some(e),
                    &[store, fresh, argvs[0]],
                );
                self.state().store = copied;
                Ok(self.node1(
                    NodeKind::Gamma,
                    ValueKind::Ptr,
                    span,
                    None,
                    &[fresh, argvs[0]],
                ))
            }
            Strdup => {
                let base = self.heap_base(b.name(), e);
                let fresh = self.node1(NodeKind::Alloc(base), ValueKind::Ptr, span, Some(e), &[]);
                let store = self.store();
                let copied = self.node1(
                    NodeKind::CopyMem,
                    ValueKind::Store,
                    span,
                    Some(e),
                    &[store, fresh, argvs[0]],
                );
                self.state().store = copied;
                Ok(fresh)
            }
            Memcpy | Memmove => {
                let store = self.store();
                let st = self.node1(
                    NodeKind::CopyMem,
                    ValueKind::Store,
                    span,
                    Some(e),
                    &[store, argvs[0], argvs[1]],
                );
                self.state().store = st;
                Ok(argvs[0])
            }
            // Store identities returning a pointer into their first
            // argument (paper §5.1.2 footnote 10).
            Strcpy | Strncpy | Strcat | Strchr | Memset => Ok(argvs[0]),
            Free => {
                // The store passes through a `Free` node unchanged; the
                // node exists so the memory-safety checkers can read the
                // deallocated referents (the kill-set) at its pointer
                // input.
                let store = self.store();
                let st = self.node1(
                    NodeKind::Free,
                    ValueKind::Store,
                    span,
                    Some(e),
                    &[argvs[0], store],
                );
                self.state().store = st;
                Ok(self.scalar())
            }
            _ => {
                // Pure scalars: strcmp, strlen, printf, getchar, exit,
                // ... `exit` is treated as returning (a sound
                // over-approximation; values flowing "past" it are dead at
                // runtime and only add may-information).
                Ok(self.scalar())
            }
        }
    }

    fn heap_base(&mut self, what: &str, expr: ExprId) -> BaseId {
        let fname = self.g.func(self.cur_func).name.clone();
        let site = format!("{fname}:{what}#{}", self.heap_count);
        self.heap_count += 1;
        self.g.add_base(BaseInfo {
            kind: BaseKind::Heap { site },
            single_instance: false,
            cooper_older: None,
            site_expr: Some(expr),
        })
    }
}

// ----- thread model --------------------------------------------------------------

/// Computes the [`ThreadModel`] for the lowered spawn sites: a structural
/// pending-spawn-set walk of `main` (see [`ThreadModel`] for the rules).
fn compute_thread_model(prog: &Program, spawns: Vec<SpawnInfo>) -> ThreadModel {
    let mut tm = ThreadModel {
        mhp: vec![0; spawns.len()],
        spawns,
        pending_at: HashMap::new(),
    };
    if tm.spawns.is_empty() {
        return tm;
    }
    let site_bit: HashMap<ExprId, usize> = tm
        .spawns
        .iter()
        .enumerate()
        .map(|(i, s)| (s.site, i))
        .collect();
    let Some(main) = prog.func_by_name("main") else {
        return tm;
    };
    let Some(body) = &prog.funcs[main.0 as usize].body else {
        return tm;
    };
    let mut w = MhpWalk {
        prog,
        site_bit,
        pending_at: std::mem::take(&mut tm.pending_at),
        mhp: std::mem::take(&mut tm.mhp),
    };
    w.walk_block(body, 0);
    tm.pending_at = w.pending_at;
    tm.mhp = w.mhp;
    tm
}

struct MhpWalk<'p> {
    prog: &'p Program,
    /// Spawn-call expression -> spawn-site index.
    site_bit: HashMap<ExprId, usize>,
    pending_at: HashMap<ExprId, u64>,
    mhp: Vec<u64>,
}

impl MhpWalk<'_> {
    /// Tags every expression under `e` with the current pending mask
    /// (union across walk passes, so loop fixpoints only widen).
    fn record(&mut self, e: ExprId, p: u64) {
        if p == 0 {
            return;
        }
        walk_expr(self.prog, e, &mut |id| {
            *self.pending_at.entry(id).or_insert(0) |= p;
        });
    }

    fn walk_block(&mut self, b: &Block, mut p: u64) -> u64 {
        for s in &b.stmts {
            p = self.walk_stmt(s, p);
        }
        p
    }

    fn walk_stmt(&mut self, s: &Stmt, p: u64) -> u64 {
        match s {
            Stmt::Spawn { call, .. } => {
                // Spawn arguments are evaluated before the child starts.
                self.record(*call, p);
                // Dead spawns (unreachable code) were never lowered and
                // have no site index.
                let Some(&i) = self.site_bit.get(call) else {
                    return p;
                };
                let bit = 1u64 << i;
                // The new thread may run in parallel with every pending
                // one — including a previous instance of itself when the
                // site re-executes in a loop without an intervening join.
                self.mhp[i] |= p;
                let mut rest = p;
                while rest != 0 {
                    let j = rest.trailing_zeros() as usize;
                    self.mhp[j] |= bit;
                    rest &= rest - 1;
                }
                p | bit
            }
            Stmt::Join(_) => 0,
            Stmt::Expr(e) => {
                self.record(*e, p);
                p
            }
            Stmt::Local { init, .. } => {
                if let Some(i) = init {
                    self.record(*i, p);
                }
                p
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.record(*v, p);
                }
                p
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.record(*cond, p);
                let pt = self.walk_block(then_blk, p);
                let pe = match else_blk {
                    Some(b) => self.walk_block(b, p),
                    None => p,
                };
                pt | pe
            }
            Stmt::While { cond, body } => self.walk_loop(Some(*cond), None, body, p),
            Stmt::DoWhile { body, cond } => self.walk_loop(Some(*cond), None, body, p),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let p = match init {
                    Some(i) => self.walk_stmt(i, p),
                    None => p,
                };
                self.walk_loop(*cond, *step, body, p)
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                ..
            } => {
                self.record(*scrutinee, p);
                let mut out = if default.is_some() { 0 } else { p };
                for c in cases {
                    out |= self.walk_block(&c.body, p);
                }
                if let Some(d) = default {
                    out |= self.walk_block(d, p);
                }
                out
            }
            Stmt::Break(_) | Stmt::Continue(_) => p,
            Stmt::Block(b) => self.walk_block(b, p),
        }
    }

    /// Loop fixpoint: iterate the body from `entry | last-exit` until the
    /// pending set stabilizes. Masks only widen (≤ 64 bits), so this
    /// terminates quickly; the result conservatively covers zero or more
    /// iterations of `while`/`for` and one or more of `do-while`.
    fn walk_loop(
        &mut self,
        cond: Option<ExprId>,
        step: Option<ExprId>,
        body: &Block,
        entry: u64,
    ) -> u64 {
        let mut pin = entry;
        loop {
            if let Some(c) = cond {
                self.record(c, pin);
            }
            let pend = self.walk_block(body, pin);
            let pend = match step {
                Some(st) => {
                    self.record(st, pend);
                    pend
                }
                None => pend,
            };
            let next = entry | pend;
            if next == pin {
                return pin;
            }
            pin = next;
        }
    }
}

// ----- AST walking helpers ------------------------------------------------------

fn span_of_stmt(p: &Program, s: &Stmt) -> Span {
    match s {
        Stmt::Expr(e) => p.exprs.get(*e).span,
        Stmt::Return { span, .. }
        | Stmt::Break(span)
        | Stmt::Continue(span)
        | Stmt::Spawn { span, .. }
        | Stmt::Join(span) => *span,
        Stmt::Local { span, .. } => *span,
        Stmt::Switch { span, .. } => *span,
        Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => {
            p.exprs.get(*cond).span
        }
        Stmt::For {
            init, cond, body, ..
        } => init
            .as_deref()
            .map(|s| span_of_stmt(p, s))
            .or_else(|| cond.map(|c| p.exprs.get(c).span))
            .or_else(|| body.stmts.first().map(|s| span_of_stmt(p, s)))
            .unwrap_or_else(Span::dummy),
        Stmt::Block(b) => b
            .stmts
            .first()
            .map(|s| span_of_stmt(p, s))
            .unwrap_or_else(Span::dummy),
    }
}

/// Whether `e` is an lvalue expression (post-sema shapes only).
fn is_lvalue_expr(p: &Program, e: ExprId) -> bool {
    match &p.exprs.get(e).kind {
        ExprKind::Ident { target, .. } => !matches!(
            target,
            Some(IdentTarget::Func(_)) | Some(IdentTarget::Builtin(_))
        ),
        ExprKind::Unary {
            op: UnOp::Deref, ..
        } => true,
        ExprKind::Member { base, arrow, .. } => *arrow || is_lvalue_expr(p, *base),
        ExprKind::Index { .. } => true,
        ExprKind::StrLit(_) => true,
        _ => false,
    }
}

fn collect_calls(p: &Program, b: &Block, out: &mut HashSet<CallTargetKey>) {
    for s in &b.stmts {
        collect_calls_stmt(p, s, out);
    }
}

type CallTargetKey = (bool, u32); // (is_indirect, func id or 0)

fn record_call(p: &Program, callee: ExprId, out: &mut HashSet<CallTargetKey>) {
    let mut c = callee;
    while let ExprKind::Unary {
        op: UnOp::Deref | UnOp::Addr,
        arg,
    } = &p.exprs.get(c).kind
    {
        c = *arg;
    }
    match &p.exprs.get(c).kind {
        ExprKind::Ident {
            target: Some(IdentTarget::Func(f)),
            ..
        } => {
            out.insert((false, f.0));
        }
        ExprKind::Ident {
            target: Some(IdentTarget::Builtin(_)),
            ..
        } => {}
        _ => {
            out.insert((true, 0));
        }
    }
}

fn collect_calls_stmt(p: &Program, s: &Stmt, out: &mut HashSet<CallTargetKey>) {
    let mut exprs = Vec::new();
    stmt_exprs(s, &mut exprs);
    for e in exprs {
        walk_expr(p, e, &mut |id| {
            if let ExprKind::Call { callee, .. } = &p.exprs.get(id).kind {
                record_call(p, *callee, out);
            }
        });
    }
    match s {
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            collect_calls(p, then_blk, out);
            if let Some(e) = else_blk {
                collect_calls(p, e, out);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => collect_calls(p, body, out),
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                collect_calls_stmt(p, i, out);
            }
            collect_calls(p, body, out);
        }
        Stmt::Switch { cases, default, .. } => {
            for c in cases {
                collect_calls(p, &c.body, out);
            }
            if let Some(d) = default {
                collect_calls(p, d, out);
            }
        }
        Stmt::Block(b) => collect_calls(p, b, out),
        _ => {}
    }
}

/// Top-level expressions directly attached to a statement (not recursing
/// into nested blocks).
fn stmt_exprs(s: &Stmt, out: &mut Vec<ExprId>) {
    match s {
        Stmt::Expr(e) => out.push(*e),
        Stmt::Local { init, .. } => out.extend(init.iter().copied()),
        Stmt::If { cond, .. } => out.push(*cond),
        Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => out.push(*cond),
        Stmt::For { cond, step, .. } => {
            out.extend(cond.iter().copied());
            out.extend(step.iter().copied());
        }
        Stmt::Switch { scrutinee, .. } => out.push(*scrutinee),
        Stmt::Return { value, .. } => out.extend(value.iter().copied()),
        Stmt::Spawn { call, .. } => out.push(*call),
        _ => {}
    }
}

/// Depth-first walk over an expression tree.
pub fn walk_expr(p: &Program, e: ExprId, f: &mut impl FnMut(ExprId)) {
    f(e);
    match &p.exprs.get(e).kind {
        ExprKind::Unary { arg, .. }
        | ExprKind::IncDec { arg, .. }
        | ExprKind::Cast { arg, .. }
        | ExprKind::SizeofExpr(arg) => walk_expr(p, *arg, f),
        ExprKind::Binary { lhs, rhs, .. }
        | ExprKind::Assign { lhs, rhs, .. }
        | ExprKind::Comma { lhs, rhs } => {
            walk_expr(p, *lhs, f);
            walk_expr(p, *rhs, f);
        }
        ExprKind::Call { callee, args } => {
            walk_expr(p, *callee, f);
            for a in args {
                walk_expr(p, *a, f);
            }
        }
        ExprKind::Member { base, .. } => walk_expr(p, *base, f),
        ExprKind::Index { base, index } => {
            walk_expr(p, *base, f);
            walk_expr(p, *index, f);
        }
        ExprKind::Cond {
            cond,
            then_e,
            else_e,
        } => {
            walk_expr(p, *cond, f);
            walk_expr(p, *then_e, f);
            walk_expr(p, *else_e, f);
        }
        ExprKind::InitList(items) => {
            for i in items {
                walk_expr(p, *i, f);
            }
        }
        _ => {}
    }
}

/// Register slots assigned anywhere in an expression.
fn collect_assigned_exprs(p: &Program, e: ExprId, out: &mut HashSet<LocalId>) {
    walk_expr(p, e, &mut |id| {
        let lhs = match &p.exprs.get(id).kind {
            ExprKind::Assign { lhs, .. } => Some(*lhs),
            ExprKind::IncDec { arg, .. } => Some(*arg),
            _ => None,
        };
        if let Some(lhs) = lhs {
            if let ExprKind::Ident {
                target: Some(IdentTarget::Local(slot)),
                ..
            } = &p.exprs.get(lhs).kind
            {
                out.insert(*slot);
            }
        }
    });
}

fn collect_assigned_block(p: &Program, b: &Block, out: &mut HashSet<LocalId>) {
    for s in &b.stmts {
        collect_assigned_stmt(p, s, out);
    }
}

fn collect_assigned_stmt(p: &Program, s: &Stmt, out: &mut HashSet<LocalId>) {
    let mut exprs = Vec::new();
    stmt_exprs(s, &mut exprs);
    for e in exprs {
        collect_assigned_exprs(p, e, out);
    }
    // Local declarations with initializers also (re)define their slot.
    if let Stmt::Local {
        slot: Some(slot),
        init: Some(_),
        ..
    } = s
    {
        out.insert(*slot);
    }
    match s {
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            collect_assigned_block(p, then_blk, out);
            if let Some(e) = else_blk {
                collect_assigned_block(p, e, out);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
            collect_assigned_block(p, body, out)
        }
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                collect_assigned_stmt(p, i, out);
            }
            collect_assigned_block(p, body, out);
        }
        Stmt::Switch { cases, default, .. } => {
            for c in cases {
                collect_assigned_block(p, &c.body, out);
            }
            if let Some(d) = default {
                collect_assigned_block(p, d, out);
            }
        }
        Stmt::Block(b) => collect_assigned_block(p, b, out),
        _ => {}
    }
}
