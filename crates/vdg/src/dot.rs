//! Graphviz DOT export of a VDG, for debugging lowering and the solvers.

use crate::graph::{Graph, NodeKind};
use std::fmt::Write as _;

/// Renders the whole graph in DOT format.
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::from("digraph vdg {\n  node [shape=box, fontname=\"monospace\"];\n");
    for (id, n) in g.nodes() {
        let label = node_label(g, &n.kind);
        let _ = writeln!(out, "  n{} [label=\"n{}: {}\"];", id.0, id.0, label);
    }
    for (id, n) in g.nodes() {
        for (port, &iid) in n.inputs.iter().enumerate() {
            let src = g.input(iid).src;
            let src_node = g.output(src).node;
            let _ = writeln!(out, "  n{} -> n{} [label=\"{}\"];", src_node.0, id.0, port);
        }
    }
    out.push_str("}\n");
    out
}

fn node_label(g: &Graph, kind: &NodeKind) -> String {
    match kind {
        NodeKind::Base(b) => format!("base {}", g.base(*b).display()),
        NodeKind::Alloc(b) => format!("alloc {}", g.base(*b).display()),
        NodeKind::FuncConst(b) => {
            let base = g.base(*b);
            match &base.kind {
                crate::graph::BaseKind::Func { func } => {
                    format!("fn {}", g.func(*func).name)
                }
                _ => "fn ?".to_string(),
            }
        }
        NodeKind::InitStore => "initstore".to_string(),
        NodeKind::ScalarConst => "const".to_string(),
        NodeKind::NullConst => "null".to_string(),
        NodeKind::Member(f) => format!(".{}", g.field_name(*f)),
        NodeKind::IndexElem => "[*]".to_string(),
        NodeKind::PassThrough => "ptr-arith".to_string(),
        NodeKind::ExtractField(f) => format!("extract .{}", g.field_name(*f)),
        NodeKind::ExtractElem => "extract [*]".to_string(),
        NodeKind::Primop => "primop".to_string(),
        NodeKind::Gamma => "gamma".to_string(),
        NodeKind::Lookup { indirect } => {
            format!("lookup{}", if *indirect { " *" } else { "" })
        }
        NodeKind::Update { indirect } => {
            format!("update{}", if *indirect { " *" } else { "" })
        }
        NodeKind::Call => "call".to_string(),
        NodeKind::Return { func } => format!("return<{}>", g.func(*func).name),
        NodeKind::Entry { func } => format!("entry<{}>", g.func(*func).name),
        NodeKind::CopyMem => "copymem".to_string(),
        NodeKind::Free => "free".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{lower, BuildOptions};

    #[test]
    fn dot_renders_every_node() {
        let prog = cfront::compile("int main(void) { int x; x = 1; return x; }").unwrap();
        let g = lower(&prog, &BuildOptions::default()).unwrap();
        let dot = super::to_dot(&g);
        assert!(dot.starts_with("digraph"));
        for (id, _) in g.nodes() {
            assert!(dot.contains(&format!("n{}:", id.0)));
        }
    }
}
