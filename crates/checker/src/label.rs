//! Oracle labeling: grading static diagnostics against the
//! interpreter's runtime ground truth.
//!
//! [`interp::run_traced`] executes the program under the poisoned-free
//! semantics, classifying the first memory-safety fault and tracing
//! every access, free, local escape, runtime def/use observation, and
//! uninitialized read — all keyed by the same AST [`ExprId`]s the
//! checkers anchor diagnostics to. Each diagnostic is then:
//!
//! - **true positive** — runtime evidence confirms the defect (the
//!   matching fault fired at the site; the local pointer escaped; the
//!   read observed an undefined location; the store was never read);
//! - **false positive** — the site executed and the defect did not
//!   materialize;
//! - **unreachable** — the site never executed, so the run neither
//!   confirms nor refutes it (the paper's "cannot tell" row).
//!
//! The reverse direction matters too: a classified runtime fault with
//! no diagnostic at its site ([`refuted_fault`]) is a checker+solver
//! *soundness* failure, and CI fails on any occurrence.

use crate::{CheckKind, Diagnostic};
use cfront::ast::ExprId;
use interp::exec::{FaultKind, RaceObs, RunRecord, Trace};

/// The oracle's verdict on one diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Runtime evidence confirms the defect.
    TruePositive,
    /// The site executed and the defect did not materialize.
    FalsePositive,
    /// The site never executed under the oracle run.
    Unreachable,
}

impl Label {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Label::TruePositive => "true-positive",
            Label::FalsePositive => "false-positive",
            Label::Unreachable => "unreachable",
        }
    }
}

/// A diagnostic plus its oracle verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledDiagnostic {
    /// The static finding.
    pub diag: Diagnostic,
    /// The oracle's verdict.
    pub label: Label,
}

/// Whether the run faulted with `kind` at `site`.
fn faulted(rec: &RunRecord, site: ExprId, kinds: &[FaultKind]) -> bool {
    rec.fault
        .as_ref()
        .is_some_and(|f| f.site == site && kinds.contains(&f.kind))
}

/// Whether `site` shows up as executed in the evidence relevant to
/// `kind`.
fn executed(kind: CheckKind, site: ExprId, t: &Trace) -> bool {
    let accessed = t.reads.contains_key(&site) || t.writes.contains_key(&site);
    match kind {
        CheckKind::UseAfterFree | CheckKind::NullDeref => accessed,
        CheckKind::DoubleFree => t.frees.contains_key(&site),
        CheckKind::DanglingLocal => {
            accessed || t.returns.contains(&site) || t.local_escapes.contains(&site)
        }
        CheckKind::UninitRead => t.reads.contains_key(&site),
        CheckKind::DeadStore => t.writes.contains_key(&site),
        CheckKind::DataRace => accessed,
    }
}

/// Normalizes a race site pair to the `(min, max)` form the interpreter
/// records.
fn norm_pair(a: ExprId, b: ExprId) -> (ExprId, ExprId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

/// Grades `diags` against one oracle run. Race diagnostics are graded
/// against the run's own observed races only; pass schedule-exploration
/// evidence via [`label_with_races`] when available.
pub fn label_diagnostics(diags: Vec<Diagnostic>, rec: &RunRecord) -> Vec<LabeledDiagnostic> {
    label_with_races(diags, rec, None)
}

/// Grades `diags` against one oracle run plus, for race diagnostics,
/// the union of races and executed sites observed across a bounded
/// schedule exploration ([`interp::explore_races`]): a race pair seen
/// under *any* schedule confirms the diagnostic, and a site that
/// executed under any schedule counts as reached.
pub fn label_with_races(
    diags: Vec<Diagnostic>,
    rec: &RunRecord,
    obs: Option<&RaceObs>,
) -> Vec<LabeledDiagnostic> {
    diags
        .into_iter()
        .map(|diag| {
            let t = &rec.trace;
            let site = diag.site;
            let confirmed = match diag.kind {
                CheckKind::UseAfterFree => faulted(rec, site, &[FaultKind::UseAfterFree]),
                CheckKind::DoubleFree => faulted(rec, site, &[FaultKind::DoubleFree]),
                // An empty referent set predicts "null or uninit", so
                // either fault kind confirms it.
                CheckKind::NullDeref => {
                    faulted(rec, site, &[FaultKind::NullDeref, FaultKind::UninitDeref])
                }
                CheckKind::DanglingLocal => t.local_escapes.contains(&site),
                CheckKind::UninitRead => t.uninit_reads.contains(&site),
                CheckKind::DeadStore => {
                    t.writes.contains_key(&site) && !t.observed_writes.contains(&site)
                }
                CheckKind::DataRace => diag.related_sites.iter().any(|&r| {
                    let p = norm_pair(site, r);
                    t.races.contains(&p) || obs.is_some_and(|o| o.pairs.contains(&p))
                }),
            };
            let reached = executed(diag.kind, site, t)
                || (diag.kind == CheckKind::DataRace
                    && obs.is_some_and(|o| o.executed.contains(&site)));
            let label = if confirmed {
                Label::TruePositive
            } else if reached {
                Label::FalsePositive
            } else {
                Label::Unreachable
            };
            LabeledDiagnostic { diag, label }
        })
        .collect()
}

/// If the bounded schedule exploration observed a race no [`DataRace`]
/// diagnostic predicted, returns that pair — a soundness refutation of
/// the race checker+solver pair, the interleaving analogue of
/// [`refuted_fault`]. `None` when every observed race is covered.
///
/// [`DataRace`]: CheckKind::DataRace
pub fn refuted_race(diags: &[Diagnostic], obs: &RaceObs) -> Option<(ExprId, ExprId)> {
    obs.pairs
        .iter()
        .find(|&&p| {
            !diags.iter().any(|d| {
                d.kind == CheckKind::DataRace
                    && d.related_sites.iter().any(|&r| norm_pair(d.site, r) == p)
            })
        })
        .copied()
}

/// The diagnostic kinds that would have predicted a given runtime
/// fault.
fn kinds_matching(fault: FaultKind) -> &'static [CheckKind] {
    match fault {
        FaultKind::UseAfterFree => &[CheckKind::UseAfterFree],
        FaultKind::DoubleFree => &[CheckKind::DoubleFree],
        // A null or uninit dereference may be predicted either by the
        // empty-referent checker or by the no-reaching-store checker.
        FaultKind::NullDeref | FaultKind::UninitDeref => {
            &[CheckKind::NullDeref, CheckKind::UninitRead]
        }
        // `free` of a non-heap pointer has no static checker (yet).
        FaultKind::InvalidFree => &[],
    }
}

/// If the oracle run faulted and *no* diagnostic predicted a defect of
/// a matching kind at the faulting site, returns that fault — a
/// soundness refutation of the checker+solver pair. `None` when the run
/// was clean, the fault kind has no static counterpart, or some
/// diagnostic covered it.
pub fn refuted_fault(diags: &[Diagnostic], rec: &RunRecord) -> Option<interp::FaultInfo> {
    let fault = rec.fault.as_ref()?;
    let kinds = kinds_matching(fault.kind);
    if kinds.is_empty() {
        return None;
    }
    let covered = diags
        .iter()
        .any(|d| d.site == fault.site && kinds.contains(&d.kind));
    if covered {
        None
    } else {
        Some(fault.clone())
    }
}
