//! # checker — alias-driven memory-safety checkers
//!
//! The paper's precision spectrum (Weihl → Steensgaard → CI → k=1 →
//! assumption-set CS) is usually scored in pairs and referent-set
//! sizes. This crate scores it the way a tool consumer would: seven
//! safety checkers run over the VDG, each driven by *any*
//! [`alias::Solution`], so the same checker code produces one
//! diagnostic set per solver. Differences between those sets are pure
//! analysis precision — the checker logic never changes.
//!
//! The checkers:
//!
//! - **use-after-free** — a memory access whose backward store walk
//!   reaches a `free` of an overlapping heap object (the `Free` node's
//!   pointer referents act as a kill-set threaded through the store,
//!   analogous to strong-update location sets);
//! - **double-free** — a `free` whose walk reaches an earlier `free`
//!   of an overlapping heap object;
//! - **dangling-local** — the address of a local escaping its frame,
//!   through a `return` or a store into memory that outlives the frame;
//! - **uninit-read** — a load with no reaching store at the base
//!   granularity ([`alias::defuse::def_use_bases`]);
//! - **null-deref** — an indirect access whose referent set is empty
//!   (a null or uninitialized pointer: such a pointer contributes no
//!   points-to pairs, so a sound empty set means the access can never
//!   succeed);
//! - **dead-store** — a store no load or copy may observe;
//! - **data-race** — conflicting accesses from threads the VDG's
//!   may-happen-in-parallel relation says can run concurrently, found
//!   by intersecting per-thread transitive mod/ref footprints
//!   ([`race`]).
//!
//! Every diagnostic is anchored to a [`cfront::Span`] and an AST site,
//! which is what makes the **oracle labeling** possible: the
//! interpreter ([`interp::run_traced`]) executes the same program,
//! classifying faults and tracing accesses by the same AST sites, and
//! [`label::label_diagnostics`] grades each diagnostic true positive,
//! false positive, or unreachable against that ground truth. The
//! [`harness`] module runs every checker under all five solvers and
//! renders the per-solver counts and false-positive rates as a
//! paper-style table.

#![warn(missing_docs)]

pub mod checks;
pub mod harness;
pub mod label;
pub mod race;

pub use checks::run_checks;
pub use harness::{precision_table, render_table, CheckCounts, PrecisionRow, RACE_SCHEDULES};
pub use label::{
    label_diagnostics, label_with_races, refuted_fault, refuted_race, Label, LabeledDiagnostic,
};

use cfront::ast::ExprId;
use cfront::source::{SourceFile, Span};
use vdg::graph::NodeId;

/// Which checker produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CheckKind {
    /// Access to a possibly-freed heap object.
    UseAfterFree,
    /// `free` of a possibly already-freed heap object.
    DoubleFree,
    /// Address of a local escaping its frame.
    DanglingLocal,
    /// Load with no reaching store.
    UninitRead,
    /// Indirect access through a pointer with an empty referent set.
    NullDeref,
    /// Store that no load or copy may observe.
    DeadStore,
    /// Conflicting unsynchronized accesses from concurrently-live
    /// threads, at least one of them a write.
    DataRace,
}

impl CheckKind {
    /// Stable machine-readable name (table column / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::UseAfterFree => "use-after-free",
            CheckKind::DoubleFree => "double-free",
            CheckKind::DanglingLocal => "dangling-local",
            CheckKind::UninitRead => "uninit-read",
            CheckKind::NullDeref => "null-deref",
            CheckKind::DeadStore => "dead-store",
            CheckKind::DataRace => "data-race",
        }
    }

    /// All seven kinds, in report order.
    pub fn all() -> [CheckKind; 7] {
        [
            CheckKind::UseAfterFree,
            CheckKind::DoubleFree,
            CheckKind::DanglingLocal,
            CheckKind::UninitRead,
            CheckKind::NullDeref,
            CheckKind::DeadStore,
            CheckKind::DataRace,
        ]
    }
}

/// How serious a diagnostic is: errors describe accesses that fault (or
/// corrupt memory) whenever they execute; warnings describe latent or
/// lint-grade findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Faults if it executes.
    Error,
    /// Latent or lint-grade.
    Warning,
}

impl Severity {
    /// Lowercase label used in rendered diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One checker finding, anchored to source and attributed to the solver
/// that drove it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The checker that fired.
    pub kind: CheckKind,
    /// Error or warning.
    pub severity: Severity,
    /// The [`alias::Solver`] name whose solution drove the checker.
    pub analysis: String,
    /// The VDG node the finding anchors to.
    pub node: NodeId,
    /// The AST expression performing the flagged operation — the key
    /// the oracle labeler joins runtime evidence on.
    pub site: ExprId,
    /// Source range of the flagged operation.
    pub span: Span,
    /// Human-readable description, lowercase, no trailing period.
    pub message: String,
    /// Solver-attributed evidence: the points-to referents and related
    /// sites (e.g. the `free` calls a use-after-free may observe),
    /// rendered as short strings.
    pub witness: Vec<String>,
    /// Spans of related sites (the frees of a use-after-free / double
    /// free, the partner access of a data race), for secondary carets.
    pub related_spans: Vec<Span>,
    /// AST sites of the related operations, parallel in meaning to
    /// [`Diagnostic::related_spans`]. The race labeler joins
    /// `(site, related_site)` pairs against oracle-observed race pairs.
    pub related_sites: Vec<ExprId>,
}

impl Diagnostic {
    /// Renders the diagnostic against `file` with a source caret, as
    /// `ruf95 check` prints it:
    ///
    /// ```text
    /// bench.c:12:5: error: use of heap object freed earlier [use-after-free][ci]
    ///     return *p;
    ///            ^^
    ///   note: heap:main:builtin#0; freed at bench.c:11:5
    /// ```
    pub fn render(&self, file: &SourceFile) -> String {
        use std::fmt::Write as _;
        let lc = file.line_col(self.span.start);
        let mut out = format!(
            "{}:{}:{}: {}: {} [{}][{}]\n{}",
            file.name(),
            lc.line,
            lc.col,
            self.severity.label(),
            self.message,
            self.kind.name(),
            self.analysis,
            file.caret(self.span),
        );
        if !self.witness.is_empty() {
            let _ = write!(out, "\n  note: {}", self.witness.join("; "));
        }
        for &rs in &self.related_spans {
            let rlc = file.line_col(rs.start);
            let _ = write!(out, "\n  related: {}:{}:{}", file.name(), rlc.line, rlc.col);
        }
        out
    }
}
