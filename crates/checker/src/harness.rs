//! The precision harness: every checker under every solver, graded by
//! the interpreter oracle, rendered as a paper-style table.
//!
//! The harness is the checker-level restatement of the paper's
//! experiment: hold the client fixed, vary only the analysis, and ask
//! whether added context sensitivity buys the client anything. Here the
//! client is a diagnostic tool, so the currency is true/false-positive
//! counts instead of referent-set sizes.

use crate::label::{label_with_races, refuted_fault, refuted_race, Label, LabeledDiagnostic};
use crate::{CheckKind, Diagnostic};
use alias::{AnalysisError, CiResult, SolverSpec};
use cfront::ast::{ExprId, Program};
use interp::exec::{explore_races, run_traced, Config, RaceObs, RunRecord};
use interp::FaultInfo;
use vdg::graph::Graph;

/// How many thread interleavings the oracle explores when grading race
/// diagnostics for a threaded program (round-robin plus seeded
/// preemption; see [`interp::explore_races`]).
pub const RACE_SCHEDULES: usize = 8;

/// Per-kind and per-label diagnostic counts for one solver.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckCounts {
    /// Diagnostics per checker, in [`CheckKind::all`] order.
    pub by_kind: [usize; 7],
    /// Oracle-confirmed diagnostics.
    pub true_positives: usize,
    /// Diagnostics whose site executed without the defect.
    pub false_positives: usize,
    /// Diagnostics at sites the oracle run never reached.
    pub unreachable: usize,
}

impl CheckCounts {
    /// Tallies labeled diagnostics.
    pub fn from_labeled(labeled: &[LabeledDiagnostic]) -> CheckCounts {
        let mut c = CheckCounts::default();
        for l in labeled {
            let k = CheckKind::all()
                .iter()
                .position(|&k| k == l.diag.kind)
                .expect("kind in order");
            c.by_kind[k] += 1;
            match l.label {
                Label::TruePositive => c.true_positives += 1,
                Label::FalsePositive => c.false_positives += 1,
                Label::Unreachable => c.unreachable += 1,
            }
        }
        c
    }

    /// Total diagnostics.
    pub fn total(&self) -> usize {
        self.by_kind.iter().sum()
    }

    /// False positives over oracle-decided diagnostics (unreachable
    /// sites are excluded, since the run says nothing about them).
    pub fn fp_rate(&self) -> f64 {
        let decided = self.true_positives + self.false_positives;
        if decided == 0 {
            0.0
        } else {
            self.false_positives as f64 / decided as f64
        }
    }
}

/// One solver's row of the precision table.
#[derive(Debug, Clone)]
pub struct PrecisionRow {
    /// The [`alias::Solver`] name.
    pub solver: String,
    /// Every diagnostic with its oracle verdict.
    pub labeled: Vec<LabeledDiagnostic>,
    /// A runtime fault no diagnostic predicted — a soundness failure of
    /// the checker+solver pair. Must be `None` everywhere.
    pub refuted: Option<FaultInfo>,
    /// A race pair observed under some explored schedule that no
    /// [`CheckKind::DataRace`] diagnostic predicted — the interleaving
    /// analogue of `refuted`. Must be `None` everywhere.
    pub refuted_race: Option<(ExprId, ExprId)>,
    /// The tallies.
    pub counts: CheckCounts,
}

/// Runs every checker under one solver configuration. `ci` supplies the
/// shared path vocabulary and discovered call graph; pass the same one
/// for every spec so diagnostic differences are points-to precision
/// alone.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from budgeted solvers (CS, k=1).
pub fn check_with_spec(
    graph: &Graph,
    spec: &SolverSpec,
    ci: &CiResult,
) -> Result<Vec<Diagnostic>, AnalysisError> {
    let sol = spec.solve(graph, Some(ci))?;
    Ok(crate::run_checks(graph, sol.as_ref(), &ci.callees))
}

/// Runs the oracle interpreter once for `prog`, serving `input` to
/// `getchar()`.
pub fn oracle_run(prog: &Program, input: &[u8]) -> RunRecord {
    run_traced(
        prog,
        &Config {
            input: input.to_vec(),
            ..Config::default()
        },
    )
}

/// Bounded interleaving exploration for race grading: `None` for a
/// sequential program, otherwise the union of races and executed sites
/// over [`RACE_SCHEDULES`] schedules with `input` served to `getchar()`.
pub fn oracle_races(prog: &Program, input: &[u8]) -> Option<RaceObs> {
    prog.uses_threads().then(|| {
        explore_races(
            prog,
            &Config {
                input: input.to_vec(),
                ..Config::default()
            },
            RACE_SCHEDULES,
        )
    })
}

/// Runs every checker under each of `specs`, labels all diagnostics
/// against one oracle run, and returns one row per solver (in the given
/// order).
///
/// # Errors
///
/// Propagates [`AnalysisError`] from budgeted solvers (CS, k=1).
pub fn precision_table(
    prog: &Program,
    graph: &Graph,
    specs: &[SolverSpec],
    input: &[u8],
) -> Result<Vec<PrecisionRow>, AnalysisError> {
    let ci = SolverSpec::ci().solve_ci(graph);
    let rec = oracle_run(prog, input);
    // Threaded programs additionally get a bounded interleaving
    // exploration, so race diagnostics are graded against every
    // explored schedule rather than one arbitrary one.
    let obs = oracle_races(prog, input);
    let mut rows = Vec::with_capacity(specs.len());
    for spec in specs {
        let diags = check_with_spec(graph, spec, &ci)?;
        let refuted = refuted_fault(&diags, &rec);
        let refuted_race = obs.as_ref().and_then(|o| refuted_race(&diags, o));
        let labeled = label_with_races(diags, &rec, obs.as_ref());
        let counts = CheckCounts::from_labeled(&labeled);
        rows.push(PrecisionRow {
            solver: spec.name().to_string(),
            labeled,
            refuted,
            refuted_race,
            counts,
        });
    }
    Ok(rows)
}

/// Short column heads for the checkers, in [`CheckKind::all`] order.
pub const KIND_HEADS: [&str; 7] = ["uaf", "dfree", "dangl", "uninit", "null", "dead", "race"];

/// Renders rows as an aligned paper-style table:
///
/// ```text
/// solver         uaf  dfree  dangl  uninit  null  dead  total   TP   FP  unreach  FP-rate
/// weihl            1      1      2       0     0     3      7    4    2        1    0.333
/// ```
pub fn render_table(rows: &[PrecisionRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "solver");
    for h in KIND_HEADS {
        let _ = write!(out, "  {h:>6}");
    }
    let _ = writeln!(
        out,
        "  {:>6}  {:>4}  {:>4}  {:>7}  {:>7}",
        "total", "TP", "FP", "unreach", "FP-rate"
    );
    for r in rows {
        let _ = write!(out, "{:<12}", r.solver);
        for n in r.counts.by_kind {
            let _ = write!(out, "  {n:>6}");
        }
        let _ = writeln!(
            out,
            "  {:>6}  {:>4}  {:>4}  {:>7}  {:>7.3}",
            r.counts.total(),
            r.counts.true_positives,
            r.counts.false_positives,
            r.counts.unreachable,
            r.counts.fp_rate(),
        );
        if let Some(f) = &r.refuted {
            let _ = writeln!(out, "  !! refuted: unpredicted runtime fault {:?}", f.kind);
        }
        if let Some((a, b)) = &r.refuted_race {
            let _ = writeln!(
                out,
                "  !! refuted: unpredicted data race between sites {} and {}",
                a.0, b.0
            );
        }
    }
    out
}
