//! data-race: conflicting unsynchronized accesses from threads the
//! VDG's thread model says may run concurrently.
//!
//! The checker is the static half of the paper-style mod/ref pipeline:
//! every thread context — each `spawn` site's entry function, plus the
//! spawning `main` itself — gets a **transitive footprint**, the set of
//! memory accesses reachable from it through the solver-discovered call
//! graph, with each access carrying its referent base set under the
//! driving [`alias::Solution`]. Two contexts that may-happen-in-parallel
//! (spawn × spawn via [`vdg::graph::ThreadModel::spawns_mhp`], spawn ×
//! `main` via the per-expression pending-spawn mask) are then
//! intersected: any cross-context pair of accesses with overlapping
//! bases and at least one write is a candidate race.
//!
//! Two soundness-preserving refinements keep the report honest:
//!
//! - **thread-local frames**: a *direct* access always touches the
//!   accessing thread's own frame, so a common [`BaseKind::Local`] base
//!   only witnesses a race when at least one side is an indirect access
//!   (the local's address escaped to the other thread);
//! - **memory copies**: [`NodeKind::CopyMem`] reads its source and
//!   writes its destination without a `Lookup`/`Update`, so it
//!   contributes one read access and one write access.
//!
//! Like every other checker the pass is monotone in the solution:
//! coarser referent sets can only add intersections, so false-positive
//! counts grow along the paper's precision spectrum (CS ≤ CI ≤
//! {Weihl, Steensgaard}) while the may-race relation stays sound.
//! Diagnostics anchor at the earlier access, carry the partner access
//! in `related_spans`/`related_sites` (the oracle labeler joins the
//! site pair against observed interleaving races), and name the common
//! bases plus the MHP relation in the witness.

use crate::{CheckKind, Diagnostic, Severity};
use alias::fxhash::HashMap;
use alias::modref::node_owner_map;
use alias::Solution;
use cfront::ast::ExprId;
use cfront::source::Span;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use vdg::graph::{BaseId, BaseKind, Graph, NodeId, NodeKind, VFuncId};

/// One memory access in some thread's footprint.
struct Access {
    node: NodeId,
    site: ExprId,
    span: Span,
    is_write: bool,
    /// Whether the access dereferences a pointer (as opposed to naming
    /// a variable directly). Direct accesses can only touch the
    /// accessing thread's own frame.
    indirect: bool,
    /// Sorted referent bases under the driving solution.
    bases: Vec<BaseId>,
}

/// A thread context whose footprint participates in MHP intersection.
#[derive(Clone)]
enum Ctx {
    /// The spawning `main` thread, restricted to the region where a
    /// given spawn is pending.
    Main,
    /// The thread of spawn site `i`.
    Spawn(usize),
}

/// Runs the race checker, appending to `diags`. A program with no
/// `spawn` gets no diagnostics and pays only the `uses_threads` check,
/// keeping sequential reports byte-identical.
pub fn check_races(
    graph: &Graph,
    sol: &dyn Solution,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
    diags: &mut Vec<Diagnostic>,
) {
    let tm = graph.thread_model();
    if !tm.uses_threads() {
        return;
    }

    let accesses = collect_accesses(graph, sol);
    let owner = node_owner_map(graph);
    let footprints = footprints(graph, callees, &accesses, &owner);

    let main_f = match graph.func_ids().find(|&f| graph.func(f).name == "main") {
        Some(f) => f,
        None => return,
    };
    let spawn_nodes: HashSet<NodeId> = tm.spawns.iter().map(|s| s.node).collect();

    // Per spawn site, the indices of accesses `main` (or a function it
    // calls outside any spawn) may perform while that spawn is pending.
    let mut main_pending: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); tm.spawns.len()];
    for (idx, a) in accesses.iter().enumerate() {
        if owner[a.node.0 as usize] != main_f {
            continue;
        }
        let mask = tm.pending(a.site);
        for (i, mp) in main_pending.iter_mut().enumerate() {
            if mask & (1u64 << i) != 0 {
                mp.insert(idx as u32);
            }
        }
    }
    for (node, n) in graph.nodes() {
        if !matches!(n.kind, NodeKind::Call)
            || owner[node.0 as usize] != main_f
            || spawn_nodes.contains(&node)
        {
            continue;
        }
        let Some(site) = n.site else { continue };
        let mask = tm.pending(site);
        if mask == 0 {
            continue;
        }
        if let Some(fs) = callees.get(&node) {
            for (i, mp) in main_pending.iter_mut().enumerate() {
                if mask & (1u64 << i) != 0 {
                    for f in fs {
                        mp.extend(footprints[f.0 as usize].iter().copied());
                    }
                }
            }
        }
    }

    // Candidate pairs, deduplicated on the normalized node pair: the
    // same conflict often arises through several MHP context pairs, and
    // one diagnostic per access pair is what a tool consumer wants.
    let mut seen: BTreeMap<(NodeId, NodeId), Diagnostic> = BTreeMap::new();
    for (i, s) in tm.spawns.iter().enumerate() {
        let fi = &footprints[s.callee.0 as usize];
        pair_contexts(
            graph,
            sol,
            &accesses,
            fi,
            &main_pending[i],
            Ctx::Spawn(i),
            Ctx::Main,
            tm,
            &mut seen,
        );
        for (j, t) in tm.spawns.iter().enumerate().skip(i) {
            if tm.spawns_mhp(i, j) {
                pair_contexts(
                    graph,
                    sol,
                    &accesses,
                    fi,
                    &footprints[t.callee.0 as usize],
                    Ctx::Spawn(i),
                    Ctx::Spawn(j),
                    tm,
                    &mut seen,
                );
            }
        }
    }
    diags.extend(seen.into_values());
}

/// Collects every memory access with its referent bases: all
/// `Lookup`/`Update` nodes, plus one read and one write per `CopyMem`.
fn collect_accesses(graph: &Graph, sol: &dyn Solution) -> Vec<Access> {
    let mut out = Vec::new();
    for (node, n) in graph.nodes() {
        let Some(site) = n.site else { continue };
        match n.kind {
            NodeKind::Lookup { indirect } | NodeKind::Update { indirect } => {
                let bases = sol.loc_referent_bases(graph, node);
                if bases.is_empty() {
                    continue; // null-deref territory, not a race
                }
                out.push(Access {
                    node,
                    site,
                    span: n.span,
                    is_write: matches!(n.kind, NodeKind::Update { .. }),
                    indirect,
                    bases,
                });
            }
            NodeKind::CopyMem => {
                for (port, is_write) in [(2usize, false), (1usize, true)] {
                    let bases = sol.output_referent_bases(graph, graph.input_src(node, port));
                    if bases.is_empty() {
                        continue;
                    }
                    out.push(Access {
                        node,
                        site,
                        span: n.span,
                        is_write,
                        indirect: true,
                        bases,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Per-function transitive access footprints (indices into `accesses`),
/// a worklist fixpoint over the solver-discovered call graph:
/// `footprint(f) = own(f) ∪ ⋃ footprint(callee)` for every call node of
/// `f`. Cycles converge because the sets only grow.
fn footprints(
    graph: &Graph,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
    accesses: &[Access],
    owner: &[VFuncId],
) -> Vec<BTreeSet<u32>> {
    let nf = graph.func_count();
    let mut fp: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nf];
    for (idx, a) in accesses.iter().enumerate() {
        fp[owner[a.node.0 as usize].0 as usize].insert(idx as u32);
    }
    let mut call_edges: Vec<Vec<VFuncId>> = vec![Vec::new(); nf];
    for (node, n) in graph.nodes() {
        if matches!(n.kind, NodeKind::Call) {
            if let Some(fs) = callees.get(&node) {
                call_edges[owner[node.0 as usize].0 as usize].extend(fs.iter().copied());
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for f in 0..nf {
            for g in call_edges[f].clone() {
                if g.0 as usize == f {
                    continue;
                }
                let add: Vec<u32> = fp[g.0 as usize]
                    .iter()
                    .copied()
                    .filter(|x| !fp[f].contains(x))
                    .collect();
                if !add.is_empty() {
                    fp[f].extend(add);
                    changed = true;
                }
            }
        }
    }
    fp
}

/// Intersects two context footprints, recording one diagnostic per
/// conflicting access pair.
#[allow(clippy::too_many_arguments)]
fn pair_contexts(
    graph: &Graph,
    sol: &dyn Solution,
    accesses: &[Access],
    xs: &BTreeSet<u32>,
    ys: &BTreeSet<u32>,
    cx: Ctx,
    cy: Ctx,
    tm: &vdg::graph::ThreadModel,
    seen: &mut BTreeMap<(NodeId, NodeId), Diagnostic>,
) {
    for &xi in xs {
        let a = &accesses[xi as usize];
        for &yi in ys {
            let b = &accesses[yi as usize];
            // The two contexts are always distinct thread instances
            // (spawn × main, spawn × other spawn, or a self-MHP spawn's
            // two instances), so even the *same* access index pairs —
            // but a shared read racing with itself is no conflict.
            if xi == yi {
                if !a.is_write {
                    continue;
                }
            } else if !a.is_write && !b.is_write {
                continue;
            }
            let common = conflicting_bases(graph, a, b);
            if common.is_empty() {
                continue;
            }
            let a_first = (a.span.start, a.node.0) <= (b.span.start, b.node.0);
            let (first, second) = if a_first { (a, b) } else { (b, a) };
            let (cf, cs) = if a_first { (&cx, &cy) } else { (&cy, &cx) };
            let key = (first.node, second.node);
            if seen.contains_key(&key) {
                continue;
            }
            let names = crate::checks::base_names(graph, &common);
            let verb = |w: bool| if w { "write" } else { "read" };
            let d = Diagnostic {
                kind: CheckKind::DataRace,
                severity: Severity::Warning,
                analysis: sol.analysis().to_string(),
                node: first.node,
                site: first.site,
                span: first.span,
                message: format!(
                    "possible data race: {} may conflict with a concurrent {}",
                    verb(first.is_write),
                    verb(second.is_write),
                ),
                witness: vec![
                    format!("both may touch {names}"),
                    format!(
                        "{} may run in parallel with {}",
                        ctx_name(graph, tm, cf),
                        ctx_name(graph, tm, cs)
                    ),
                ],
                related_spans: vec![second.span],
                related_sites: vec![second.site],
            };
            seen.insert(key, d);
        }
    }
}

/// The base sets' intersection, minus bases that cannot be shared: a
/// function's code is immutable, and a common `Local` base with both
/// accesses direct means two distinct frames, not one location.
fn conflicting_bases(graph: &Graph, a: &Access, b: &Access) -> Vec<BaseId> {
    a.bases
        .iter()
        .copied()
        .filter(|x| b.bases.binary_search(x).is_ok())
        .filter(|&x| match graph.base(x).kind {
            BaseKind::Func { .. } => false,
            BaseKind::Local { .. } => a.indirect || b.indirect,
            _ => true,
        })
        .collect()
}

/// Human-readable context label for witness text.
fn ctx_name(graph: &Graph, tm: &vdg::graph::ThreadModel, c: &Ctx) -> String {
    match c {
        Ctx::Main => "main".to_string(),
        Ctx::Spawn(i) => format!("thread `{}`", graph.func(tm.spawns[*i].callee).name),
    }
}
