//! The checkers. Each is a pure function of the VDG, a
//! [`Solution`], and the solver-discovered call graph, so the same code
//! runs under all five analyses and diagnostic-set differences measure
//! analysis precision alone.
//!
//! Everything is phrased at the *base* granularity
//! ([`Solution::loc_referent_bases`] /
//! [`Solution::output_referent_bases`]) — the coarsest query every
//! solver supports, including the unification baseline. Pair-level
//! detail, where available, only enriches witness text.

use crate::{CheckKind, Diagnostic, Severity};
use alias::defuse::def_use_bases;
use alias::fxhash::HashMap;
use alias::modref::node_owner_map;
use alias::Solution;
use std::collections::{BTreeSet, HashSet};
use vdg::graph::{BaseId, BaseKind, Graph, NodeId, NodeKind, OutputId, VFuncId, ValueKind};

/// Runs every checker over `graph` under `sol`.
///
/// `callees` is the solver-discovered call graph
/// ([`alias::CiResult::callees`]); pass the same one to every solver so
/// the interprocedural store walks are identical and diagnostic-set
/// differences come from points-to sets alone.
///
/// Diagnostics are sorted by source position, then kind, then node.
pub fn run_checks(
    graph: &Graph,
    sol: &dyn Solution,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_use_after_free(graph, sol, callees, &mut diags);
    check_double_free(graph, sol, callees, &mut diags);
    check_dangling_local(graph, sol, &mut diags);
    check_uninit_and_dead(graph, sol, callees, &mut diags);
    check_null_deref(graph, sol, &mut diags);
    crate::race::check_races(graph, sol, callees, &mut diags);
    diags.sort_by_key(|d| (d.span.start, d.kind, d.node.0));
    diags
}

/// Whether two sorted base sets intersect.
fn intersects(a: &[BaseId], b: &[BaseId]) -> bool {
    a.iter().any(|x| b.binary_search(x).is_ok())
}

/// Display names of the sorted base set, for witness text.
pub(crate) fn base_names(graph: &Graph, bases: &[BaseId]) -> String {
    bases
        .iter()
        .map(|&b| graph.base(b).display())
        .collect::<Vec<_>>()
        .join(", ")
}

/// The heap subset of the referents of `out` (sorted).
fn heap_referents(graph: &Graph, sol: &dyn Solution, out: OutputId) -> Vec<BaseId> {
    sol.output_referent_bases(graph, out)
        .into_iter()
        .filter(|&b| matches!(graph.base(b).kind, BaseKind::Heap { .. }))
        .collect()
}

/// Backward walk over the store dataflow from `store_out`, collecting
/// every [`NodeKind::Free`] on some path. This is the same traversal
/// discipline as the def/use walk — through gammas, into callees at
/// calls, out to call sites at entries — with no strong kills: an
/// intervening store does not resurrect a freed object, so updates
/// never terminate the walk.
fn frees_reaching(
    graph: &Graph,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
    store_out: OutputId,
) -> Vec<NodeId> {
    let mut frees = BTreeSet::new();
    let mut visited: HashSet<OutputId> = HashSet::new();
    let mut stack = vec![store_out];
    while let Some(o) = stack.pop() {
        if !visited.insert(o) {
            continue;
        }
        debug_assert!(matches!(graph.output(o).kind, ValueKind::Store));
        let node = graph.output(o).node;
        match &graph.node(node).kind {
            NodeKind::Update { .. } => stack.push(graph.input_src(node, 1)),
            NodeKind::Gamma => {
                for port in 0..graph.node(node).inputs.len() {
                    stack.push(graph.input_src(node, port));
                }
            }
            NodeKind::CopyMem => stack.push(graph.input_src(node, 0)),
            NodeKind::Call => {
                if let Some(fs) = callees.get(&node) {
                    for f in fs {
                        for &ret in &graph.func(*f).returns {
                            stack.push(graph.input_src(ret, 0));
                        }
                    }
                }
            }
            NodeKind::Entry { func } => {
                for (call, fs) in callees {
                    if fs.contains(func) && graph.has_input(*call, 1) {
                        stack.push(graph.input_src(*call, 1));
                    }
                }
            }
            NodeKind::Free => {
                frees.insert(node);
                stack.push(graph.input_src(node, 1));
            }
            NodeKind::InitStore => {}
            other => {
                debug_assert!(false, "unexpected store producer {other:?} in free walk");
            }
        }
    }
    frees.into_iter().collect()
}

/// use-after-free: a memory op whose location may name a heap object
/// some store-reaching `free` may have deallocated.
fn check_use_after_free(
    graph: &Graph,
    sol: &dyn Solution,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
    diags: &mut Vec<Diagnostic>,
) {
    for (node, is_write) in graph.all_mem_ops() {
        let Some(site) = graph.node(node).site else {
            continue;
        };
        let loc_bases = sol.loc_referent_bases(graph, node);
        let heap_bases: Vec<BaseId> = loc_bases
            .iter()
            .copied()
            .filter(|&b| matches!(graph.base(b).kind, BaseKind::Heap { .. }))
            .collect();
        if heap_bases.is_empty() {
            continue;
        }
        let mut witness = Vec::new();
        let mut related = Vec::new();
        for free in frees_reaching(graph, callees, graph.input_src(node, 1)) {
            let killed = heap_referents(graph, sol, graph.input_src(free, 0));
            let hit: Vec<BaseId> = killed
                .iter()
                .copied()
                .filter(|b| heap_bases.binary_search(b).is_ok())
                .collect();
            if !hit.is_empty() {
                witness.push(format!("may free {}", base_names(graph, &hit)));
                related.push(graph.node(free).span);
            }
        }
        if !witness.is_empty() {
            let verb = if is_write { "write to" } else { "read of" };
            diags.push(Diagnostic {
                kind: CheckKind::UseAfterFree,
                severity: Severity::Error,
                analysis: sol.analysis().to_string(),
                node,
                site,
                span: graph.node(node).span,
                message: format!("{verb} heap object possibly freed earlier"),
                witness,
                related_spans: related,
                related_sites: Vec::new(),
            });
        }
    }
}

/// double-free: a `free` whose pointer may name a heap object an
/// earlier store-reaching `free` already deallocated.
fn check_double_free(
    graph: &Graph,
    sol: &dyn Solution,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
    diags: &mut Vec<Diagnostic>,
) {
    for (node, n) in graph.nodes() {
        if !matches!(n.kind, NodeKind::Free) {
            continue;
        }
        let Some(site) = n.site else { continue };
        let own = heap_referents(graph, sol, graph.input_src(node, 0));
        if own.is_empty() {
            continue;
        }
        let mut witness = Vec::new();
        let mut related = Vec::new();
        for earlier in frees_reaching(graph, callees, graph.input_src(node, 1)) {
            let killed = heap_referents(graph, sol, graph.input_src(earlier, 0));
            let hit: Vec<BaseId> = killed
                .iter()
                .copied()
                .filter(|b| own.binary_search(b).is_ok())
                .collect();
            if !hit.is_empty() {
                witness.push(format!("already freed {}", base_names(graph, &hit)));
                related.push(graph.node(earlier).span);
            }
        }
        if !witness.is_empty() {
            diags.push(Diagnostic {
                kind: CheckKind::DoubleFree,
                severity: Severity::Error,
                analysis: sol.analysis().to_string(),
                node,
                site,
                span: n.span,
                message: "heap object possibly freed twice".to_string(),
                witness,
                related_spans: related,
                related_sites: Vec::new(),
            });
        }
    }
}

/// dangling-local: the address of a local escaping its frame — returned
/// from its owning function, or stored into memory that outlives the
/// frame (a global, the heap, or another function's local).
fn check_dangling_local(graph: &Graph, sol: &dyn Solution, diags: &mut Vec<Diagnostic>) {
    // (a) Returns whose value may reference a local of the returning
    // function.
    for f in graph.func_ids() {
        for &ret in &graph.func(f).returns {
            if !graph.has_input(ret, 1) {
                continue;
            }
            let Some(site) = graph.node(ret).site else {
                continue;
            };
            let bases = sol.output_referent_bases(graph, graph.input_src(ret, 1));
            let own: Vec<BaseId> = bases
                .into_iter()
                .filter(
                    |&b| matches!(graph.base(b).kind, BaseKind::Local { func, .. } if func == f),
                )
                .collect();
            if own.is_empty() {
                continue;
            }
            diags.push(Diagnostic {
                kind: CheckKind::DanglingLocal,
                severity: Severity::Warning,
                analysis: sol.analysis().to_string(),
                node: ret,
                site,
                span: graph.node(ret).span,
                message: format!(
                    "returning a pointer into the frame of `{}`",
                    graph.func(f).name
                ),
                witness: vec![format!("may point to {}", base_names(graph, &own))],
                related_spans: Vec::new(),
                related_sites: Vec::new(),
            });
        }
    }

    // (b) Stores whose value may reference a local of the storing
    // function, written into memory that outlives the frame.
    let owner = node_owner_map(graph);
    for (node, is_write) in graph.all_mem_ops() {
        if !is_write {
            continue;
        }
        let Some(site) = graph.node(node).site else {
            continue;
        };
        let f = owner[node.0 as usize];
        let val_bases = sol.output_referent_bases(graph, graph.input_src(node, 2));
        let own: Vec<BaseId> = val_bases
            .into_iter()
            .filter(|&b| matches!(graph.base(b).kind, BaseKind::Local { func, .. } if func == f))
            .collect();
        if own.is_empty() {
            continue;
        }
        let loc_bases = sol.loc_referent_bases(graph, node);
        let outlive: Vec<BaseId> = loc_bases
            .into_iter()
            .filter(|&b| {
                !matches!(graph.base(b).kind, BaseKind::Local { func, .. } if func == f)
                    && !matches!(graph.base(b).kind, BaseKind::Func { .. })
            })
            .collect();
        if outlive.is_empty() {
            continue;
        }
        diags.push(Diagnostic {
            kind: CheckKind::DanglingLocal,
            severity: Severity::Warning,
            analysis: sol.analysis().to_string(),
            node,
            site,
            span: graph.node(node).span,
            message: format!(
                "storing a pointer into the frame of `{}` where it outlives the frame",
                graph.func(f).name
            ),
            witness: vec![
                format!("may point to {}", base_names(graph, &own)),
                format!("stored into {}", base_names(graph, &outlive)),
            ],
            related_spans: Vec::new(),
            related_sites: Vec::new(),
        });
    }
}

/// uninit-read and dead-store, both driven by one base-granular def/use
/// computation: a load with no reaching store, and a store no load (or
/// memory copy) observes.
fn check_uninit_and_dead(
    graph: &Graph,
    sol: &dyn Solution,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
    diags: &mut Vec<Diagnostic>,
) {
    let du = def_use_bases(graph, sol, callees);

    for (node, is_write) in graph.all_mem_ops() {
        if is_write {
            continue;
        }
        let Some(site) = graph.node(node).site else {
            continue;
        };
        if sol.loc_referent_bases(graph, node).is_empty() {
            continue; // null-deref territory
        }
        if du.defs_of(node).is_empty() {
            diags.push(Diagnostic {
                kind: CheckKind::UninitRead,
                severity: Severity::Warning,
                analysis: sol.analysis().to_string(),
                node,
                site,
                span: graph.node(node).span,
                message: "read of a location no store may have initialized".to_string(),
                witness: vec![format!(
                    "reads {}",
                    base_names(graph, &sol.loc_referent_bases(graph, node))
                )],
                related_spans: Vec::new(),
                related_sites: Vec::new(),
            });
        }
    }

    // Live stores: every def of some use, plus stores a CopyMem source
    // may observe (string/struct copies read memory without a Lookup).
    let mut live: HashSet<NodeId> = du.uses.values().flatten().copied().collect();
    let copy_srcs: Vec<Vec<BaseId>> = graph
        .nodes()
        .filter(|(_, n)| matches!(n.kind, NodeKind::CopyMem))
        .map(|(n, _)| sol.output_referent_bases(graph, graph.input_src(n, 2)))
        .collect();
    for (node, is_write) in graph.all_mem_ops() {
        if !is_write || live.contains(&node) {
            continue;
        }
        let bases = sol.loc_referent_bases(graph, node);
        if copy_srcs.iter().any(|src| intersects(&bases, src)) {
            live.insert(node);
        }
    }

    for (node, is_write) in graph.all_mem_ops() {
        if !is_write || live.contains(&node) {
            continue;
        }
        let Some(site) = graph.node(node).site else {
            continue;
        };
        let bases = sol.loc_referent_bases(graph, node);
        if bases.is_empty() {
            continue; // null-deref territory
        }
        diags.push(Diagnostic {
            kind: CheckKind::DeadStore,
            severity: Severity::Warning,
            analysis: sol.analysis().to_string(),
            node,
            site,
            span: graph.node(node).span,
            message: "store that no read may observe".to_string(),
            witness: vec![format!("writes {}", base_names(graph, &bases))],
            related_spans: Vec::new(),
            related_sites: Vec::new(),
        });
    }
}

/// null-deref: an indirect access whose referent set is empty. Under a
/// sound analysis an empty set means the pointer can only be null or
/// uninitialized, so the access faults whenever it executes.
fn check_null_deref(graph: &Graph, sol: &dyn Solution, diags: &mut Vec<Diagnostic>) {
    for (node, is_write) in graph.indirect_mem_ops() {
        let Some(site) = graph.node(node).site else {
            continue;
        };
        if !sol.loc_referent_bases(graph, node).is_empty() {
            continue;
        }
        let verb = if is_write { "write" } else { "read" };
        diags.push(Diagnostic {
            kind: CheckKind::NullDeref,
            severity: Severity::Error,
            analysis: sol.analysis().to_string(),
            node,
            site,
            span: graph.node(node).span,
            message: format!("indirect {verb} through a null or uninitialized pointer"),
            witness: vec!["referent set is empty".to_string()],
            related_spans: Vec::new(),
            related_sites: Vec::new(),
        });
    }
}
