//! Fixture-driven tests for the six checkers, the oracle labeler, and
//! the cross-solver precision harness.

use alias::SolverSpec;
use checker::harness::{check_with_spec, oracle_run, precision_table, render_table};
use checker::{label_diagnostics, refuted_fault, CheckKind, Diagnostic, Label, Severity};
use vdg::build::{lower, BuildOptions};
use vdg::graph::Graph;

fn pipeline(src: &str) -> (cfront::ast::Program, Graph) {
    let prog = cfront::compile(src).expect("fixture compiles");
    let graph = lower(&prog, &BuildOptions::default()).expect("fixture lowers");
    (prog, graph)
}

/// Runs every checker under one named solver.
fn check_under(src: &str, solver: &str) -> Vec<Diagnostic> {
    let (_, graph) = pipeline(src);
    let spec = SolverSpec::by_name(solver).expect("known solver");
    let ci = SolverSpec::ci().solve_ci(&graph);
    check_with_spec(&graph, &spec, &ci).expect("solver within budget")
}

fn kinds(diags: &[Diagnostic]) -> Vec<CheckKind> {
    let mut ks: Vec<CheckKind> = diags.iter().map(|d| d.kind).collect();
    ks.dedup();
    ks
}

const UAF: &str = r#"
int main(void) {
    int *p;
    p = (int *) malloc(sizeof(int));
    *p = 7;
    free(p);
    return *p;
}
"#;

#[test]
fn use_after_free_flagged_and_confirmed() {
    let (prog, graph) = pipeline(UAF);
    let ci = SolverSpec::ci().solve_ci(&graph);
    let diags = check_with_spec(&graph, &SolverSpec::ci(), &ci).unwrap();
    let uaf: Vec<_> = diags
        .iter()
        .filter(|d| d.kind == CheckKind::UseAfterFree)
        .collect();
    assert!(!uaf.is_empty(), "expected a use-after-free diagnostic");
    assert!(uaf.iter().all(|d| d.severity == Severity::Error));
    assert!(
        uaf.iter().all(|d| !d.related_spans.is_empty()),
        "use-after-free should point at the free"
    );

    let rec = oracle_run(&prog, &[]);
    assert!(refuted_fault(&diags, &rec).is_none());
    let labeled = label_diagnostics(diags, &rec);
    assert!(
        labeled
            .iter()
            .any(|l| l.diag.kind == CheckKind::UseAfterFree && l.label == Label::TruePositive),
        "oracle should confirm the use-after-free"
    );
}

#[test]
fn double_free_flagged_through_alias() {
    let src = r#"
int main(void) {
    int *p;
    int *q;
    p = (int *) malloc(sizeof(int));
    q = p;
    free(p);
    free(q);
    return 0;
}
"#;
    let diags = check_under(src, "ci");
    assert!(
        kinds(&diags).contains(&CheckKind::DoubleFree),
        "aliased double free should be flagged: {:?}",
        kinds(&diags)
    );

    let (prog, _) = pipeline(src);
    let rec = oracle_run(&prog, &[]);
    assert!(refuted_fault(&diags, &rec).is_none());
    let labeled = label_diagnostics(diags, &rec);
    assert!(labeled
        .iter()
        .any(|l| l.diag.kind == CheckKind::DoubleFree && l.label == Label::TruePositive));
}

#[test]
fn dangling_return_of_local_flagged() {
    let src = r#"
int *leak(void) {
    int x;
    x = 4;
    return &x;
}
int main(void) {
    int *p;
    p = leak();
    return 0;
}
"#;
    let diags = check_under(src, "ci");
    assert!(
        kinds(&diags).contains(&CheckKind::DanglingLocal),
        "returning &local should be flagged: {:?}",
        kinds(&diags)
    );

    let (prog, _) = pipeline(src);
    let rec = oracle_run(&prog, &[]);
    let labeled = label_diagnostics(diags, &rec);
    assert!(labeled
        .iter()
        .any(|l| l.diag.kind == CheckKind::DanglingLocal && l.label == Label::TruePositive));
}

#[test]
fn dangling_store_into_global_flagged() {
    let src = r#"
int *g;
void stash(void) {
    int x;
    x = 1;
    g = &x;
}
int main(void) {
    stash();
    return 0;
}
"#;
    let diags = check_under(src, "ci");
    assert!(
        kinds(&diags).contains(&CheckKind::DanglingLocal),
        "storing &local into a global should be flagged: {:?}",
        kinds(&diags)
    );
}

#[test]
fn store_of_local_into_local_not_flagged() {
    let src = r#"
int main(void) {
    int x;
    int *p;
    x = 3;
    p = &x;
    return *p;
}
"#;
    let diags = check_under(src, "ci");
    assert!(
        !kinds(&diags).contains(&CheckKind::DanglingLocal),
        "local-to-local address store is not an escape: {:?}",
        kinds(&diags)
    );
}

#[test]
fn uninit_read_flagged_and_confirmed() {
    let src = r#"
int main(void) {
    int x;
    int *p;
    p = &x;
    return *p;
}
"#;
    let diags = check_under(src, "ci");
    assert!(
        kinds(&diags).contains(&CheckKind::UninitRead),
        "read of uninitialized local should be flagged: {:?}",
        kinds(&diags)
    );

    let (prog, _) = pipeline(src);
    let rec = oracle_run(&prog, &[]);
    let labeled = label_diagnostics(diags, &rec);
    assert!(labeled
        .iter()
        .any(|l| l.diag.kind == CheckKind::UninitRead && l.label == Label::TruePositive));
}

#[test]
fn null_deref_flagged_and_refutation_covered() {
    let src = r#"
int main(void) {
    int *p;
    p = NULL;
    return *p;
}
"#;
    let diags = check_under(src, "ci");
    assert!(
        kinds(&diags).contains(&CheckKind::NullDeref),
        "deref of null should be flagged: {:?}",
        kinds(&diags)
    );

    let (prog, _) = pipeline(src);
    let rec = oracle_run(&prog, &[]);
    assert!(
        rec.fault.is_some(),
        "oracle should fault on the null dereference"
    );
    assert!(
        refuted_fault(&diags, &rec).is_none(),
        "the diagnostic should cover the runtime fault"
    );
}

#[test]
fn dead_store_flagged_and_confirmed() {
    // Two address-taken locals: the store through `p` is never read
    // (plain scalar locals never touch the store, and the base-granular
    // def/use walk has no strong kills, so a simple overwrite does not
    // make the first store dead — only a never-read base does).
    let src = r#"
int main(void) {
    int x;
    int y;
    int *p;
    int *q;
    p = &x;
    q = &y;
    *p = 1;
    *q = 2;
    return *q;
}
"#;
    let (prog, graph) = pipeline(src);
    let ci = SolverSpec::ci().solve_ci(&graph);
    let diags = check_with_spec(&graph, &SolverSpec::ci(), &ci).unwrap();
    let dead: Vec<_> = diags
        .iter()
        .filter(|d| d.kind == CheckKind::DeadStore)
        .collect();
    assert_eq!(dead.len(), 1, "exactly the first store is dead: {dead:?}");

    let rec = oracle_run(&prog, &[]);
    let labeled = label_diagnostics(diags, &rec);
    assert!(labeled
        .iter()
        .any(|l| l.diag.kind == CheckKind::DeadStore && l.label == Label::TruePositive));
}

#[test]
fn clean_program_has_no_errors_or_refutation() {
    let src = r#"
int main(void) {
    int *p;
    p = (int *) malloc(sizeof(int));
    *p = 5;
    free(p);
    return 0;
}
"#;
    let (prog, graph) = pipeline(src);
    let ci = SolverSpec::ci().solve_ci(&graph);
    let rec = oracle_run(&prog, &[]);
    assert!(
        rec.fault.is_none(),
        "fixture must run clean: {:?}",
        rec.fault
    );
    for spec in SolverSpec::all() {
        let diags = check_with_spec(&graph, &spec, &ci).unwrap();
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{}: unexpected error diagnostics: {:?}",
            spec.name(),
            diags
        );
        assert!(refuted_fault(&diags, &rec).is_none());
    }
}

#[test]
fn diagnostic_renders_with_caret_and_note() {
    let (prog, graph) = pipeline(UAF);
    let _ = &prog;
    let ci = SolverSpec::ci().solve_ci(&graph);
    let diags = check_with_spec(&graph, &SolverSpec::ci(), &ci).unwrap();
    let d = diags
        .iter()
        .find(|d| d.kind == CheckKind::UseAfterFree)
        .expect("uaf diag");
    let file = cfront::source::SourceFile::new("uaf.c", UAF);
    let rendered = d.render(&file);
    assert!(rendered.contains("uaf.c:"), "{rendered}");
    assert!(rendered.contains("[use-after-free][ci]"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
    assert!(rendered.contains("note:"), "{rendered}");
    assert!(rendered.contains("related:"), "{rendered}");
}

/// On a branch-polluted double free, solver-precision monotonicity must
/// show up as diagnostic-site inclusion: everything CS flags, CI flags;
/// everything CI flags, the Weihl baseline flags.
#[test]
fn diagnostic_sites_nest_along_the_spectrum() {
    let src = r#"
int main(void) {
    int *p;
    int *q;
    int *r;
    p = (int *) malloc(sizeof(int));
    q = (int *) malloc(sizeof(int));
    *p = 1;
    *q = 2;
    if (*p) {
        r = p;
    } else {
        r = q;
    }
    free(p);
    free(r);
    return *q;
}
"#;
    let (_, graph) = pipeline(src);
    let ci = SolverSpec::ci().solve_ci(&graph);
    let sites = |spec: &SolverSpec| -> std::collections::BTreeSet<(u32, CheckKind)> {
        check_with_spec(&graph, spec, &ci)
            .unwrap()
            .into_iter()
            .filter(|d| {
                matches!(
                    d.kind,
                    CheckKind::UseAfterFree | CheckKind::DoubleFree | CheckKind::DanglingLocal
                )
            })
            .map(|d| (d.span.start, d.kind))
            .collect()
    };
    let cs = sites(&SolverSpec::cs());
    let cis = sites(&SolverSpec::ci());
    let weihl = sites(&SolverSpec::weihl());
    assert!(cs.is_subset(&cis), "CS ⊆ CI violated: {cs:?} vs {cis:?}");
    assert!(
        cis.is_subset(&weihl),
        "CI ⊆ Weihl violated: {cis:?} vs {weihl:?}"
    );
}

#[test]
fn precision_table_runs_all_solvers_on_benchmarks() {
    for b in ["anagram", "part", "span"] {
        let bench = suite::by_name(b).expect("known benchmark");
        let (prog, graph) = pipeline(bench.source);
        let rows = precision_table(&prog, &graph, &SolverSpec::all(), bench.input)
            .expect("all solvers within budget");
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.refuted.is_none(),
                "{b}/{}: oracle refuted the checkers: {:?}",
                r.solver,
                r.refuted
            );
            assert_eq!(r.counts.total(), r.labeled.len());
        }
        let table = render_table(&rows);
        assert!(table.contains("solver"), "{table}");
        assert!(table.contains("FP-rate"), "{table}");
    }
}

// ---------------------------------------------------------------------------
// data-race checker + interleaving oracle
// ---------------------------------------------------------------------------

const RACY_GLOBAL: &str = r#"
int g;
void worker(int x) { g = x; }
int main(void) {
    int r;
    spawn worker(1);
    g = 2;
    join;
    r = g;
    return r;
}
"#;

#[test]
fn racy_global_write_is_flagged_by_every_solver_and_oracle_confirmed() {
    let (prog, graph) = pipeline(RACY_GLOBAL);
    let rows =
        precision_table(&prog, &graph, &SolverSpec::all(), &[]).expect("all solvers within budget");
    assert_eq!(rows.len(), 5);
    for r in &rows {
        let races: Vec<_> = rows_races(r);
        assert!(
            !races.is_empty(),
            "{}: expected a data-race diagnostic on the planted race",
            r.solver
        );
        assert!(
            races.iter().any(|l| l.label == Label::TruePositive),
            "{}: the planted race should be oracle-confirmed, got {:?}",
            r.solver,
            races.iter().map(|l| l.label).collect::<Vec<_>>()
        );
        assert!(
            races.iter().all(|l| l.diag.severity == Severity::Warning),
            "{}: races are warnings (latent, schedule-dependent)",
            r.solver
        );
        assert!(
            races.iter().all(|l| !l.diag.related_sites.is_empty()),
            "{}: a race diagnostic must carry its partner access",
            r.solver
        );
        assert!(r.refuted.is_none());
        assert!(
            r.refuted_race.is_none(),
            "{}: every observed race must be predicted",
            r.solver
        );
    }
}

fn rows_races(r: &checker::PrecisionRow) -> Vec<&checker::LabeledDiagnostic> {
    r.labeled
        .iter()
        .filter(|l| l.diag.kind == CheckKind::DataRace)
        .collect()
}

#[test]
fn join_synchronized_program_has_no_race_diagnostics() {
    let src = r#"
int g;
void worker(int x) { g = x; }
int main(void) {
    spawn worker(5);
    join;
    g = g + 1;
    return g;
}
"#;
    let (prog, graph) = pipeline(src);
    let rows =
        precision_table(&prog, &graph, &SolverSpec::all(), &[]).expect("solvers within budget");
    for r in &rows {
        assert!(
            rows_races(r).is_empty(),
            "{}: join-all synchronizes the child, no race exists: {:?}",
            r.solver,
            rows_races(r)
                .iter()
                .map(|l| &l.diag.message)
                .collect::<Vec<_>>()
        );
        assert!(r.refuted_race.is_none());
    }
}

#[test]
fn thread_local_locals_do_not_race() {
    let src = r#"
void worker(int x) {
    int t;
    t = x;
    t = t + 1;
}
int main(void) {
    spawn worker(1);
    spawn worker(2);
    join;
    return 0;
}
"#;
    for solver in ["weihl", "steensgaard", "ci", "k1", "cs"] {
        let diags = check_under(src, solver);
        assert!(
            !diags.iter().any(|d| d.kind == CheckKind::DataRace),
            "{solver}: direct accesses to a spawned function's locals touch \
             distinct frames and must not race"
        );
    }
}

#[test]
fn escaped_local_pointer_races_with_owner() {
    let src = r#"
void worker(int *p) { *p = 5; }
int main(void) {
    int x;
    x = 1;
    spawn worker(&x);
    x = 2;
    join;
    return x;
}
"#;
    let (prog, graph) = pipeline(src);
    let rows =
        precision_table(&prog, &graph, &SolverSpec::all(), &[]).expect("solvers within budget");
    for r in &rows {
        assert!(
            !rows_races(r).is_empty(),
            "{}: the child writes main's `x` through an escaped pointer while \
             main writes it directly",
            r.solver
        );
        assert!(r.refuted_race.is_none());
    }
}

#[test]
fn concurrent_reads_are_not_a_race() {
    let src = r#"
int g;
void worker(void) {
    int t;
    t = g;
}
int main(void) {
    int u;
    g = 1;
    spawn worker();
    u = g;
    join;
    return u;
}
"#;
    for solver in ["weihl", "steensgaard", "ci", "k1", "cs"] {
        let diags = check_under(src, solver);
        assert!(
            !diags.iter().any(|d| d.kind == CheckKind::DataRace),
            "{solver}: two reads of `g` with no concurrent write do not race"
        );
    }
}

#[test]
fn race_false_positives_are_monotone_across_the_spectrum() {
    // A racy program with enough pointer structure for the solvers to
    // diverge: the child writes through one of two pointers, so coarser
    // referent sets can only add race pairs.
    let src = r#"
int a;
int b;
void worker(int *p) { *p = 1; }
int main(void) {
    int *q;
    q = &a;
    if (getchar() > 64) { q = &b; }
    spawn worker(q);
    a = 3;
    join;
    return a + b;
}
"#;
    let (prog, graph) = pipeline(src);
    let rows =
        precision_table(&prog, &graph, &SolverSpec::all(), b"A").expect("solvers within budget");
    let count = |name: &str| {
        rows.iter()
            .find(|r| r.solver == name)
            .map(|r| rows_races(r).len())
            .expect("solver row")
    };
    assert!(count("cs") <= count("ci"), "CS ≤ CI violated");
    assert!(count("k1") <= count("ci"), "k1 ≤ CI violated");
    assert!(count("ci") <= count("weihl"), "CI ≤ Weihl violated");
    assert!(
        count("ci") <= count("steensgaard"),
        "CI ≤ Steensgaard violated"
    );
    for r in &rows {
        assert!(
            r.refuted_race.is_none(),
            "{}: missed observed race",
            r.solver
        );
    }
}
