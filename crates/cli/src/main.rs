//! `ruf95` — command-line driver for the alias-analysis reproduction.
//!
//! Run `ruf95 help` for the command list, or `ruf95 <command> --help`
//! for one command's flags. Commands that analyse a program accept
//! either a path to a `.c` file or `bench:NAME` to load a program from
//! the bundled suite.
//!
//! Every pipeline failure — frontend, lowering, or a solver's step
//! budget — funnels through [`alias::AnalysisError`] and is rendered
//! uniformly here at the boundary.

use alias::modref::mod_ref;
use alias::stats::compare_at_indirect_refs;
use alias::{Analysis, AnalysisError, CsConfig};
use std::process::ExitCode;

mod dispatch;

/// One entry in the subcommand table. `value_flags` lists the flags
/// that consume the following argument; everything else starting with
/// `--` is a boolean switch.
pub(crate) struct Command {
    name: &'static str,
    /// Argument synopsis after the command name, for usage lines.
    synopsis: &'static str,
    about: &'static str,
    /// Per-flag help lines, one `--flag  description` per entry.
    flag_help: &'static [&'static str],
    value_flags: &'static [&'static str],
    needs_source: bool,
    run: fn(&Ctx) -> Result<(), String>,
}

pub(crate) const SOURCE_ARG: &str = "<file.c | bench:NAME>";

const COMMANDS: &[Command] = &[
    Command {
        name: "refs",
        synopsis: SOURCE_ARG,
        about: "points-to sets at indirect refs (CI)",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| cmd_refs(&cx.analysis()?, &cx.file()),
    },
    Command {
        name: "compare",
        synopsis: SOURCE_ARG,
        about: "CI vs CS at every indirect ref",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| {
            let a = cx.analysis()?;
            cmd_compare(&a, &cx.file()).map_err(|e| cx.render_err(e))
        },
    },
    Command {
        name: "modref",
        synopsis: SOURCE_ARG,
        about: "per-function mod/ref summary",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| cmd_modref(&cx.analysis()?),
    },
    Command {
        name: "dot",
        synopsis: SOURCE_ARG,
        about: "VDG in Graphviz DOT on stdout",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| {
            print!("{}", vdg::dot::to_dot(&cx.analysis()?.graph));
            Ok(())
        },
    },
    Command {
        name: "ir",
        synopsis: SOURCE_ARG,
        about: "VDG as a per-function listing",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| {
            print!("{}", vdg::display::to_text(&cx.analysis()?.graph));
            Ok(())
        },
    },
    Command {
        name: "run",
        synopsis: SOURCE_ARG,
        about: "interpret and check soundness",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| cmd_run(&cx.analysis()?, &cx.name),
    },
    Command {
        name: "spectrum",
        synopsis: "<file.c | bench:NAME> [--json]",
        about: "Weihl/Steensgaard/CI/k=1/CS table (engine-driven)",
        flag_help: &["--json  dump the metrics report and referent sets as JSON"],
        value_flags: &[],
        needs_source: true,
        run: |cx| {
            cmd_spectrum(&cx.name, &cx.source, cx.flags.has("json")).map_err(|e| cx.render_err(e))
        },
    },
    Command {
        name: "analyze",
        synopsis: "[<file.c | bench:NAME>] [--suite] [--fresh] [--json] [--connect ADDR]",
        about: "full solver stack via the typed request API; prints fingerprints",
        flag_help: &[
            "--suite         analyze every bundled benchmark instead of one source",
            "--fresh         bypass every cache and solve from scratch",
            "--project NAME  session name on the service (default cli)",
            "--json          print the full typed response as JSON",
            "--connect ADDR  send to a running `ruf95 serve` daemon",
            "--store DIR     persistent summary store for in-process runs",
        ],
        value_flags: &["project", "connect", "store", "mem-budget", "threads"],
        needs_source: false,
        run: dispatch::cmd_analyze,
    },
    Command {
        name: "query",
        synopsis: "<file.c | bench:NAME> (--site N | --a N --b N) [--analysis NAME] [--exhaustive]",
        about: "point alias queries, demand-driven by default (no whole-program solve)",
        flag_help: &[
            "--site N         referent set at indirect ref N",
            "--a N / --b N    may-alias verdict for indirect refs N and M",
            "--analysis NAME  solver to query (default ci)",
            "--exhaustive     solve the whole program first, then look the answer up",
            "--project NAME   session name on the service (default cli)",
            "--json           print the full typed response as JSON",
            "--connect ADDR   send to a running `ruf95 serve` daemon",
        ],
        value_flags: &["site", "a", "b", "analysis", "project", "connect", "store"],
        needs_source: true,
        run: dispatch::cmd_query,
    },
    Command {
        name: "check",
        synopsis: "[<file.c | bench:NAME>] [--suite] [--analysis NAME] [--json]",
        about: "memory-safety checkers with oracle-labeled precision table",
        flag_help: &[
            "--suite          check every bundled benchmark instead of one source",
            "--analysis NAME  solver whose diagnostics are rendered (default ci)",
            "--json           print the metrics report and diagnostics as JSON",
            "--project NAME   session name on the service (default cli)",
            "--connect ADDR   send to a running `ruf95 serve` daemon",
            "--store DIR      persistent summary store for in-process runs",
        ],
        value_flags: &["analysis", "project", "connect", "store"],
        needs_source: false,
        run: dispatch::cmd_check,
    },
    Command {
        name: "fuzz",
        synopsis:
            "[--seeds N] [--start-seed N] [--budget-ms N] [--threads N] [--threaded] [--no-shrink] [--json]",
        about: "differential fuzzing campaign over all five solvers",
        flag_help: &[
            "--seeds N       number of seeds to run (default 100)",
            "--start-seed N  first seed of the range (default 0)",
            "--budget-ms N   per-solver wall-clock budget in ms (default 200)",
            "--threads N     worker threads, 0 = all cores (default 0)",
            "--threaded      spawn-heavy generator preset: every seed also runs",
            "                the race-soundness and race-monotonicity properties",
            "--no-shrink     skip counterexample minimisation",
            "--json          print the full FuzzReport as JSON",
        ],
        value_flags: &["seeds", "start-seed", "budget-ms", "threads"],
        needs_source: false,
        run: cmd_fuzz,
    },
    Command {
        name: "stats",
        synopsis: "[--seeds N] [--start-seed N] [--suite] [--threaded] [--json]",
        about: "campaign-corpus dedup accounting: unique function fingerprints",
        flag_help: &[
            "--seeds N       generated programs to scan (default 200)",
            "--start-seed N  first seed of the range (default 0)",
            "--suite         also scan the bundled benchmarks and litmus programs",
            "--threaded      scan the spawn-heavy threaded preset instead",
            "--default-gen   plain generator shapes instead of the campaign preset",
            "--threads N     worker threads, 0 = all cores (default 0)",
            "--json          print the stats as JSON",
        ],
        value_flags: &["seeds", "start-seed", "threads"],
        needs_source: false,
        run: cmd_stats,
    },
    Command {
        name: "campaign",
        synopsis: "[--seeds N] [--chunk N] [--dir DIR] [--max-chunks N] [--out FILE] [--no-shrink]",
        about: "resumable ecosystem-scale campaign with quarantine and deduplicated report",
        flag_help: &[
            "--seeds N        seeds to drive through all solvers+checkers (default 10000)",
            "--start-seed N   first seed of the range (default 0)",
            "--chunk N        seeds per journal chunk — the resume granularity (default 500)",
            "--dir DIR        state directory: journal, quarantine, report (default campaign)",
            "--max-chunks N   checkpoint and stop after N chunks this invocation",
            "--out FILE       also write CAMPAIGN_report.json to FILE",
            "--threads N      worker threads, 0 = all cores (default 0)",
            "--budget-ms N    advisory per-solver wall budget in ms (default 200)",
            "--max-steps N    solver step budget (default 2000000)",
            "--interp-steps N interpreter step budget (default 1000000)",
            "--default-gen    plain generator shapes instead of the campaign preset",
            "--threaded       spawn-heavy preset: race soundness/monotonicity per seed",
            "--no-shrink      skip quarantine/counterexample minimisation",
            "--quiet          no per-chunk progress on stderr",
            "--json           also print the final report JSON to stdout",
        ],
        value_flags: &[
            "seeds",
            "start-seed",
            "chunk",
            "dir",
            "max-chunks",
            "out",
            "threads",
            "budget-ms",
            "max-steps",
            "interp-steps",
            "panic-seed",
        ],
        needs_source: false,
        run: dispatch::cmd_campaign,
    },
    Command {
        name: "incremental",
        synopsis: "<file.c | bench:NAME> [--edits N] [--seed N] [--next FILE] [--json]",
        about: "re-analyze after edits, reusing memoized summaries",
        flag_help: &[
            "--edits N       length of the seeded edit chain (default 3)",
            "--seed N        seed for the edit generator (default 1995)",
            "--next FILE     re-analyze FILE's contents instead of generating edits",
            "--json          print a JSON array of steps (edit, cross-check, report)",
            "--project NAME  session name on the service (default incremental)",
            "--connect ADDR  push the edit chain through a running daemon's session",
            "--store DIR     persistent summary store for in-process runs",
        ],
        value_flags: &["edits", "seed", "next", "project", "connect", "store"],
        needs_source: true,
        run: dispatch::cmd_incremental,
    },
    Command {
        name: "serve",
        synopsis: "[--addr HOST:PORT] [--store DIR] [--mem-budget BYTES] [--threads N]",
        about: "persistent analysis daemon (JSON over TCP)",
        flag_help: &[
            "--addr HOST:PORT    listen address (default 127.0.0.1:7095)",
            "--store DIR         persist summaries/fingerprints across restarts",
            "--mem-budget BYTES  LRU-evict idle sessions over this estimate (0 = off)",
            "--threads N         worker threads per request, 0 = all cores",
        ],
        value_flags: &["addr", "store", "mem-budget", "threads"],
        needs_source: false,
        run: dispatch::cmd_serve,
    },
    Command {
        name: "client",
        synopsis: "--connect HOST:PORT [REQUESTS.jsonl | -]",
        about: "send newline-delimited JSON requests to a daemon",
        flag_help: &[
            "--connect ADDR  daemon address (required)",
            "reads requests from the file argument, or stdin when absent/`-`",
        ],
        value_flags: &["connect"],
        needs_source: false,
        run: dispatch::cmd_client,
    },
    Command {
        name: "serve-bench",
        synopsis: "[--queries] [--iters N] [--store DIR] [--out FILE]",
        about: "measure cold/warm/restored latency and socket throughput",
        flag_help: &[
            "--queries    benchmark demand-driven queries instead (BENCH_pr7.json)",
            "--iters N    socket query iterations (default 200)",
            "--store DIR  store directory for the restart leg (default: temp)",
            "--out FILE   output path (default BENCH_pr6.json)",
        ],
        value_flags: &["iters", "store", "out"],
        needs_source: false,
        run: dispatch::cmd_serve_bench,
    },
    Command {
        name: "list",
        synopsis: "",
        about: "list bundled benchmarks",
        flag_help: &[],
        value_flags: &[],
        needs_source: false,
        run: |_| {
            for b in suite::benchmarks() {
                println!(
                    "{:<10} {:>5} lines  exit {}",
                    b.name,
                    b.source.lines().count(),
                    b.expected_exit
                );
            }
            Ok(())
        },
    },
];

/// Flags shared by every command, split from the positionals once the
/// command's `value_flags` are known.
pub(crate) struct Flags {
    pub(crate) positional: Vec<String>,
    switches: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], value_flags: &[&str]) -> Result<Flags, String> {
        let mut flags = Flags {
            positional: Vec::new(),
            switches: Vec::new(),
        };
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                flags.positional.push(arg.clone());
                continue;
            };
            if let Some((key, value)) = name.split_once('=') {
                flags
                    .switches
                    .push((key.to_string(), Some(value.to_string())));
            } else if value_flags.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                flags.switches.push((name.to_string(), Some(value.clone())));
            } else {
                flags.switches.push((name.to_string(), None));
            }
        }
        Ok(flags)
    }

    pub(crate) fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|(k, _)| k == name)
    }

    pub(crate) fn get(&self, name: &str) -> Option<&str> {
        self.switches
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    pub(crate) fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, String> {
        match self.switches.iter().find(|(k, _)| k == name) {
            Some((_, Some(v))) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid value `{v}`")),
            Some((_, None)) => Err(format!("--{name} expects a value")),
            None => Ok(default),
        }
    }
}

/// Everything a command handler needs: the loaded source (empty for
/// sourceless commands like `fuzz` and `list`) plus the parsed flags.
pub(crate) struct Ctx {
    pub(crate) name: String,
    pub(crate) source: String,
    pub(crate) flags: Flags,
}

impl Ctx {
    fn analysis(&self) -> Result<Analysis, String> {
        Analysis::builder(&self.source)
            .run()
            .map_err(|e| self.render_err(e))
    }

    fn file(&self) -> cfront::SourceFile {
        cfront::SourceFile::new(&self.name, &self.source)
    }

    /// The single error boundary: every pipeline failure, including a
    /// CS or k=1 step-budget overflow, is rendered here.
    fn render_err(&self, e: AnalysisError) -> String {
        match &e {
            AnalysisError::Frontend(f) => f.render(&self.file()),
            other => other.to_string(),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: ruf95 <command> [args]\n\ncommands:");
    for c in COMMANDS {
        eprintln!("  {:<10} {}", c.name, c.about);
    }
    eprintln!("\nrun `ruf95 <command> --help` for a command's flags");
    ExitCode::from(2)
}

fn command_help(c: &Command) {
    let sep = if c.synopsis.is_empty() { "" } else { " " };
    println!("usage: ruf95 {}{sep}{}\n\n{}", c.name, c.synopsis, c.about);
    if !c.flag_help.is_empty() {
        println!("\nflags:");
        for line in c.flag_help {
            println!("  {line}");
        }
    }
}

/// Builds an engine job, attaching the bundled interpreter input when
/// the name resolves to a suite benchmark (the checker oracle replays
/// the benchmark's real stdin).
fn job_for(name: &str, source: &str) -> engine::Job {
    let mut job = engine::Job::new(name, source);
    if let Some(b) = suite::by_name(name) {
        job.input = b.input.to_vec();
    }
    job
}

pub(crate) fn load_source(spec: &str) -> Result<(String, String), String> {
    if let Some(name) = spec.strip_prefix("bench:") {
        let b = suite::by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `ruf95 list`)"))?;
        return Ok((name.to_string(), b.source.to_string()));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
    Ok((spec.to_string(), text))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        usage();
        return ExitCode::SUCCESS;
    }
    let Some(command) = COMMANDS.iter().find(|c| c.name == cmd) else {
        eprintln!("error: unknown command `{cmd}`\n");
        return usage();
    };
    let rest = &args[1..];
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        command_help(command);
        return ExitCode::SUCCESS;
    }
    let flags = match Flags::parse(rest, command.value_flags) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let (name, source) = if command.needs_source {
        let Some(spec) = flags.positional.first() else {
            eprintln!("usage: ruf95 {} {}", command.name, command.synopsis);
            return ExitCode::from(2);
        };
        match load_source(spec) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        (String::new(), String::new())
    };
    let cx = Ctx {
        name,
        source,
        flags,
    };
    match (command.run)(&cx) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders a node's source position as `line:col`.
fn site_line(graph: &vdg::Graph, file: &cfront::SourceFile, node: vdg::NodeId) -> String {
    let span = graph.node(node).span;
    let lc = file.line_col(span.start);
    format!("{}:{}", lc.line, lc.col)
}

fn cmd_refs(a: &Analysis, file: &cfront::SourceFile) -> Result<(), String> {
    println!(
        "{} nodes, {} outputs, {} CI points-to pairs\n",
        a.graph.node_count(),
        a.graph.output_count(),
        a.ci.total_pairs()
    );
    for (node, is_write) in a.graph.indirect_mem_ops() {
        let names: Vec<String> =
            a.ci.loc_referents(&a.graph, node)
                .iter()
                .map(|&p| a.ci.paths.display(p, &a.graph))
                .collect();
        println!(
            "{} at {}: {{{}}}",
            if is_write { "write" } else { "read " },
            site_line(&a.graph, file, node),
            names.join(", ")
        );
    }
    Ok(())
}

fn cmd_compare(a: &Analysis, file: &cfront::SourceFile) -> Result<(), AnalysisError> {
    let cs = a
        .run_cs(&CsConfig::default())
        .map_err(AnalysisError::from)?;
    let mismatches = compare_at_indirect_refs(&a.graph, &a.ci, &cs);
    println!(
        "CI pairs: {}   CS pairs: {}   indirect refs: {}   mismatches: {}",
        a.ci.total_pairs(),
        cs.total_pairs(),
        a.graph.indirect_mem_ops().len(),
        mismatches.len()
    );
    for m in &mismatches {
        println!(
            "  {} at {}: CI {{{}}} vs CS {{{}}}",
            if m.is_write { "write" } else { "read" },
            site_line(&a.graph, file, m.node),
            m.ci_referents.join(", "),
            m.cs_referents.join(", ")
        );
    }
    if mismatches.is_empty() {
        println!("identical at every indirect memory reference (the paper's headline)");
    }
    Ok(())
}

fn cmd_modref(a: &Analysis) -> Result<(), String> {
    let summary = mod_ref(&a.graph, &a.ci, &a.ci.callees);
    for f in a.graph.func_ids() {
        let info = a.graph.func(f);
        if info.name == "<root>" {
            continue;
        }
        let Some(mr) = summary.transitive.get(&f) else {
            continue;
        };
        let fmt = |set: &std::collections::BTreeSet<alias::PathId>| {
            set.iter()
                .map(|&p| a.ci.paths.display(p, &a.graph))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("{}:", info.name);
        println!("  ref: {{{}}}", fmt(&mr.refs));
        println!("  mod: {{{}}}", fmt(&mr.mods));
    }
    Ok(())
}

fn cmd_run(a: &Analysis, name: &str) -> Result<(), String> {
    let input = suite::by_name(name)
        .map(|b| b.input.to_vec())
        .unwrap_or_default();
    let out = interp::run(
        &a.program,
        &interp::Config {
            input,
            ..interp::Config::default()
        },
    )
    .map_err(|e| e.to_string())?;
    print!("{}", out.stdout);
    println!("[exit {} after {} steps]", out.exit, out.steps);
    let violations = interp::check_solution(&a.program, &a.graph, &a.ci, &out.trace);
    if violations.is_empty() {
        println!("[soundness: every runtime dereference was predicted by the CI analysis]");
        Ok(())
    } else {
        Err(format!("soundness violations: {violations:#?}"))
    }
}

/// The five-analysis spectrum, driven by one engine invocation over the
/// program: every solver runs through the uniform `alias::Solver` trait
/// and the table reads back through the `Solution` view.
fn cmd_spectrum(name: &str, source: &str, json: bool) -> Result<(), AnalysisError> {
    const ORDER: [&str; 5] = ["weihl", "steensgaard", "ci", "k1", "cs"];
    let jobs = vec![job_for(name, source)];
    let run = engine::Engine::new().run(&jobs)?;
    let b = &run.benches[0];
    let file = cfront::SourceFile::new(name, source);
    let base_count = |analysis: &str, node: vdg::NodeId| -> Option<usize> {
        b.solution(analysis)
            .map(|s| s.loc_referent_bases(&b.graph, node).len())
    };

    if json {
        // {"report": <EngineReport>, "refs": [{site, kind, bases:{...}}]}
        let mut refs = Vec::new();
        for (node, is_write) in b.graph.indirect_mem_ops() {
            let bases: Vec<String> = ORDER
                .iter()
                .map(|a| {
                    format!(
                        "\"{a}\": {}",
                        base_count(a, node)
                            .map(|n| n.to_string())
                            .unwrap_or_else(|| "null".into())
                    )
                })
                .collect();
            refs.push(format!(
                "    {{\"site\": \"{}\", \"kind\": \"{}\", \"bases\": {{{}}}}}",
                site_line(&b.graph, &file, node),
                if is_write { "write" } else { "read" },
                bases.join(", ")
            ));
        }
        println!(
            "{{\n  \"report\": {},\n  \"refs\": [\n{}\n  ]\n}}",
            run.report.to_json().trim_end(),
            refs.join(",\n")
        );
        return Ok(());
    }

    println!(
        "{:<32} {:>6} {:>7} {:>5} {:>5} {:>5}",
        "indirect ref", "Weihl", "Steens", "CI", "k=1", "CS"
    );
    for (node, is_write) in b.graph.indirect_mem_ops() {
        let cell = |analysis: &str| -> String {
            base_count(analysis, node)
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<32} {:>6} {:>7} {:>5} {:>5} {:>5}",
            format!(
                "{} {}",
                if is_write { "write" } else { "read" },
                site_line(&b.graph, &file, node)
            ),
            cell("weihl"),
            cell("steensgaard"),
            cell("ci"),
            cell("k1"),
            cell("cs"),
        );
    }
    Ok(())
}

/// Differential fuzzing campaign: generates seeded mini-C programs,
/// runs all five solvers on each, and cross-checks soundness against
/// the interpreter, the precision lattice, and naive-vs-delta
/// fixpoints. Exits nonzero if any violation survives.
fn cmd_fuzz(cx: &Ctx) -> Result<(), String> {
    let cfg = engine::FuzzConfig {
        seeds: cx.flags.get_parsed("seeds", 100)?,
        start_seed: cx.flags.get_parsed("start-seed", 0)?,
        budget_ms: cx.flags.get_parsed("budget-ms", 200)?,
        threads: cx.flags.get_parsed("threads", 0)?,
        shrink: !cx.flags.has("no-shrink"),
        gen: if cx.flags.has("threaded") {
            suite::generator::GenConfig::threaded()
        } else {
            suite::generator::GenConfig::default()
        },
        ..engine::FuzzConfig::default()
    };
    let report = engine::fuzz::fuzz(&cfg);
    if cx.flags.has("json") {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.summary());
        for v in &report.violations {
            println!(
                "\n[{} / {} @ seed {}] {}",
                v.kind, v.solver, v.seed, v.detail
            );
            if let Some(min) = &v.minimized {
                println!("minimized counterexample:\n{min}");
            }
        }
    }
    if report.violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} differential violation(s) found",
            report.violations.len()
        ))
    }
}

/// Corpus dedup accounting: scans a campaign-shaped corpus (plus,
/// optionally, the bundled suite) and reports unique-function
/// fingerprint counts and the dedup ratio a cross-program summary pool
/// would realize.
fn cmd_stats(cx: &Ctx) -> Result<(), String> {
    let cfg = engine::stats::StatsConfig {
        seeds: cx.flags.get_parsed("seeds", 200)?,
        start_seed: cx.flags.get_parsed("start-seed", 0)?,
        gen: if cx.flags.has("threaded") {
            suite::generator::GenConfig::threaded()
        } else if cx.flags.has("default-gen") {
            suite::generator::GenConfig::default()
        } else {
            suite::generator::GenConfig::campaign()
        },
        include_suite: cx.flags.has("suite"),
        threads: cx.flags.get_parsed("threads", 0)?,
    };
    let s = engine::stats::collect(&cfg);
    if cx.flags.has("json") {
        println!("{}", s.to_json());
    } else {
        print!("{}", s.summary());
    }
    Ok(())
}

/// Minimal JSON string literal for the `incremental --json` envelope
/// (edit descriptions contain no control characters).
pub(crate) fn jstr(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}
