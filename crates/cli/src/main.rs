//! `ruf95` — command-line driver for the alias-analysis reproduction.
//!
//! ```text
//! ruf95 refs <file.c | bench:NAME>      points-to sets at indirect refs (CI)
//! ruf95 compare <file.c | bench:NAME>   CI vs CS at every indirect ref
//! ruf95 modref <file.c | bench:NAME>    per-function mod/ref summary
//! ruf95 dot <file.c | bench:NAME>       VDG in Graphviz DOT on stdout
//! ruf95 ir <file.c | bench:NAME>        VDG as a per-function listing
//! ruf95 run <file.c | bench:NAME>       interpret and check soundness
//! ruf95 spectrum <file.c | bench:NAME>  Weihl/Steensgaard/CI/k=1/CS table
//! ruf95 list                            list bundled benchmarks
//! ```
//!
//! `bench:NAME` loads a program from the bundled suite instead of disk.

use alias::callstring::{analyze_callstring_from, CallStringConfig};
use alias::modref::mod_ref;
use alias::steensgaard::analyze_steensgaard;
use alias::stats::compare_at_indirect_refs;
use alias::weihl::analyze_weihl_from;
use alias::{analyze_cs, Analysis, CsConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ruf95 <refs|compare|modref|dot|ir|run|spectrum> <file.c | bench:NAME>\n\
         \u{20}      ruf95 list"
    );
    ExitCode::from(2)
}

fn load_source(spec: &str) -> Result<(String, String), String> {
    if let Some(name) = spec.strip_prefix("bench:") {
        let b = suite::by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `ruf95 list`)"))?;
        return Ok((name.to_string(), b.source.to_string()));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
    Ok((spec.to_string(), text))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd == "list" {
        for b in suite::benchmarks() {
            println!(
                "{:<10} {:>5} lines  exit {}",
                b.name,
                b.source.lines().count(),
                b.expected_exit
            );
        }
        return ExitCode::SUCCESS;
    }
    let Some(spec) = args.get(1) else {
        return usage();
    };
    let (name, source) = match load_source(spec) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_command(cmd, &name, &source) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_command(cmd: &str, name: &str, source: &str) -> Result<(), String> {
    let render_err = |e: alias::AnalysisError| -> String {
        match &e {
            alias::AnalysisError::Frontend(f) => {
                f.render(&cfront::SourceFile::new(name, source))
            }
            other => other.to_string(),
        }
    };
    let a = Analysis::of_source(source).map_err(render_err)?;
    let file = cfront::SourceFile::new(name, source);
    match cmd {
        "refs" => cmd_refs(&a, &file),
        "compare" => cmd_compare(&a, &file),
        "modref" => cmd_modref(&a),
        "dot" => {
            print!("{}", vdg::dot::to_dot(&a.graph));
            Ok(())
        }
        "ir" => {
            print!("{}", vdg::display::to_text(&a.graph));
            Ok(())
        }
        "run" => cmd_run(&a, name),
        "spectrum" => cmd_spectrum(&a, &file),
        _ => Err(format!("unknown command `{cmd}`")),
    }
}

/// Renders a node's source position as `line:col`.
fn site_line(a: &Analysis, file: &cfront::SourceFile, node: vdg::NodeId) -> String {
    let span = a.graph.node(node).span;
    let lc = file.line_col(span.start);
    format!("{}:{}", lc.line, lc.col)
}

fn cmd_refs(a: &Analysis, file: &cfront::SourceFile) -> Result<(), String> {
    println!(
        "{} nodes, {} outputs, {} CI points-to pairs\n",
        a.graph.node_count(),
        a.graph.output_count(),
        a.ci.total_pairs()
    );
    for (node, is_write) in a.graph.indirect_mem_ops() {
        let names: Vec<String> = a
            .ci
            .loc_referents(&a.graph, node)
            .iter()
            .map(|&p| a.ci.paths.display(p, &a.graph))
            .collect();
        println!(
            "{} at {}: {{{}}}",
            if is_write { "write" } else { "read " },
            site_line(a, file, node),
            names.join(", ")
        );
    }
    Ok(())
}

fn cmd_compare(a: &Analysis, file: &cfront::SourceFile) -> Result<(), String> {
    let cs = a
        .run_cs(&CsConfig::default())
        .map_err(|e| e.to_string())?;
    let mismatches = compare_at_indirect_refs(&a.graph, &a.ci, &cs);
    println!(
        "CI pairs: {}   CS pairs: {}   indirect refs: {}   mismatches: {}",
        a.ci.total_pairs(),
        cs.total_pairs(),
        a.graph.indirect_mem_ops().len(),
        mismatches.len()
    );
    for m in &mismatches {
        println!(
            "  {} at {}: CI {{{}}} vs CS {{{}}}",
            if m.is_write { "write" } else { "read" },
            site_line(a, file, m.node),
            m.ci_referents.join(", "),
            m.cs_referents.join(", ")
        );
    }
    if mismatches.is_empty() {
        println!("identical at every indirect memory reference (the paper's headline)");
    }
    Ok(())
}

fn cmd_modref(a: &Analysis) -> Result<(), String> {
    let summary = mod_ref(&a.graph, &a.ci, &a.ci.callees);
    for f in a.graph.func_ids() {
        let info = a.graph.func(f);
        if info.name == "<root>" {
            continue;
        }
        let Some(mr) = summary.transitive.get(&f) else {
            continue;
        };
        let fmt = |set: &std::collections::BTreeSet<alias::PathId>| {
            set.iter()
                .map(|&p| a.ci.paths.display(p, &a.graph))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("{}:", info.name);
        println!("  ref: {{{}}}", fmt(&mr.refs));
        println!("  mod: {{{}}}", fmt(&mr.mods));
    }
    Ok(())
}

fn cmd_run(a: &Analysis, name: &str) -> Result<(), String> {
    let input = suite::by_name(name)
        .map(|b| b.input.to_vec())
        .unwrap_or_default();
    let out = interp::run(
        &a.program,
        &interp::Config {
            input,
            ..interp::Config::default()
        },
    )
    .map_err(|e| e.to_string())?;
    print!("{}", out.stdout);
    println!("[exit {} after {} steps]", out.exit, out.steps);
    let violations = interp::check_solution(&a.program, &a.graph, &a.ci, &out.trace);
    if violations.is_empty() {
        println!("[soundness: every runtime dereference was predicted by the CI analysis]");
        Ok(())
    } else {
        Err(format!("soundness violations: {violations:#?}"))
    }
}

fn cmd_spectrum(a: &Analysis, file: &cfront::SourceFile) -> Result<(), String> {
    let w = analyze_weihl_from(&a.graph, a.ci.paths.clone());
    let mut st = analyze_steensgaard(&a.graph);
    let k1 = analyze_callstring_from(&a.graph, a.ci.paths.clone(), &CallStringConfig::default())
        .map_err(|e| e.to_string())?;
    let cs = analyze_cs(&a.graph, &a.ci, &CsConfig::default()).map_err(|e| e.to_string())?;
    println!(
        "{:<32} {:>6} {:>7} {:>5} {:>5} {:>5}",
        "indirect ref", "Weihl", "Steens", "CI", "k=1", "CS"
    );
    for (node, is_write) in a.graph.indirect_mem_ops() {
        let bases = |refs: Vec<alias::PathId>, paths: &alias::PathTable| -> usize {
            let mut b: Vec<_> = refs.iter().filter_map(|&p| paths.base_of(p)).collect();
            b.sort_unstable();
            b.dedup();
            b.len()
        };
        println!(
            "{:<32} {:>6} {:>7} {:>5} {:>5} {:>5}",
            format!(
                "{} {}",
                if is_write { "write" } else { "read" },
                site_line(a, file, node)
            ),
            bases(w.loc_referents(&a.graph, node), &w.paths),
            st.loc_bases(&a.graph, node).len(),
            bases(a.ci.loc_referents(&a.graph, node), &a.ci.paths),
            bases(k1.loc_referents(&a.graph, node), &k1.paths),
            bases(cs.loc_referents(&a.graph, node), &cs.paths),
        );
    }
    Ok(())
}
