//! `ruf95` — command-line driver for the alias-analysis reproduction.
//!
//! ```text
//! ruf95 refs <file.c | bench:NAME>      points-to sets at indirect refs (CI)
//! ruf95 compare <file.c | bench:NAME>   CI vs CS at every indirect ref
//! ruf95 modref <file.c | bench:NAME>    per-function mod/ref summary
//! ruf95 dot <file.c | bench:NAME>       VDG in Graphviz DOT on stdout
//! ruf95 ir <file.c | bench:NAME>        VDG as a per-function listing
//! ruf95 run <file.c | bench:NAME>       interpret and check soundness
//! ruf95 spectrum <file.c | bench:NAME> [--json]
//!                                       Weihl/Steensgaard/CI/k=1/CS table
//!                                       (engine-driven; --json dumps the
//!                                       metrics report and referent sets)
//! ruf95 list                            list bundled benchmarks
//! ```
//!
//! `bench:NAME` loads a program from the bundled suite instead of disk.
//!
//! Every pipeline failure — frontend, lowering, or a solver's step
//! budget — funnels through [`alias::AnalysisError`] and is rendered
//! uniformly here at the boundary.

use alias::modref::mod_ref;
use alias::stats::compare_at_indirect_refs;
use alias::{Analysis, AnalysisError, CsConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ruf95 <refs|compare|modref|dot|ir|run> <file.c | bench:NAME>\n\
         \u{20}      ruf95 spectrum <file.c | bench:NAME> [--json]\n\
         \u{20}      ruf95 list"
    );
    ExitCode::from(2)
}

fn load_source(spec: &str) -> Result<(String, String), String> {
    if let Some(name) = spec.strip_prefix("bench:") {
        let b = suite::by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `ruf95 list`)"))?;
        return Ok((name.to_string(), b.source.to_string()));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
    Ok((spec.to_string(), text))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd == "list" {
        for b in suite::benchmarks() {
            println!(
                "{:<10} {:>5} lines  exit {}",
                b.name,
                b.source.lines().count(),
                b.expected_exit
            );
        }
        return ExitCode::SUCCESS;
    }
    let Some(spec) = args.get(1) else {
        return usage();
    };
    let (name, source) = match load_source(spec) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_command(cmd, &name, &source, &args[2..]) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_command(cmd: &str, name: &str, source: &str, opts: &[String]) -> Result<(), String> {
    // The single error boundary: every pipeline failure, including a CS
    // or k=1 step-budget overflow, arrives here as an `AnalysisError`.
    let render_err = |e: AnalysisError| -> String {
        match &e {
            AnalysisError::Frontend(f) => f.render(&cfront::SourceFile::new(name, source)),
            other => other.to_string(),
        }
    };
    if cmd == "spectrum" {
        let json = opts.iter().any(|o| o == "--json");
        return cmd_spectrum(name, source, json).map_err(render_err);
    }
    let a = Analysis::builder(source).run().map_err(render_err)?;
    let file = cfront::SourceFile::new(name, source);
    match cmd {
        "refs" => cmd_refs(&a, &file),
        "compare" => cmd_compare(&a, &file).map_err(render_err),
        "modref" => cmd_modref(&a),
        "dot" => {
            print!("{}", vdg::dot::to_dot(&a.graph));
            Ok(())
        }
        "ir" => {
            print!("{}", vdg::display::to_text(&a.graph));
            Ok(())
        }
        "run" => cmd_run(&a, name),
        _ => Err(format!("unknown command `{cmd}`")),
    }
}

/// Renders a node's source position as `line:col`.
fn site_line(graph: &vdg::Graph, file: &cfront::SourceFile, node: vdg::NodeId) -> String {
    let span = graph.node(node).span;
    let lc = file.line_col(span.start);
    format!("{}:{}", lc.line, lc.col)
}

fn cmd_refs(a: &Analysis, file: &cfront::SourceFile) -> Result<(), String> {
    println!(
        "{} nodes, {} outputs, {} CI points-to pairs\n",
        a.graph.node_count(),
        a.graph.output_count(),
        a.ci.total_pairs()
    );
    for (node, is_write) in a.graph.indirect_mem_ops() {
        let names: Vec<String> =
            a.ci.loc_referents(&a.graph, node)
                .iter()
                .map(|&p| a.ci.paths.display(p, &a.graph))
                .collect();
        println!(
            "{} at {}: {{{}}}",
            if is_write { "write" } else { "read " },
            site_line(&a.graph, file, node),
            names.join(", ")
        );
    }
    Ok(())
}

fn cmd_compare(a: &Analysis, file: &cfront::SourceFile) -> Result<(), AnalysisError> {
    let cs = a
        .run_cs(&CsConfig::default())
        .map_err(AnalysisError::from)?;
    let mismatches = compare_at_indirect_refs(&a.graph, &a.ci, &cs);
    println!(
        "CI pairs: {}   CS pairs: {}   indirect refs: {}   mismatches: {}",
        a.ci.total_pairs(),
        cs.total_pairs(),
        a.graph.indirect_mem_ops().len(),
        mismatches.len()
    );
    for m in &mismatches {
        println!(
            "  {} at {}: CI {{{}}} vs CS {{{}}}",
            if m.is_write { "write" } else { "read" },
            site_line(&a.graph, file, m.node),
            m.ci_referents.join(", "),
            m.cs_referents.join(", ")
        );
    }
    if mismatches.is_empty() {
        println!("identical at every indirect memory reference (the paper's headline)");
    }
    Ok(())
}

fn cmd_modref(a: &Analysis) -> Result<(), String> {
    let summary = mod_ref(&a.graph, &a.ci, &a.ci.callees);
    for f in a.graph.func_ids() {
        let info = a.graph.func(f);
        if info.name == "<root>" {
            continue;
        }
        let Some(mr) = summary.transitive.get(&f) else {
            continue;
        };
        let fmt = |set: &std::collections::BTreeSet<alias::PathId>| {
            set.iter()
                .map(|&p| a.ci.paths.display(p, &a.graph))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("{}:", info.name);
        println!("  ref: {{{}}}", fmt(&mr.refs));
        println!("  mod: {{{}}}", fmt(&mr.mods));
    }
    Ok(())
}

fn cmd_run(a: &Analysis, name: &str) -> Result<(), String> {
    let input = suite::by_name(name)
        .map(|b| b.input.to_vec())
        .unwrap_or_default();
    let out = interp::run(
        &a.program,
        &interp::Config {
            input,
            ..interp::Config::default()
        },
    )
    .map_err(|e| e.to_string())?;
    print!("{}", out.stdout);
    println!("[exit {} after {} steps]", out.exit, out.steps);
    let violations = interp::check_solution(&a.program, &a.graph, &a.ci, &out.trace);
    if violations.is_empty() {
        println!("[soundness: every runtime dereference was predicted by the CI analysis]");
        Ok(())
    } else {
        Err(format!("soundness violations: {violations:#?}"))
    }
}

/// The five-analysis spectrum, driven by one engine invocation over the
/// program: every solver runs through the uniform `alias::Solver` trait
/// and the table reads back through the `Solution` view.
fn cmd_spectrum(name: &str, source: &str, json: bool) -> Result<(), AnalysisError> {
    const ORDER: [&str; 5] = ["weihl", "steensgaard", "ci", "k1", "cs"];
    let jobs = vec![engine::Job {
        name: name.to_string(),
        source: source.to_string(),
    }];
    let run = engine::Engine::new().run(&jobs)?;
    let b = &run.benches[0];
    let file = cfront::SourceFile::new(name, source);
    let base_count = |analysis: &str, node: vdg::NodeId| -> Option<usize> {
        b.solution(analysis)
            .map(|s| s.loc_referent_bases(&b.graph, node).len())
    };

    if json {
        // {"report": <EngineReport>, "refs": [{site, kind, bases:{...}}]}
        let mut refs = Vec::new();
        for (node, is_write) in b.graph.indirect_mem_ops() {
            let bases: Vec<String> = ORDER
                .iter()
                .map(|a| {
                    format!(
                        "\"{a}\": {}",
                        base_count(a, node)
                            .map(|n| n.to_string())
                            .unwrap_or_else(|| "null".into())
                    )
                })
                .collect();
            refs.push(format!(
                "    {{\"site\": \"{}\", \"kind\": \"{}\", \"bases\": {{{}}}}}",
                site_line(&b.graph, &file, node),
                if is_write { "write" } else { "read" },
                bases.join(", ")
            ));
        }
        println!(
            "{{\n  \"report\": {},\n  \"refs\": [\n{}\n  ]\n}}",
            run.report.to_json().trim_end(),
            refs.join(",\n")
        );
        return Ok(());
    }

    println!(
        "{:<32} {:>6} {:>7} {:>5} {:>5} {:>5}",
        "indirect ref", "Weihl", "Steens", "CI", "k=1", "CS"
    );
    for (node, is_write) in b.graph.indirect_mem_ops() {
        let cell = |analysis: &str| -> String {
            base_count(analysis, node)
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<32} {:>6} {:>7} {:>5} {:>5} {:>5}",
            format!(
                "{} {}",
                if is_write { "write" } else { "read" },
                site_line(&b.graph, &file, node)
            ),
            cell("weihl"),
            cell("steensgaard"),
            cell("ci"),
            cell("k1"),
            cell("cs"),
        );
    }
    Ok(())
}
