//! `ruf95` — command-line driver for the alias-analysis reproduction.
//!
//! Run `ruf95 help` for the command list, or `ruf95 <command> --help`
//! for one command's flags. Commands that analyse a program accept
//! either a path to a `.c` file or `bench:NAME` to load a program from
//! the bundled suite.
//!
//! Every pipeline failure — frontend, lowering, or a solver's step
//! budget — funnels through [`alias::AnalysisError`] and is rendered
//! uniformly here at the boundary.

use alias::modref::mod_ref;
use alias::stats::compare_at_indirect_refs;
use alias::{Analysis, AnalysisError, CsConfig};
use std::process::ExitCode;

/// One entry in the subcommand table. `value_flags` lists the flags
/// that consume the following argument; everything else starting with
/// `--` is a boolean switch.
struct Command {
    name: &'static str,
    /// Argument synopsis after the command name, for usage lines.
    synopsis: &'static str,
    about: &'static str,
    /// Per-flag help lines, one `--flag  description` per entry.
    flag_help: &'static [&'static str],
    value_flags: &'static [&'static str],
    needs_source: bool,
    run: fn(&Ctx) -> Result<(), String>,
}

const SOURCE_ARG: &str = "<file.c | bench:NAME>";

const COMMANDS: &[Command] = &[
    Command {
        name: "refs",
        synopsis: SOURCE_ARG,
        about: "points-to sets at indirect refs (CI)",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| cmd_refs(&cx.analysis()?, &cx.file()),
    },
    Command {
        name: "compare",
        synopsis: SOURCE_ARG,
        about: "CI vs CS at every indirect ref",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| {
            let a = cx.analysis()?;
            cmd_compare(&a, &cx.file()).map_err(|e| cx.render_err(e))
        },
    },
    Command {
        name: "modref",
        synopsis: SOURCE_ARG,
        about: "per-function mod/ref summary",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| cmd_modref(&cx.analysis()?),
    },
    Command {
        name: "dot",
        synopsis: SOURCE_ARG,
        about: "VDG in Graphviz DOT on stdout",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| {
            print!("{}", vdg::dot::to_dot(&cx.analysis()?.graph));
            Ok(())
        },
    },
    Command {
        name: "ir",
        synopsis: SOURCE_ARG,
        about: "VDG as a per-function listing",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| {
            print!("{}", vdg::display::to_text(&cx.analysis()?.graph));
            Ok(())
        },
    },
    Command {
        name: "run",
        synopsis: SOURCE_ARG,
        about: "interpret and check soundness",
        flag_help: &[],
        value_flags: &[],
        needs_source: true,
        run: |cx| cmd_run(&cx.analysis()?, &cx.name),
    },
    Command {
        name: "spectrum",
        synopsis: "<file.c | bench:NAME> [--json]",
        about: "Weihl/Steensgaard/CI/k=1/CS table (engine-driven)",
        flag_help: &["--json  dump the metrics report and referent sets as JSON"],
        value_flags: &[],
        needs_source: true,
        run: |cx| {
            cmd_spectrum(&cx.name, &cx.source, cx.flags.has("json")).map_err(|e| cx.render_err(e))
        },
    },
    Command {
        name: "check",
        synopsis: "[<file.c | bench:NAME>] [--suite] [--analysis NAME] [--json]",
        about: "memory-safety checkers with oracle-labeled precision table",
        flag_help: &[
            "--suite          check every bundled benchmark instead of one source",
            "--analysis NAME  solver whose diagnostics are rendered (default ci)",
            "--json           print the metrics report and diagnostics as JSON",
        ],
        value_flags: &["analysis"],
        needs_source: false,
        run: cmd_check,
    },
    Command {
        name: "fuzz",
        synopsis:
            "[--seeds N] [--start-seed N] [--budget-ms N] [--threads N] [--no-shrink] [--json]",
        about: "differential fuzzing campaign over all five solvers",
        flag_help: &[
            "--seeds N       number of seeds to run (default 100)",
            "--start-seed N  first seed of the range (default 0)",
            "--budget-ms N   per-solver wall-clock budget in ms (default 200)",
            "--threads N     worker threads, 0 = all cores (default 0)",
            "--no-shrink     skip counterexample minimisation",
            "--json          print the full FuzzReport as JSON",
        ],
        value_flags: &["seeds", "start-seed", "budget-ms", "threads"],
        needs_source: false,
        run: cmd_fuzz,
    },
    Command {
        name: "incremental",
        synopsis: "<file.c | bench:NAME> [--edits N] [--seed N] [--next FILE] [--json]",
        about: "re-analyze after edits, reusing memoized summaries",
        flag_help: &[
            "--edits N    length of the seeded edit chain (default 3)",
            "--seed N     seed for the edit generator (default 1995)",
            "--next FILE  re-analyze FILE's contents instead of generating edits",
            "--json       print a JSON array of steps (edit, cross-check, report)",
        ],
        value_flags: &["edits", "seed", "next"],
        needs_source: true,
        run: cmd_incremental,
    },
    Command {
        name: "list",
        synopsis: "",
        about: "list bundled benchmarks",
        flag_help: &[],
        value_flags: &[],
        needs_source: false,
        run: |_| {
            for b in suite::benchmarks() {
                println!(
                    "{:<10} {:>5} lines  exit {}",
                    b.name,
                    b.source.lines().count(),
                    b.expected_exit
                );
            }
            Ok(())
        },
    },
];

/// Flags shared by every command, split from the positionals once the
/// command's `value_flags` are known.
struct Flags {
    positional: Vec<String>,
    switches: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], value_flags: &[&str]) -> Result<Flags, String> {
        let mut flags = Flags {
            positional: Vec::new(),
            switches: Vec::new(),
        };
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                flags.positional.push(arg.clone());
                continue;
            };
            if let Some((key, value)) = name.split_once('=') {
                flags
                    .switches
                    .push((key.to_string(), Some(value.to_string())));
            } else if value_flags.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                flags.switches.push((name.to_string(), Some(value.clone())));
            } else {
                flags.switches.push((name.to_string(), None));
            }
        }
        Ok(flags)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|(k, _)| k == name)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.switches
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.switches.iter().find(|(k, _)| k == name) {
            Some((_, Some(v))) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid value `{v}`")),
            Some((_, None)) => Err(format!("--{name} expects a value")),
            None => Ok(default),
        }
    }
}

/// Everything a command handler needs: the loaded source (empty for
/// sourceless commands like `fuzz` and `list`) plus the parsed flags.
struct Ctx {
    name: String,
    source: String,
    flags: Flags,
}

impl Ctx {
    fn analysis(&self) -> Result<Analysis, String> {
        Analysis::builder(&self.source)
            .run()
            .map_err(|e| self.render_err(e))
    }

    fn file(&self) -> cfront::SourceFile {
        cfront::SourceFile::new(&self.name, &self.source)
    }

    /// The single error boundary: every pipeline failure, including a
    /// CS or k=1 step-budget overflow, is rendered here.
    fn render_err(&self, e: AnalysisError) -> String {
        match &e {
            AnalysisError::Frontend(f) => f.render(&self.file()),
            other => other.to_string(),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: ruf95 <command> [args]\n\ncommands:");
    for c in COMMANDS {
        eprintln!("  {:<10} {}", c.name, c.about);
    }
    eprintln!("\nrun `ruf95 <command> --help` for a command's flags");
    ExitCode::from(2)
}

fn command_help(c: &Command) {
    let sep = if c.synopsis.is_empty() { "" } else { " " };
    println!("usage: ruf95 {}{sep}{}\n\n{}", c.name, c.synopsis, c.about);
    if !c.flag_help.is_empty() {
        println!("\nflags:");
        for line in c.flag_help {
            println!("  {line}");
        }
    }
}

/// Builds an engine job, attaching the bundled interpreter input when
/// the name resolves to a suite benchmark (the checker oracle replays
/// the benchmark's real stdin).
fn job_for(name: &str, source: &str) -> engine::Job {
    let mut job = engine::Job::new(name, source);
    if let Some(b) = suite::by_name(name) {
        job.input = b.input.to_vec();
    }
    job
}

fn load_source(spec: &str) -> Result<(String, String), String> {
    if let Some(name) = spec.strip_prefix("bench:") {
        let b = suite::by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `ruf95 list`)"))?;
        return Ok((name.to_string(), b.source.to_string()));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
    Ok((spec.to_string(), text))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        usage();
        return ExitCode::SUCCESS;
    }
    let Some(command) = COMMANDS.iter().find(|c| c.name == cmd) else {
        eprintln!("error: unknown command `{cmd}`\n");
        return usage();
    };
    let rest = &args[1..];
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        command_help(command);
        return ExitCode::SUCCESS;
    }
    let flags = match Flags::parse(rest, command.value_flags) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let (name, source) = if command.needs_source {
        let Some(spec) = flags.positional.first() else {
            eprintln!("usage: ruf95 {} {}", command.name, command.synopsis);
            return ExitCode::from(2);
        };
        match load_source(spec) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        (String::new(), String::new())
    };
    let cx = Ctx {
        name,
        source,
        flags,
    };
    match (command.run)(&cx) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders a node's source position as `line:col`.
fn site_line(graph: &vdg::Graph, file: &cfront::SourceFile, node: vdg::NodeId) -> String {
    let span = graph.node(node).span;
    let lc = file.line_col(span.start);
    format!("{}:{}", lc.line, lc.col)
}

fn cmd_refs(a: &Analysis, file: &cfront::SourceFile) -> Result<(), String> {
    println!(
        "{} nodes, {} outputs, {} CI points-to pairs\n",
        a.graph.node_count(),
        a.graph.output_count(),
        a.ci.total_pairs()
    );
    for (node, is_write) in a.graph.indirect_mem_ops() {
        let names: Vec<String> =
            a.ci.loc_referents(&a.graph, node)
                .iter()
                .map(|&p| a.ci.paths.display(p, &a.graph))
                .collect();
        println!(
            "{} at {}: {{{}}}",
            if is_write { "write" } else { "read " },
            site_line(&a.graph, file, node),
            names.join(", ")
        );
    }
    Ok(())
}

fn cmd_compare(a: &Analysis, file: &cfront::SourceFile) -> Result<(), AnalysisError> {
    let cs = a
        .run_cs(&CsConfig::default())
        .map_err(AnalysisError::from)?;
    let mismatches = compare_at_indirect_refs(&a.graph, &a.ci, &cs);
    println!(
        "CI pairs: {}   CS pairs: {}   indirect refs: {}   mismatches: {}",
        a.ci.total_pairs(),
        cs.total_pairs(),
        a.graph.indirect_mem_ops().len(),
        mismatches.len()
    );
    for m in &mismatches {
        println!(
            "  {} at {}: CI {{{}}} vs CS {{{}}}",
            if m.is_write { "write" } else { "read" },
            site_line(&a.graph, file, m.node),
            m.ci_referents.join(", "),
            m.cs_referents.join(", ")
        );
    }
    if mismatches.is_empty() {
        println!("identical at every indirect memory reference (the paper's headline)");
    }
    Ok(())
}

fn cmd_modref(a: &Analysis) -> Result<(), String> {
    let summary = mod_ref(&a.graph, &a.ci, &a.ci.callees);
    for f in a.graph.func_ids() {
        let info = a.graph.func(f);
        if info.name == "<root>" {
            continue;
        }
        let Some(mr) = summary.transitive.get(&f) else {
            continue;
        };
        let fmt = |set: &std::collections::BTreeSet<alias::PathId>| {
            set.iter()
                .map(|&p| a.ci.paths.display(p, &a.graph))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("{}:", info.name);
        println!("  ref: {{{}}}", fmt(&mr.refs));
        println!("  mod: {{{}}}", fmt(&mr.mods));
    }
    Ok(())
}

fn cmd_run(a: &Analysis, name: &str) -> Result<(), String> {
    let input = suite::by_name(name)
        .map(|b| b.input.to_vec())
        .unwrap_or_default();
    let out = interp::run(
        &a.program,
        &interp::Config {
            input,
            ..interp::Config::default()
        },
    )
    .map_err(|e| e.to_string())?;
    print!("{}", out.stdout);
    println!("[exit {} after {} steps]", out.exit, out.steps);
    let violations = interp::check_solution(&a.program, &a.graph, &a.ci, &out.trace);
    if violations.is_empty() {
        println!("[soundness: every runtime dereference was predicted by the CI analysis]");
        Ok(())
    } else {
        Err(format!("soundness violations: {violations:#?}"))
    }
}

/// The five-analysis spectrum, driven by one engine invocation over the
/// program: every solver runs through the uniform `alias::Solver` trait
/// and the table reads back through the `Solution` view.
fn cmd_spectrum(name: &str, source: &str, json: bool) -> Result<(), AnalysisError> {
    const ORDER: [&str; 5] = ["weihl", "steensgaard", "ci", "k1", "cs"];
    let jobs = vec![job_for(name, source)];
    let run = engine::Engine::new().run(&jobs)?;
    let b = &run.benches[0];
    let file = cfront::SourceFile::new(name, source);
    let base_count = |analysis: &str, node: vdg::NodeId| -> Option<usize> {
        b.solution(analysis)
            .map(|s| s.loc_referent_bases(&b.graph, node).len())
    };

    if json {
        // {"report": <EngineReport>, "refs": [{site, kind, bases:{...}}]}
        let mut refs = Vec::new();
        for (node, is_write) in b.graph.indirect_mem_ops() {
            let bases: Vec<String> = ORDER
                .iter()
                .map(|a| {
                    format!(
                        "\"{a}\": {}",
                        base_count(a, node)
                            .map(|n| n.to_string())
                            .unwrap_or_else(|| "null".into())
                    )
                })
                .collect();
            refs.push(format!(
                "    {{\"site\": \"{}\", \"kind\": \"{}\", \"bases\": {{{}}}}}",
                site_line(&b.graph, &file, node),
                if is_write { "write" } else { "read" },
                bases.join(", ")
            ));
        }
        println!(
            "{{\n  \"report\": {},\n  \"refs\": [\n{}\n  ]\n}}",
            run.report.to_json().trim_end(),
            refs.join(",\n")
        );
        return Ok(());
    }

    println!(
        "{:<32} {:>6} {:>7} {:>5} {:>5} {:>5}",
        "indirect ref", "Weihl", "Steens", "CI", "k=1", "CS"
    );
    for (node, is_write) in b.graph.indirect_mem_ops() {
        let cell = |analysis: &str| -> String {
            base_count(analysis, node)
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<32} {:>6} {:>7} {:>5} {:>5} {:>5}",
            format!(
                "{} {}",
                if is_write { "write" } else { "read" },
                site_line(&b.graph, &file, node)
            ),
            cell("weihl"),
            cell("steensgaard"),
            cell("ci"),
            cell("k1"),
            cell("cs"),
        );
    }
    Ok(())
}

/// Memory-safety checkers under all five solvers with oracle labels:
/// runs the engine once, reuses every solver's solution for the six
/// checkers, labels each diagnostic against one interpreter run per
/// benchmark, and prints the paper-style precision table plus rendered
/// caret diagnostics for one solver. Exits nonzero if any solver+checker
/// pair missed an oracle-trapped runtime fault (a refuted diagnostic) or
/// the false-positive counts break spectrum monotonicity.
fn cmd_check(cx: &Ctx) -> Result<(), String> {
    let jobs = if cx.flags.has("suite") {
        engine::Job::suite()
    } else if let Some(spec) = cx.flags.positional.first() {
        let (name, source) = load_source(spec)?;
        vec![job_for(&name, &source)]
    } else {
        return Err(format!("expected {SOURCE_ARG} or --suite"));
    };
    let analysis = cx.flags.get("analysis").unwrap_or("ci").to_string();
    let mut run = engine::Engine::new().run(&jobs).map_err(|e| match &e {
        AnalysisError::Frontend(f) => {
            // Attribute the diagnostic to whichever job fails to
            // compile (single-source runs have exactly one).
            let file = jobs
                .iter()
                .find(|j| cfront::compile(&j.source).is_err())
                .map(|j| cfront::SourceFile::new(&j.name, &j.source));
            match file {
                Some(file) => f.render(&file),
                None => e.to_string(),
            }
        }
        other => other.to_string(),
    })?;
    let checks = run.run_checks();
    if cx.flags.has("json") {
        let diags: Vec<String> = run
            .benches
            .iter()
            .zip(&checks)
            .map(|(b, bc)| {
                format!(
                    "    {}: {}",
                    jstr(&b.name),
                    engine::check::diagnostics_json(b, bc, &analysis)
                )
            })
            .collect();
        println!(
            "{{\n  \"report\": {},\n  \"diagnostics\": {{\n{}\n  }}\n}}",
            run.report.to_json().trim_end(),
            diags.join(",\n")
        );
    } else {
        for (b, bc) in run.benches.iter().zip(&checks) {
            println!("== {} ==", b.name);
            print!("{}", checker::render_table(&bc.rows));
            let rendered = engine::check::render_diagnostics(b, bc, &analysis);
            if rendered.is_empty() {
                println!("[{analysis}] no diagnostics");
            } else {
                print!("{rendered}");
            }
            println!();
        }
        let (total, tp, fp, unreach) = engine::check::totals_for(&checks, &analysis);
        println!(
            "[{analysis}] {total} diagnostic(s): {tp} true positive(s), \
             {fp} false positive(s), {unreach} unreachable"
        );
    }
    let refuted: Vec<&str> = run
        .benches
        .iter()
        .zip(&checks)
        .filter(|(_, bc)| bc.any_refuted())
        .map(|(b, _)| b.name.as_str())
        .collect();
    if !refuted.is_empty() {
        return Err(format!(
            "oracle-refuted diagnostics (missed true positives) in: {}",
            refuted.join(", ")
        ));
    }
    if let Some(v) = engine::check::fp_monotone_violation(&checks) {
        return Err(format!("false-positive monotonicity violated: {v}"));
    }
    Ok(())
}

/// Differential fuzzing campaign: generates seeded mini-C programs,
/// runs all five solvers on each, and cross-checks soundness against
/// the interpreter, the precision lattice, and naive-vs-delta
/// fixpoints. Exits nonzero if any violation survives.
fn cmd_fuzz(cx: &Ctx) -> Result<(), String> {
    let cfg = engine::FuzzConfig {
        seeds: cx.flags.get_parsed("seeds", 100)?,
        start_seed: cx.flags.get_parsed("start-seed", 0)?,
        budget_ms: cx.flags.get_parsed("budget-ms", 200)?,
        threads: cx.flags.get_parsed("threads", 0)?,
        shrink: !cx.flags.has("no-shrink"),
        ..engine::FuzzConfig::default()
    };
    let report = engine::fuzz::fuzz(&cfg);
    if cx.flags.has("json") {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.summary());
        for v in &report.violations {
            println!(
                "\n[{} / {} @ seed {}] {}",
                v.kind, v.solver, v.seed, v.detail
            );
            if let Some(min) = &v.minimized {
                println!("minimized counterexample:\n{min}");
            }
        }
    }
    if report.violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} differential violation(s) found",
            report.violations.len()
        ))
    }
}

/// Minimal JSON string literal for the `incremental --json` envelope
/// (edit descriptions contain no control characters).
fn jstr(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// True when every solver's canonical solution fingerprint agrees
/// between an incremental bench output and a from-scratch one.
fn benches_equivalent(inc: &engine::BenchOutput, fresh: &engine::BenchOutput) -> bool {
    use alias::solver::solution_fingerprint;
    fresh.solutions.iter().all(
        |fs| match (fs.solution.as_deref(), inc.solution(&fs.analysis)) {
            (Some(f), Some(i)) => {
                solution_fingerprint(i, &inc.graph) == solution_fingerprint(f, &fresh.graph)
            }
            (None, None) => true,
            _ => false,
        },
    )
}

/// Incremental re-analysis walkthrough: analyze the base program with
/// the full solver stack, then push each edited version through one
/// persistent `engine::SummaryCache`, printing which tier answered
/// every solver (verbatim replay, seeded dirty-cone resume, or a
/// from-scratch solve with the structural reason) and cross-checking
/// every step's solutions against a from-scratch run. Exits nonzero if
/// any step diverges — incremental reuse must be invisible.
fn cmd_incremental(cx: &Ctx) -> Result<(), String> {
    let edits: usize = cx.flags.get_parsed("edits", 3)?;
    let seed: u64 = cx.flags.get_parsed("seed", 1995)?;
    let json = cx.flags.has("json");
    let steps: Vec<(String, String)> = match cx.flags.get("next") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            vec![(format!("replace with {path}"), text)]
        }
        None => suite::edit::edit_chain(&cx.source, seed, edits)
            .into_iter()
            .map(|s| {
                (
                    format!("{} [{}]", s.edit.description, s.edit.kind.name()),
                    s.source,
                )
            })
            .collect(),
    };
    if steps.is_empty() {
        return Err("no applicable edit found (try another --seed)".into());
    }
    let e = engine::Engine::new();
    let mut cache = e.cache();
    let base = vec![job_for(&cx.name, &cx.source)];
    e.analyze_incremental_with(&mut cache, &base)
        .map_err(|err| cx.render_err(err))?;
    if !json {
        println!("base: {} analyzed, summary cache primed", cx.name);
    }
    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    for (i, (desc, source)) in steps.iter().enumerate() {
        let jobs = vec![job_for(&cx.name, source)];
        let inc = e
            .analyze_incremental_with(&mut cache, &jobs)
            .map_err(|err| cx.render_err(err))?;
        let fresh = e.run(&jobs).map_err(|err| cx.render_err(err))?;
        let matches = benches_equivalent(&inc.benches[0], &fresh.benches[0]);
        if !matches {
            mismatches += 1;
        }
        if json {
            rows.push(format!(
                "  {{\"edit\": {}, \"matches_fresh\": {}, \"report\": {}}}",
                jstr(desc),
                matches,
                inc.report.to_json().trim_end()
            ));
            continue;
        }
        println!("\nstep {}/{}: {}", i + 1, steps.len(), desc);
        for s in &inc.report.benchmarks[0].solvers {
            println!("  {:<12} {}", s.analysis, s.mode.as_deref().unwrap_or("-"));
        }
        if let Some(st) = &inc.report.incremental {
            println!(
                "  summaries reused {}/{} functions; {} solution(s) replayed verbatim",
                st.funcs_reused,
                st.funcs_reused + st.funcs_dirty,
                st.solutions_replayed
            );
        }
        println!(
            "  from-scratch cross-check: {}",
            if matches {
                "identical solutions"
            } else {
                "MISMATCH"
            }
        );
    }
    if json {
        println!("[\n{}\n]", rows.join(",\n"));
    }
    if mismatches == 0 {
        Ok(())
    } else {
        Err(format!(
            "{mismatches} step(s) diverged from from-scratch analysis"
        ))
    }
}
