//! Proto-backed subcommands: one request type, two transports.
//!
//! Every analysis-bearing subcommand builds a [`proto::Request`] and
//! hands it to a [`Transport`]: in-process (a private
//! [`serve::Service`], optionally disk-backed via `--store`) or a
//! socket to a running daemon (`--connect HOST:PORT`). The rendering
//! below consumes only [`proto::Response`] values, so the output of
//! `ruf95 check` is byte-for-byte the same whether the analysis ran in
//! this process or in a daemon across the network.

use proto::json::Value;
use proto::{BenchCheckInfo, BenchFps, JobSpec, QueryKind, Request, Response};
use serve::{Client, Service, ServiceOptions};

/// Where requests go: a private in-process service or a daemon socket.
pub enum Transport {
    InProcess(Box<Service>),
    Socket(Client),
}

impl Transport {
    /// `--connect HOST:PORT` picks the socket; otherwise a fresh
    /// in-process service (disk-backed when `--store DIR` is given).
    pub fn from_flags(flags: &crate::Flags) -> Result<Transport, String> {
        if let Some(addr) = flags.get("connect") {
            return Ok(Transport::Socket(
                Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?,
            ));
        }
        let svc = Service::new(ServiceOptions {
            store_dir: flags.get("store").map(Into::into),
            mem_budget: flags.get_parsed("mem-budget", 0usize)?,
            threads: flags.get_parsed("threads", 0usize)?,
        })
        .map_err(|e| format!("store: {e}"))?;
        Ok(Transport::InProcess(Box::new(svc)))
    }

    /// Sends one request; protocol-level failures come back as
    /// `Err(message)` so callers can `?` straight through.
    pub fn send(&mut self, req: &Request) -> Result<Response, String> {
        let resp = match self {
            Transport::InProcess(svc) => svc.handle(req),
            Transport::Socket(client) => client.request(req).map_err(|e| format!("daemon: {e}"))?,
        };
        match resp {
            Response::Error { message } => Err(message),
            other => Ok(other),
        }
    }
}

/// Builds the job list for a command that takes `--suite` or one
/// source, attaching bundled interpreter input for suite benchmarks.
pub fn jobs_from(cx: &crate::Ctx) -> Result<Vec<JobSpec>, String> {
    if cx.flags.has("suite") {
        return Ok(suite::benchmarks()
            .iter()
            .map(|b| JobSpec {
                name: b.name.to_string(),
                source: b.source.to_string(),
                input: b.input.to_vec(),
            })
            .collect());
    }
    if !cx.name.is_empty() {
        return Ok(vec![job_spec(&cx.name, &cx.source)]);
    }
    // Sourceless command (`needs_source: false`) given a positional
    // anyway, e.g. `ruf95 check bench:span`.
    let Some(spec) = cx.flags.positional.first() else {
        return Err(format!("expected {} or --suite", crate::SOURCE_ARG));
    };
    let (name, source) = crate::load_source(spec)?;
    Ok(vec![job_spec(&name, &source)])
}

/// One job, with the suite benchmark's stdin when the name matches.
pub fn job_spec(name: &str, source: &str) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        source: source.to_string(),
        input: suite::by_name(name)
            .map(|b| b.input.to_vec())
            .unwrap_or_default(),
    }
}

/// Re-renders a service-side failure for one local source with caret
/// diagnostics when it is a frontend error (the service reports plain
/// text; locally we can do better).
fn render_service_err(message: String, jobs: &[JobSpec]) -> String {
    for j in jobs {
        if let Err(e) = cfront::compile(&j.source) {
            let file = cfront::SourceFile::new(&j.name, &j.source);
            return e.render(&file);
        }
    }
    message
}

fn project_of(cx: &crate::Ctx) -> String {
    cx.flags.get("project").unwrap_or("cli").to_string()
}

// ---------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------

fn print_bench_fps(benches: &[BenchFps]) {
    for b in benches {
        println!("{}  source {}  graph {}", b.name, b.source_fp, b.graph_fp);
        for s in &b.solvers {
            println!(
                "  {:<12} {}  {}{}",
                s.analysis,
                s.fp.as_deref().unwrap_or("-"),
                s.mode.as_deref().unwrap_or("solved"),
                s.pairs.map(|p| format!("  {p} pairs")).unwrap_or_default()
            );
        }
    }
}

/// `ruf95 analyze`: run the full solver stack via the typed API and
/// print per-bench fingerprints plus the canonical report fingerprint.
pub fn cmd_analyze(cx: &crate::Ctx) -> Result<(), String> {
    let jobs = jobs_from(cx)?;
    let json = cx.flags.has("json");
    let req = Request::Analyze {
        project: project_of(cx),
        jobs: jobs.clone(),
        fresh: cx.flags.has("fresh"),
        want_report: json,
    };
    let mut transport = Transport::from_flags(&cx.flags)?;
    let resp = transport
        .send(&req)
        .map_err(|m| render_service_err(m, &jobs))?;
    if json {
        println!("{}", resp.to_value().render());
        return Ok(());
    }
    match resp {
        Response::Analyzed {
            benches,
            report_fp,
            serve,
            ..
        } => {
            print_bench_fps(&benches);
            println!(
                "replayed {} / seeded {} / fresh {} bench(es), {} solution(s) verbatim{}",
                serve.benches_replayed,
                serve.benches_seeded,
                serve.benches_fresh,
                serve.solutions_replayed,
                if serve.restored {
                    " (session restored from store)"
                } else {
                    ""
                }
            );
            println!("report_fp: {report_fp}");
            Ok(())
        }
        other => Err(format!("unexpected response: {other:?}")),
    }
}

// ---------------------------------------------------------------------
// query
// ---------------------------------------------------------------------

/// `ruf95 query`: point queries against a benchmark — `--site N` for
/// the referent set at one indirect ref, `--a N --b N` for a may-alias
/// verdict with witnesses. By default the source ships inline with the
/// query and the service answers demand-driven: no exhaustive fixpoint
/// runs unless the bench was already solved. `--exhaustive` restores
/// the analyze-then-lookup flow (and is implied for non-CI solvers,
/// which have no demand path).
pub fn cmd_query(cx: &crate::Ctx) -> Result<(), String> {
    let analysis = cx.flags.get("analysis").unwrap_or("ci").to_string();
    let query = match (cx.flags.get("site"), cx.flags.get("a"), cx.flags.get("b")) {
        (Some(_), None, None) => QueryKind::ReferentsAt {
            site: cx.flags.get_parsed("site", 0usize)?,
        },
        (None, Some(_), Some(_)) => QueryKind::MayAlias {
            a: cx.flags.get_parsed("a", 0usize)?,
            b: cx.flags.get_parsed("b", 0usize)?,
        },
        _ => return Err("expected --site N, or --a N --b N".into()),
    };
    let project = project_of(cx);
    let mut transport = Transport::from_flags(&cx.flags)?;
    let jobs = vec![job_spec(&cx.name, &cx.source)];
    let exhaustive = cx.flags.has("exhaustive") || !matches!(analysis.as_str(), "ci" | "demand");
    if exhaustive {
        // Make sure the daemon (or local service) has the bench solved:
        // analyzing an unchanged source is a cache replay, so this is
        // near-free on repeat.
        transport
            .send(&Request::Analyze {
                project: project.clone(),
                jobs: jobs.clone(),
                fresh: false,
                want_report: false,
            })
            .map_err(|m| render_service_err(m, &jobs))?;
    }
    let resp = transport.send(&Request::Query {
        project,
        bench: cx.name.clone(),
        analysis,
        query,
        job: (!exhaustive).then(|| jobs[0].clone()),
    })?;
    if cx.flags.has("json") {
        println!("{}", resp.to_value().render());
        return Ok(());
    }
    match resp {
        Response::QueryResult {
            analysis,
            answer,
            demand,
            ..
        } => {
            let analysis = if demand {
                format!("{analysis}, demand")
            } else {
                analysis
            };
            match answer {
                proto::QueryAnswer::MayAlias {
                    may_alias,
                    witnesses,
                    a,
                    b,
                } => {
                    println!(
                        "[{analysis}] {} {}:{} vs {} {}:{} — {}",
                        a.kind,
                        a.line,
                        a.col,
                        b.kind,
                        b.line,
                        b.col,
                        if may_alias { "MAY ALIAS" } else { "no alias" }
                    );
                    for w in witnesses {
                        println!("  witness: {w}");
                    }
                }
                proto::QueryAnswer::Referents { site, referents } => {
                    println!(
                        "[{analysis}] {} at {}:{} — {} referent(s)",
                        site.kind,
                        site.line,
                        site.col,
                        referents.len()
                    );
                    for r in referents {
                        println!("  {r}");
                    }
                }
            }
            Ok(())
        }
        other => Err(format!("unexpected response: {other:?}")),
    }
}

// ---------------------------------------------------------------------
// check
// ---------------------------------------------------------------------

/// `ruf95 check` over the typed API: same table, diagnostics, and exit
/// codes as ever, but the analysis can run in-process or in a daemon.
pub fn cmd_check(cx: &crate::Ctx) -> Result<(), String> {
    let jobs = jobs_from(cx)?;
    let analysis = cx.flags.get("analysis").unwrap_or("ci").to_string();
    let json = cx.flags.has("json");
    let req = Request::Check {
        project: project_of(cx),
        jobs: jobs.clone(),
        analysis: analysis.clone(),
        want_report: json,
    };
    let mut transport = Transport::from_flags(&cx.flags)?;
    let resp = transport
        .send(&req)
        .map_err(|m| render_service_err(m, &jobs))?;
    let Response::Checked {
        benches,
        monotone_violation,
        refuted,
        report,
        ..
    } = resp
    else {
        return Err("unexpected response to check".into());
    };
    if json {
        let diags: Vec<String> = benches
            .iter()
            .map(|b| format!("    {}: {}", crate::jstr(&b.name), b.diags.render()))
            .collect();
        let report = report.map(|r| r.render()).unwrap_or_else(|| "null".into());
        println!(
            "{{\n  \"report\": {},\n  \"diagnostics\": {{\n{}\n  }}\n}}",
            report,
            diags.join(",\n")
        );
    } else {
        for b in &benches {
            println!("== {} ==", b.name);
            print!("{}", b.table);
            if b.rendered.is_empty() {
                println!("[{analysis}] no diagnostics");
            } else {
                print!("{}", b.rendered);
            }
            println!();
        }
        let (total, tp, fp, unreach) = totals_for(&benches, &analysis);
        println!(
            "[{analysis}] {total} diagnostic(s): {tp} true positive(s), \
             {fp} false positive(s), {unreach} unreachable"
        );
    }
    if !refuted.is_empty() {
        return Err(format!(
            "oracle-refuted diagnostics (missed true positives) in: {}",
            refuted.join(", ")
        ));
    }
    if let Some(v) = monotone_violation {
        return Err(format!("false-positive monotonicity violated: {v}"));
    }
    Ok(())
}

/// Diagnostic totals for one solver (or every solver under `"all"`)
/// across all checked benchmarks.
fn totals_for(benches: &[BenchCheckInfo], analysis: &str) -> (u64, u64, u64, u64) {
    let mut totals = (0, 0, 0, 0);
    for s in benches
        .iter()
        .flat_map(|b| &b.solvers)
        .filter(|s| analysis == "all" || s.analysis == analysis)
    {
        totals.0 += s.diags.iter().sum::<u64>();
        totals.1 += s.true_positives;
        totals.2 += s.false_positives;
        totals.3 += s.unreachable;
    }
    totals
}

// ---------------------------------------------------------------------
// incremental
// ---------------------------------------------------------------------

/// `ruf95 incremental` over the typed API: pushes each edited version
/// through one persistent session (in-process or a daemon's) and
/// cross-checks every step against a cache-bypassing fresh analysis.
pub fn cmd_incremental(cx: &crate::Ctx) -> Result<(), String> {
    let edits: usize = cx.flags.get_parsed("edits", 3)?;
    let seed: u64 = cx.flags.get_parsed("seed", 1995)?;
    let json = cx.flags.has("json");
    let steps: Vec<(String, String)> = match cx.flags.get("next") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            vec![(format!("replace with {path}"), text)]
        }
        None => suite::edit::edit_chain(&cx.source, seed, edits)
            .into_iter()
            .map(|s| {
                (
                    format!("{} [{}]", s.edit.description, s.edit.kind.name()),
                    s.source,
                )
            })
            .collect(),
    };
    if steps.is_empty() {
        return Err("no applicable edit found (try another --seed)".into());
    }
    let project = cx.flags.get("project").unwrap_or("incremental").to_string();
    let mut transport = Transport::from_flags(&cx.flags)?;
    let base = vec![job_spec(&cx.name, &cx.source)];
    transport
        .send(&Request::Analyze {
            project: project.clone(),
            jobs: base.clone(),
            fresh: false,
            want_report: false,
        })
        .map_err(|m| render_service_err(m, &base))?;
    if !json {
        println!("base: {} analyzed, summary cache primed", cx.name);
    }
    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    for (i, (desc, source)) in steps.iter().enumerate() {
        let jobs = vec![job_spec(&cx.name, source)];
        let inc = transport
            .send(&Request::Analyze {
                project: project.clone(),
                jobs: jobs.clone(),
                fresh: false,
                want_report: json,
            })
            .map_err(|m| render_service_err(m, &jobs))?;
        let fresh = transport
            .send(&Request::Analyze {
                project: project.clone(),
                jobs: jobs.clone(),
                fresh: true,
                want_report: false,
            })
            .map_err(|m| render_service_err(m, &jobs))?;
        let (
            Response::Analyzed {
                benches: inc_benches,
                serve,
                report,
                ..
            },
            Response::Analyzed {
                benches: fresh_benches,
                ..
            },
        ) = (inc, fresh)
        else {
            return Err("unexpected response to analyze".into());
        };
        // Incremental reuse must be invisible: every solver fingerprint
        // agrees with the cache-bypassing run.
        let matches = solver_fps(&inc_benches) == solver_fps(&fresh_benches);
        if !matches {
            mismatches += 1;
        }
        if json {
            rows.push(format!(
                "  {{\"edit\": {}, \"matches_fresh\": {}, \"report\": {}}}",
                crate::jstr(desc),
                matches,
                report.map(|r| r.render()).unwrap_or_else(|| "null".into())
            ));
            continue;
        }
        println!("\nstep {}/{}: {}", i + 1, steps.len(), desc);
        for s in inc_benches.iter().flat_map(|b| &b.solvers) {
            println!("  {:<12} {}", s.analysis, s.mode.as_deref().unwrap_or("-"));
        }
        println!(
            "  summaries reused {}/{} functions; {} solution(s) replayed verbatim",
            serve.funcs_reused,
            serve.funcs_reused + serve.funcs_dirty,
            serve.solutions_replayed
        );
        println!(
            "  from-scratch cross-check: {}",
            if matches {
                "identical solutions"
            } else {
                "MISMATCH"
            }
        );
    }
    if json {
        println!("[\n{}\n]", rows.join(",\n"));
    }
    if mismatches == 0 {
        Ok(())
    } else {
        Err(format!(
            "{mismatches} step(s) diverged from from-scratch analysis"
        ))
    }
}

fn solver_fps(benches: &[BenchFps]) -> Vec<(String, String, Option<String>)> {
    benches
        .iter()
        .flat_map(|b| {
            b.solvers
                .iter()
                .map(move |s| (b.name.clone(), s.analysis.clone(), s.fp.clone()))
        })
        .collect()
}

// ---------------------------------------------------------------------
// serve / client / serve-bench
// ---------------------------------------------------------------------

/// `ruf95 serve`: bind and run the daemon until a shutdown request.
pub fn cmd_serve(cx: &crate::Ctx) -> Result<(), String> {
    let addr = cx.flags.get("addr").unwrap_or("127.0.0.1:7095");
    let svc = Service::new(ServiceOptions {
        store_dir: cx.flags.get("store").map(Into::into),
        mem_budget: cx.flags.get_parsed("mem-budget", 0usize)?,
        threads: cx.flags.get_parsed("threads", 0usize)?,
    })
    .map_err(|e| format!("store: {e}"))?;
    serve::daemon::run(svc, addr).map_err(|e| format!("serve {addr}: {e}"))
}

/// `ruf95 client`: raw protocol access — newline-delimited JSON
/// requests from a file (or stdin), responses to stdout. The requests
/// are decoded locally first, so typos fail fast with a real message
/// instead of a daemon round-trip.
pub fn cmd_client(cx: &crate::Ctx) -> Result<(), String> {
    let addr = cx
        .flags
        .get("connect")
        .ok_or("client requires --connect HOST:PORT")?;
    let text = match cx.flags.positional.first().map(String::as_str) {
        Some("-") | None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                .map_err(|e| format!("stdin: {e}"))?;
            buf
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
    };
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let req = Request::from_value(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let resp = client
            .request(&req)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        println!("{}", resp.to_value().render());
    }
    Ok(())
}

/// `ruf95 serve-bench`: measure cold vs warm vs restored latency and
/// socket query throughput; write `BENCH_pr6.json`. With `--queries`,
/// measure the demand-driven query path instead and write
/// `BENCH_pr7.json`: cold first-query latency (demand vs
/// exhaustive-then-lookup), steady-state socket throughput, in-budget
/// fraction, and the materialization fingerprint cross-check. With
/// `--summaries`, measure the per-solver summary-seeded warm-edit
/// path and the wave-parallel extraction thread scaling, and write
/// `BENCH_pr8.json` (fingerprint-cross-checked on every edit).
pub fn cmd_serve_bench(cx: &crate::Ctx) -> Result<(), String> {
    let iters: u64 = cx.flags.get_parsed("iters", 200)?;
    if cx.flags.has("summaries") {
        let out = cx.flags.get("out").unwrap_or("BENCH_pr8.json");
        let edits: usize = cx.flags.get_parsed("edits", 3)?;
        let result = serve::bench::run_summaries(edits)?;
        let json = result.to_json();
        std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
        print!("{json}");
        let spectrum = result
            .solvers
            .iter()
            .map(|s| format!("{} {:.1}x", s.analysis, s.median_speedup))
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "wrote {out}: median warm-edit speedup {spectrum}; \
             {} fingerprint mismatches",
            result.fingerprint_mismatches
        );
        if result.fingerprint_mismatches > 0 {
            return Err(format!(
                "{} seeded resumes diverged from fresh solves",
                result.fingerprint_mismatches
            ));
        }
        return Ok(());
    }
    if cx.flags.has("queries") {
        let out = cx.flags.get("out").unwrap_or("BENCH_pr7.json");
        let result = serve::bench::run_queries(iters)?;
        let json = result.to_json();
        std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
        print!("{json}");
        eprintln!(
            "wrote {out}: demand first query {:.1}x faster than exhaustive, \
             {:.0} queries/s, {:.1}% in budget",
            result.cold_speedup,
            result.query_rps,
            result.in_budget_fraction * 100.0
        );
        return Ok(());
    }
    let out = cx.flags.get("out").unwrap_or("BENCH_pr6.json");
    let store_flag = cx.flags.get("store").map(std::path::PathBuf::from);
    let tmp;
    let store_dir = match &store_flag {
        Some(d) => d.as_path(),
        None => {
            tmp = std::env::temp_dir().join(format!("ruf95-serve-bench-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&tmp);
            tmp.as_path()
        }
    };
    let result = serve::bench::run(store_dir, iters)?;
    if store_flag.is_none() {
        let _ = std::fs::remove_dir_all(store_dir);
    }
    let json = result.to_json();
    std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
    print!("{json}");
    eprintln!(
        "wrote {out}: warm replay {:.1}x faster than cold solve, {:.0} queries/s over the socket",
        result.warm_speedup, result.query_rps
    );
    Ok(())
}

/// Resumable ecosystem-scale campaign: chunked differential jobs with
/// panic isolation, a checksummed journal, quarantine, and a
/// deduplicated `CAMPAIGN_report.json`. Exit is nonzero when the
/// completed report contains any violation or any quarantined job, so
/// CI can gate on the command directly.
pub fn cmd_campaign(cx: &crate::Ctx) -> Result<(), String> {
    let defaults = engine::CampaignConfig::default();
    let mut fuzz = engine::FuzzConfig {
        gen: if cx.flags.has("threaded") {
            suite::generator::GenConfig::threaded()
        } else if cx.flags.has("default-gen") {
            suite::generator::GenConfig::default()
        } else {
            suite::generator::GenConfig::campaign()
        },
        corpus_stats: true,
        ..engine::FuzzConfig::default()
    };
    fuzz.budget_ms = cx.flags.get_parsed("budget-ms", fuzz.budget_ms)?;
    fuzz.max_steps = cx.flags.get_parsed("max-steps", fuzz.max_steps)?;
    fuzz.interp_steps = cx.flags.get_parsed("interp-steps", fuzz.interp_steps)?;
    fuzz.shrink = !cx.flags.has("no-shrink");
    let cfg = engine::CampaignConfig {
        seeds: cx.flags.get_parsed("seeds", defaults.seeds)?,
        start_seed: cx.flags.get_parsed("start-seed", 0)?,
        chunk: cx.flags.get_parsed("chunk", defaults.chunk)?,
        threads: cx.flags.get_parsed("threads", 0)?,
        dir: cx.flags.get("dir").unwrap_or("campaign").into(),
        fuzz,
        max_chunks: match cx.flags.get("max-chunks") {
            Some(_) => Some(cx.flags.get_parsed("max-chunks", 0)?),
            None => None,
        },
        report_out: cx.flags.get("out").map(Into::into),
        panic_seed: match cx.flags.get("panic-seed") {
            Some(_) => Some(cx.flags.get_parsed("panic-seed", 0)?),
            None => None,
        },
        progress: !cx.flags.has("quiet"),
    };
    let outcome = engine::campaign::run(&cfg).map_err(|e| e.to_string())?;
    print!("{}", outcome.summary());
    let Some(report) = &outcome.report else {
        return Ok(());
    };
    println!("report: {}", outcome.report_path.display());
    if !report.quarantine.is_empty() {
        println!("quarantine: {}", outcome.quarantine_dir.display());
    }
    if cx.flags.has("json") {
        print!("{}", report.to_json());
    }
    let bad = report.violations_total > 0 || !report.quarantine.is_empty();
    if bad {
        Err(format!(
            "campaign found {} violation(s) and quarantined {} job(s)",
            report.violations_total,
            report.quarantine.len()
        ))
    } else {
        Ok(())
    }
}
