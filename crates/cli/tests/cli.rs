//! End-to-end tests driving the `ruf95` binary.

use std::process::Command;

fn ruf95(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ruf95"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn list_names_all_benchmarks() {
    let (stdout, _, ok) = ruf95(&["list"]);
    assert!(ok);
    for b in suite::benchmarks() {
        assert!(stdout.contains(b.name), "missing {}", b.name);
    }
}

#[test]
fn refs_prints_points_to_sets() {
    let (stdout, _, ok) = ruf95(&["refs", "bench:span"]);
    assert!(ok);
    assert!(stdout.contains("read"), "{stdout}");
    assert!(stdout.contains("heap:"), "{stdout}");
}

#[test]
fn compare_reports_the_headline() {
    let (stdout, _, ok) = ruf95(&["compare", "bench:part"]);
    assert!(ok);
    assert!(stdout.contains("identical at every indirect memory reference"));
}

#[test]
fn run_checks_soundness() {
    let (stdout, _, ok) = ruf95(&["run", "bench:compiler"]);
    assert!(ok);
    assert!(stdout.contains("[exit 0"), "{stdout}");
    assert!(stdout.contains("soundness"), "{stdout}");
}

#[test]
fn dot_and_ir_render() {
    let (dot, _, ok) = ruf95(&["dot", "bench:allroots"]);
    assert!(ok);
    assert!(dot.starts_with("digraph"));
    let (ir, _, ok) = ruf95(&["ir", "bench:allroots"]);
    assert!(ok);
    assert!(ir.contains("fn main:"));
    assert!(ir.contains("entry<main>"));
}

#[test]
fn modref_lists_functions() {
    let (stdout, _, ok) = ruf95(&["modref", "bench:loader"]);
    assert!(ok);
    assert!(stdout.contains("resolve_all:"), "{stdout}");
    assert!(stdout.contains("mod:"), "{stdout}");
}

#[test]
fn spectrum_prints_all_columns() {
    let (stdout, _, ok) = ruf95(&["spectrum", "bench:span"]);
    assert!(ok);
    for col in ["Weihl", "Steens", "CI", "k=1", "CS"] {
        assert!(stdout.contains(col), "missing {col}: {stdout}");
    }
}

#[test]
fn analyzes_a_file_from_disk() {
    let dir = std::env::temp_dir().join("ruf95-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.c");
    std::fs::write(
        &path,
        "int g; int main(void) { int *p; p = &g; return *p; }",
    )
    .unwrap();
    let (stdout, _, ok) = ruf95(&["refs", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("{g}"), "{stdout}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (_, stderr, ok) = ruf95(&["refs", "bench:nosuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown benchmark"));
    let (_, stderr, ok) = ruf95(&["frobnicate", "bench:bc"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (_, stderr, ok) = ruf95(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    // A program with a type error reports a rendered diagnostic.
    let dir = std::env::temp_dir().join("ruf95-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.c");
    std::fs::write(&path, "int main(void) { return missing; }").unwrap();
    let (_, stderr, ok) = ruf95(&["refs", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("undeclared"), "{stderr}");
}

#[test]
fn stats_reports_corpus_dedup() {
    let (out, err, ok) = ruf95(&["stats", "--seeds", "6", "--threads", "1"]);
    assert!(ok, "{err}");
    assert!(
        out.contains("functions:") && out.contains("unique"),
        "{out}"
    );
    let (json, err, ok) = ruf95(&["stats", "--seeds", "3", "--threads", "1", "--json"]);
    assert!(ok, "{err}");
    assert!(json.contains("\"func_dedup_ratio\""), "{json}");
}

#[test]
fn threaded_fuzz_and_litmus_check_pass_end_to_end() {
    let (out, err, ok) = ruf95(&[
        "fuzz",
        "--seeds",
        "4",
        "--threaded",
        "--threads",
        "1",
        "--no-shrink",
    ]);
    assert!(ok, "threaded fuzz failed: {out}\n{err}");
    assert!(out.contains("0 violations"), "{out}");
    let (out, err, ok) = ruf95(&["check", "bench:litmus_race_global", "--analysis", "all"]);
    assert!(ok, "litmus check failed: {out}\n{err}");
    assert!(out.contains("data-race") || out.contains("race"), "{out}");
}
