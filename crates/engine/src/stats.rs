//! Corpus-scale dedup accounting behind `ruf95 stats`.
//!
//! Answers the question the cross-program summary pool (ROADMAP items
//! 3/4) will be built on, without building the pool: across a
//! campaign-shaped corpus of generated programs, how many *distinct*
//! functions are there really? Every program is compiled and lowered,
//! each function gets its structural fingerprint
//! ([`alias::fingerprint::GraphIndex`]), and checker diagnostics under
//! the CI solution get their line-keyed dedup keys
//! ([`crate::fuzz::diag_key`] — the same key the campaign report
//! aggregates). The fold reports totals, uniques, and the dedup ratio a
//! content-addressed pool would realize.
//!
//! The corpus is the campaign generator preset by default
//! ([`GenConfig::campaign`]); the bundled paper suite and threaded
//! litmus programs can be folded in, and the threaded preset
//! ([`GenConfig::threaded`]) swapped in, to measure those populations
//! too.

use crate::pool;
use alias::SolverSpec;
use std::collections::BTreeMap;
use suite::generator::{generate, GenConfig};
use vdg::build::{lower, BuildOptions};

/// Knobs for one corpus scan.
#[derive(Debug, Clone)]
pub struct StatsConfig {
    /// Number of generated programs.
    pub seeds: u64,
    /// First seed of the range (shards compose with campaign shards).
    pub start_seed: u64,
    /// Generator shape knobs; [`GenConfig::campaign`] by default so the
    /// numbers describe the same corpus `ruf95 campaign` drives.
    pub gen: GenConfig,
    /// Also scan the bundled benchmarks and threaded litmus programs.
    pub include_suite: bool,
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            seeds: 200,
            start_seed: 0,
            gen: GenConfig::campaign(),
            include_suite: false,
            threads: 0,
        }
    }
}

/// The fold over one corpus: program, function, and diagnostic counts
/// with their deduplicated complements.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Programs scanned (generated seeds plus any suite programs).
    pub programs: u64,
    /// Programs that failed to compile or lower (generator bugs surface
    /// in the fuzzer; here they are only counted).
    pub skipped: u64,
    /// Function instances across the corpus.
    pub func_total: u64,
    /// Distinct function fingerprints.
    pub func_unique: u64,
    /// The most-repeated function fingerprints, `(fingerprint, count)`,
    /// highest count first — the functions a summary pool would
    /// summarize once instead of `count` times.
    pub func_top: Vec<(u64, u64)>,
    /// Raw checker diagnostics under the CI solution.
    pub diag_total: u64,
    /// Distinct line-keyed diagnostic dedup keys.
    pub diag_unique: u64,
}

impl CorpusStats {
    /// `total / unique` as a rendered ratio (`"1.0x"` when empty).
    fn ratio(total: u64, unique: u64) -> String {
        if unique == 0 {
            "1.0x".to_string()
        } else {
            format!("{:.1}x", total as f64 / unique as f64)
        }
    }

    /// Human-readable summary block.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "corpus: {} program(s), {} skipped\n",
            self.programs, self.skipped
        ));
        out.push_str(&format!(
            "functions: {} -> {} unique ({} dedup)\n",
            self.func_total,
            self.func_unique,
            Self::ratio(self.func_total, self.func_unique)
        ));
        out.push_str(&format!(
            "diagnostics: {} -> {} unique ({} dedup)\n",
            self.diag_total,
            self.diag_unique,
            Self::ratio(self.diag_total, self.diag_unique)
        ));
        for (fp, n) in &self.func_top {
            out.push_str(&format!("  top fn {fp:016x}: {n} instance(s)\n"));
        }
        out
    }

    /// The report as a small JSON object (same hand-rolled style as the
    /// campaign report; fingerprints render as hex strings).
    pub fn to_json(&self) -> String {
        let top: Vec<String> = self
            .func_top
            .iter()
            .map(|(fp, n)| format!("{{\"fingerprint\": \"{fp:016x}\", \"count\": {n}}}"))
            .collect();
        format!(
            "{{\n  \"programs\": {},\n  \"skipped\": {},\n  \"func_total\": {},\n  \
             \"func_unique\": {},\n  \"func_dedup_ratio\": \"{}\",\n  \"diag_total\": {},\n  \
             \"diag_unique\": {},\n  \"diag_dedup_ratio\": \"{}\",\n  \"func_top\": [{}]\n}}",
            self.programs,
            self.skipped,
            self.func_total,
            self.func_unique,
            Self::ratio(self.func_total, self.func_unique),
            self.diag_total,
            self.diag_unique,
            Self::ratio(self.diag_total, self.diag_unique),
            top.join(", ")
        )
    }
}

/// Fingerprints and diagnostic keys of one program, before the fold.
fn scan(src: &str) -> Option<(Vec<u64>, Vec<u64>)> {
    let prog = cfront::compile(src).ok()?;
    let graph = lower(&prog, &BuildOptions::default()).ok()?;
    let idx = alias::fingerprint::GraphIndex::build(&graph);
    let ci = SolverSpec::ci().solve_ci(&graph);
    let keys = checker::run_checks(&graph, &ci, &ci.callees)
        .iter()
        .map(|d| crate::fuzz::diag_key(src, d))
        .collect();
    Some((idx.func_fps.clone(), keys))
}

/// Runs the corpus scan: generated seeds in parallel, the optional
/// suite fold-in, then one deterministic aggregation pass.
pub fn collect(cfg: &StatsConfig) -> CorpusStats {
    let threads = if cfg.threads == 0 {
        pool::auto_threads()
    } else {
        cfg.threads
    };
    let mut scans: Vec<Option<(Vec<u64>, Vec<u64>)>> =
        pool::run_indexed(cfg.seeds as usize, threads, |i| {
            let seed = cfg.start_seed + i as u64;
            scan(&generate(seed, &cfg.gen))
        });
    if cfg.include_suite {
        for b in suite::benchmarks().into_iter().chain(suite::litmus()) {
            scans.push(scan(b.source));
        }
    }

    let mut s = CorpusStats {
        programs: scans.len() as u64,
        ..CorpusStats::default()
    };
    let mut func_counts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut diag_keys: BTreeMap<u64, u64> = BTreeMap::new();
    for item in scans {
        let Some((fps, keys)) = item else {
            s.skipped += 1;
            continue;
        };
        s.func_total += fps.len() as u64;
        for fp in fps {
            *func_counts.entry(fp).or_insert(0) += 1;
        }
        s.diag_total += keys.len() as u64;
        for k in keys {
            *diag_keys.entry(k).or_insert(0) += 1;
        }
    }
    s.func_unique = func_counts.len() as u64;
    s.diag_unique = diag_keys.len() as u64;
    let mut top: Vec<(u64, u64)> = func_counts.into_iter().collect();
    // Highest multiplicity first; fingerprint as a deterministic tie
    // break so shards render identically.
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top.truncate(5);
    top.retain(|(_, n)| *n > 1);
    s.func_top = top;
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_corpus_dedups_functions_and_diagnostics() {
        let cfg = StatsConfig {
            seeds: 12,
            threads: 1,
            ..StatsConfig::default()
        };
        let s = collect(&cfg);
        assert_eq!(s.programs, 12);
        assert_eq!(s.skipped, 0, "campaign preset programs always compile");
        assert!(s.func_total > 0 && s.func_unique > 0);
        assert!(
            s.func_unique < s.func_total,
            "the campaign preset repeats function shapes across seeds \
             ({} unique of {})",
            s.func_unique,
            s.func_total
        );
        assert!(s.diag_unique <= s.diag_total);
        let json = s.to_json();
        assert!(json.contains("\"func_unique\""));
        assert!(json.contains("\"func_dedup_ratio\""));
        assert!(s.summary().contains("unique"));
    }

    #[test]
    fn suite_fold_in_and_determinism() {
        let cfg = StatsConfig {
            seeds: 4,
            include_suite: true,
            threads: 2,
            ..StatsConfig::default()
        };
        let a = collect(&cfg);
        let b = collect(&cfg);
        // 13 paper programs + 7 litmus programs on top of the seeds.
        assert_eq!(a.programs, 4 + 13 + 7);
        assert_eq!(a.skipped, 0, "every bundled program compiles");
        assert_eq!(a.to_json(), b.to_json(), "scans are deterministic");
    }
}
