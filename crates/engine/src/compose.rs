//! Bottom-up summary composition over the call graph.
//!
//! The alias crate's [`Summarize`](alias::solver::Solver::summarize)
//! capability turns any solved analysis into caller-independent
//! per-function [`FunctionSummary`](alias::summary::FunctionSummary)
//! facts. Extraction is per-function and independent, so this module
//! schedules it the way a compositional analysis would run: strongly
//! connected components of the call graph in reverse topological order
//! (callees before callers), each *wave* of independent components
//! summarized in parallel across the engine's thread pool with no
//! shared worklist. The result is identical to the serial
//! [`summarize_serial`](alias::solver::summarize_serial) oracle — the
//! schedule affects wall-clock only, never the facts — and the test
//! suite cross-checks the two.
//!
//! The call graph comes from the shared CI solution's resolved
//! [`callees`](alias::ci::CiResult::callees), which soundly
//! over-approximate the targets of indirect calls. Without a CI
//! solution (a caller summarizing a standalone baseline) the schedule
//! degrades to a single wave — still parallel, just not bottom-up.

use crate::pool;
use alias::ci::CiResult;
use alias::fingerprint::GraphIndex;
use alias::solver::Solution;
use alias::summary::SolverSummaries;
use std::collections::HashMap;
use vdg::graph::{Graph, NodeId, VFuncId};

/// The bottom-up schedule: function ids grouped into waves such that
/// every call edge goes from a later wave to an earlier one (callees
/// first). Functions in one wave are independent — no call path
/// connects them except through already-summarized waves — so they can
/// be processed concurrently. Mutually recursive functions (one SCC)
/// always share a wave.
pub fn bottom_up_waves(
    graph: &Graph,
    index: &GraphIndex,
    callees: &HashMap<NodeId, Vec<VFuncId>, impl std::hash::BuildHasher>,
) -> Vec<Vec<VFuncId>> {
    let n = graph.func_count();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (&call, targets) in callees {
        let owner = index.node_owner[call.0 as usize];
        for &t in targets {
            adj[owner.0 as usize].push(t.0);
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }

    let scc_of = tarjan_sccs(&adj);
    let scc_count = scc_of.iter().map(|&c| c + 1).max().unwrap_or(0);
    // Tarjan numbers components callees-first, so a single pass in
    // component order sees every callee's level before its callers'.
    let mut level = vec![0usize; scc_count];
    let mut order: Vec<Vec<usize>> = vec![Vec::new(); scc_count];
    for (f, &c) in scc_of.iter().enumerate() {
        order[c].push(f);
    }
    let mut depth = 0;
    for c in 0..scc_count {
        let mut l = 0;
        for &f in &order[c] {
            for &t in &adj[f] {
                let tc = scc_of[t as usize];
                if tc != c {
                    l = l.max(level[tc] + 1);
                }
            }
        }
        level[c] = l;
        depth = depth.max(l + 1);
    }

    let mut waves: Vec<Vec<VFuncId>> = vec![Vec::new(); depth.max(1)];
    for (f, &c) in scc_of.iter().enumerate() {
        waves[level[c]].push(VFuncId(f as u32));
    }
    waves
        .iter_mut()
        .for_each(|w| w.sort_unstable_by_key(|f| f.0));
    waves.retain(|w| !w.is_empty());
    waves
}

/// Iterative Tarjan over the function-level digraph. Returns each
/// node's component id; components are numbered in reverse topological
/// order of the condensation (a component's callees always have
/// smaller ids, self-loops aside).
fn tarjan_sccs(adj: &[Vec<u32>]) -> Vec<usize> {
    const UNSEEN: u32 = u32::MAX;
    let n = adj.len();
    let mut idx = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut next_idx = 0u32;
    let mut next_scc = 0usize;
    // (node, next child position) frames replace recursion: the VDG
    // puts no bound on call-chain depth.
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if idx[root as usize] != UNSEEN {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            let vi = v as usize;
            if *ci == 0 {
                idx[vi] = next_idx;
                low[vi] = next_idx;
                next_idx += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            if let Some(&w) = adj[vi].get(*ci) {
                *ci += 1;
                let wi = w as usize;
                if idx[wi] == UNSEEN {
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(idx[wi]);
                }
                continue;
            }
            frames.pop();
            if let Some(&mut (p, _)) = frames.last_mut() {
                let pi = p as usize;
                low[pi] = low[pi].min(low[vi]);
            }
            if low[vi] == idx[vi] {
                loop {
                    let w = stack.pop().expect("tarjan stack");
                    on_stack[w as usize] = false;
                    scc_of[w as usize] = next_scc;
                    if w == v {
                        break;
                    }
                }
                next_scc += 1;
            }
        }
    }
    scc_of
}

/// Whole-program summary extraction, scheduled bottom-up and run
/// wave-parallel. Facts-identical to
/// [`summarize_serial`](alias::solver::summarize_serial): `None`
/// exactly when the solution cannot be summarized (unstable naming, no
/// vocabulary, or any function whose facts fall outside the stable
/// vocabulary).
pub fn summarize(
    graph: &Graph,
    index: &GraphIndex,
    sol: &dyn Solution,
    ci: Option<&CiResult>,
    threads: usize,
) -> Option<SolverSummaries> {
    if index.unsafe_reason.is_some() {
        return None;
    }
    let vocab = sol.vocab()?;
    let extract = sol.func_extractor(graph, index, ci)?;
    let waves = match ci {
        Some(ci) => bottom_up_waves(graph, index, &ci.callees),
        None => vec![graph.func_ids().collect::<Vec<_>>()],
    };
    let mut out = SolverSummaries::new(vocab);
    for wave in waves {
        // One wave = mutually independent call-graph components; the
        // extractor is `Sync`, so workers share it with no coordination.
        let chunk = pool::run_indexed(wave.len(), threads, |i| extract(wave[i]));
        for (f, s) in wave.iter().zip(chunk) {
            out.funcs.insert(graph.func(*f).name.clone(), s?);
        }
    }
    out.store = sol.summary_store(graph, index)?;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_orders_callees_first() {
        // 0 -> 1 -> 2, 2 -> 1 (cycle {1,2}), 3 isolated.
        let adj = vec![vec![1], vec![2], vec![1], vec![]];
        let scc = tarjan_sccs(&adj);
        assert_eq!(scc[1], scc[2], "cycle shares a component");
        assert!(scc[0] > scc[1], "caller numbered after its callees");
        assert_ne!(scc[3], scc[0]);
        assert_ne!(scc[3], scc[1]);
    }

    #[test]
    fn waves_respect_call_depth() {
        let e = crate::Engine::new().threads(1);
        let run = e.run(&crate::Job::named(&["span"])).unwrap();
        let b = &run.benches[0];
        let index = GraphIndex::build(&b.graph);
        let waves = bottom_up_waves(&b.graph, &index, &b.ci.callees);
        let total: usize = waves.iter().map(Vec::len).sum();
        assert_eq!(total, b.graph.func_count(), "every function scheduled once");
        // Every resolved call edge points from a later wave to a
        // strictly earlier one, unless caller and callee share a wave
        // (mutual recursion).
        let wave_of: HashMap<u32, usize> = waves
            .iter()
            .enumerate()
            .flat_map(|(i, w)| w.iter().map(move |f| (f.0, i)))
            .collect();
        for (&call, targets) in &b.ci.callees {
            let owner = index.node_owner[call.0 as usize];
            for t in targets {
                assert!(
                    wave_of[&t.0] <= wave_of[&owner.0],
                    "call edge climbs the schedule"
                );
            }
        }
    }

    #[test]
    fn parallel_summaries_match_the_serial_oracle() {
        let e = crate::Engine::new().threads(1);
        let run = e.run(&crate::Job::named(&["span"])).unwrap();
        let b = &run.benches[0];
        let index = GraphIndex::build(&b.graph);
        for s in &b.solutions {
            let sol = s.solution.as_deref().expect("solved");
            let serial = alias::solver::summarize_serial(&b.graph, &index, sol, Some(&b.ci));
            for threads in [1, 4] {
                let par = summarize(&b.graph, &index, sol, Some(&b.ci), threads);
                assert_eq!(
                    par, serial,
                    "{} diverged from the serial oracle at {threads} threads",
                    s.analysis
                );
            }
        }
    }
}
