//! Resumable ecosystem-scale fuzz/analysis campaigns.
//!
//! `ruf95 campaign` industrializes the differential fuzzer the way
//! Rudra industrialized one analyzer across crates.io: a batched,
//! resumable job queue that drives tens of thousands of generated
//! programs through all five solvers, the six checkers, and every
//! differential property, with panic isolation, quarantine, and
//! corpus-scale deduplicated reporting.
//!
//! **Chunked job queue.** Seeds are processed in fixed-size chunks over
//! the work-stealing pool ([`crate::pool`]). Each job runs the full
//! differential check ([`crate::fuzz`]) under `catch_unwind`, so a
//! panicking seed is isolated, quarantined, and the campaign keeps
//! going.
//!
//! **Checksummed journal.** After every chunk the campaign rewrites
//! `journal.ruf95` in its state directory using the same atomic
//! write/versioned-header/FNV-checksum idiom as `serve::store`
//! (temp-file + rename, `ruf95-campaign v1 <fnv64>` header). A killed
//! campaign resumes exactly at the next chunk, and a resumed campaign's
//! final report is byte-identical to an uninterrupted run because the
//! canonical report is a pure fold over journaled per-chunk results —
//! which is also why wall-clock data (chunk times, per-solver micros,
//! wall-budget overruns) lives in the journal's *non-canonical* fields
//! and never reaches the report. Outcome classification uses the
//! deterministic step budgets instead ([`JobOutcome::OverBudget`]).
//!
//! **Quarantine.** Crashing and over-budget jobs land in a
//! `campaign-quarantine/` directory as standalone `.c` repros,
//! minimized by the 7-pass shrinker when the failure reproduces from
//! source alone (a crash injected by test knobs does not, and keeps its
//! full source).
//!
//! **Deduplicated reporting.** Violations are grouped by the FNV-64
//! fingerprint of (property, solver, shrunk counterexample); checker
//! diagnostics by (check kind, offending source line); functions by
//! their structural graph fingerprint. `CAMPAIGN_report.json` records
//! per-property violation counts, the quarantine ledger, and the dedup
//! ratio those three streams achieve at corpus scale.

use crate::fuzz::{self, FuzzConfig, JobOutcome};
use crate::pool;
use crate::shrink::shrink;
use alias::fingerprint::fnv64_parts;
use proto::json::Value;
use proto::{fp_hex, parse_fp_hex};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use suite::generator::generate;

/// Journal format version; bumping it cold-starts old campaigns.
const JOURNAL_VERSION: u32 = 1;
/// Header magic, first field of the journal's first line.
const JOURNAL_MAGIC: &str = "ruf95-campaign";
/// Minimized repros per chunk for violations and for quarantined jobs
/// (shrinking re-runs the full differential check per candidate, so it
/// is bounded; overflow keeps the full source).
const MAX_SHRINKS_PER_CHUNK: usize = 4;
/// The fixed property vocabulary, for zero-filled per-property counts.
const PROPERTIES: [&str; 8] = [
    "soundness",
    "lattice",
    "divergence",
    "incremental",
    "checker",
    "demand",
    "roundtrip",
    "pipeline",
];

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds to drive through the pipeline.
    pub seeds: u64,
    /// First seed (campaigns shard by range).
    pub start_seed: u64,
    /// Seeds per journal chunk — the resume granularity.
    pub chunk: u64,
    /// Worker threads; `0` means one per core.
    pub threads: usize,
    /// State directory: journal, quarantine, report.
    pub dir: PathBuf,
    /// Per-job knobs (generator shape, step budgets, planted faults).
    /// `seeds`/`start_seed`/`threads` inside are ignored; the campaign
    /// fields above drive scheduling.
    pub fuzz: FuzzConfig,
    /// Stop (checkpointing cleanly) after this many chunks *this
    /// invocation* — the kill switch the resume-equivalence tests use,
    /// and a way to run long campaigns in slices.
    pub max_chunks: Option<u64>,
    /// Also write the final report to this path (e.g. repo root for CI
    /// artifact upload), byte-identical to the state-directory copy.
    pub report_out: Option<PathBuf>,
    /// Test knob: panic deliberately when this seed's job runs, to
    /// exercise crash isolation and quarantine end to end.
    pub panic_seed: Option<u64>,
    /// Print per-chunk progress lines to stderr.
    pub progress: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seeds: 10_000,
            start_seed: 0,
            chunk: 500,
            threads: 0,
            dir: PathBuf::from("campaign"),
            fuzz: FuzzConfig {
                gen: suite::generator::GenConfig::campaign(),
                corpus_stats: true,
                ..FuzzConfig::default()
            },
            max_chunks: None,
            report_out: None,
            panic_seed: None,
            progress: false,
        }
    }
}

/// Everything that can abort a campaign before it produces results.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem failure on the journal, quarantine, or report.
    Io(String),
    /// The on-disk journal was produced under different knobs. This is
    /// a hard error rather than a silent fresh start: hours of journal
    /// are worth more than an accidental flag change.
    ConfigMismatch {
        /// Key recorded in the journal.
        journal: String,
        /// Key of the current configuration.
        current: String,
    },
    /// Nonsensical configuration (zero seeds, zero chunk size).
    Invalid(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(m) => write!(f, "campaign io: {m}"),
            CampaignError::ConfigMismatch { journal, current } => write!(
                f,
                "campaign journal belongs to a different configuration\n  journal: {journal}\n  current: {current}\n\
                 delete the state directory (or restore the original flags) to proceed"
            ),
            CampaignError::Invalid(m) => write!(f, "campaign config: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// One journaled violation (pre-dedup), with its repro.
#[derive(Debug, Clone)]
struct CaseRecord {
    seed: u64,
    kind: String,
    solver: String,
    detail: String,
    source: String,
    minimized: Option<String>,
}

/// One quarantined job: the seed, why, and its standalone repro.
#[derive(Debug, Clone)]
struct QuarantineRecord {
    seed: u64,
    /// `"crashed"` or `"over-budget"` ([`JobOutcome::name`]).
    outcome: String,
    detail: String,
    /// Shrunk when the failure reproduces from source alone; the full
    /// generated program otherwise.
    repro: String,
    shrunk: bool,
}

/// Per-chunk results as journaled. Canonical fields feed the final
/// report; `solver_us`/`wall_ms`/`overruns` are wall-clock diagnostics
/// excluded from it (they differ between a run and its resume).
#[derive(Debug, Clone, Default)]
struct ChunkRecord {
    index: u64,
    clean: u64,
    degraded: u64,
    over_budget: u64,
    crashed: u64,
    demand_queries: u64,
    demand_hits: u64,
    diag_total: u64,
    diag_keys: Vec<u64>,
    func_total: u64,
    func_fps: Vec<u64>,
    violations: Vec<CaseRecord>,
    quarantine: Vec<QuarantineRecord>,
    // --- non-canonical below ---
    overruns: u64,
    solver_us: BTreeMap<String, u64>,
    wall_ms: f64,
}

/// The on-disk campaign state: config identity plus finished chunks.
#[derive(Debug, Clone)]
struct Journal {
    config_key: String,
    chunks: Vec<ChunkRecord>,
}

/// How loading the journal went (the `serve::store` idiom: hostile or
/// stale bytes degrade to a recorded fresh start, never a panic).
enum JournalLoad {
    Missing,
    Loaded(Journal),
    Rejected(String),
}

/// One deduplicated violation group in the final report.
#[derive(Debug, Clone)]
pub struct CampaignCase {
    /// FNV-64 of (kind, solver, shrunk-or-full repro), as 16 hex chars.
    pub fingerprint: String,
    /// Property that failed.
    pub kind: String,
    /// Solver (or pairing) implicated.
    pub solver: String,
    /// Raw occurrences collapsed into this case.
    pub count: u64,
    /// Seeds that produced it, ascending.
    pub seeds: Vec<u64>,
    /// Detail of the first (lowest-seed) occurrence.
    pub detail: String,
    /// Minimized repro, when shrinking ran for an occurrence.
    pub minimized: Option<String>,
}

/// One quarantine ledger entry in the final report.
#[derive(Debug, Clone)]
pub struct QuarantineCase {
    /// Seed of the quarantined job.
    pub seed: u64,
    /// `"crashed"` or `"over-budget"`.
    pub outcome: String,
    /// First failure message.
    pub detail: String,
    /// Whether the repro was minimized (the failure reproduced from
    /// source alone).
    pub shrunk: bool,
    /// Repro filename inside `campaign-quarantine/`.
    pub file: String,
}

/// The canonical deduplicated campaign report. A pure fold over the
/// journal's canonical chunk fields: running to completion twice — or
/// once with any number of kill/resume cycles — renders byte-identical
/// JSON.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Seeds driven.
    pub seeds: u64,
    /// First seed.
    pub start_seed: u64,
    /// Jobs with no violations and no degradation.
    pub clean: u64,
    /// Jobs where some check was skipped (step budgets, interp aborts).
    pub degraded: u64,
    /// Jobs with typed outcome [`JobOutcome::OverBudget`].
    pub over_budget: u64,
    /// Jobs with typed outcome [`JobOutcome::Crashed`].
    pub crashed: u64,
    /// Demand queries fired / answered without oracle fallback.
    pub demand_queries: u64,
    /// See `demand_queries`.
    pub demand_hits: u64,
    /// Raw (pre-dedup) violation count.
    pub violations_total: u64,
    /// Raw violation count per property, zero-filled over the fixed
    /// vocabulary.
    pub by_property: Vec<(String, u64)>,
    /// Deduplicated violation groups, by (kind, solver, fingerprint).
    pub cases: Vec<CampaignCase>,
    /// Quarantine ledger, ascending by seed.
    pub quarantine: Vec<QuarantineCase>,
    /// Raw checker diagnostics across the corpus (CI solution).
    pub diag_total: u64,
    /// Distinct diagnostic dedup keys across the corpus.
    pub diag_unique: u64,
    /// Functions lowered across the corpus (including `main`s).
    pub func_total: u64,
    /// Distinct function fingerprints across the corpus.
    pub func_unique: u64,
    /// Corpus dedup ratio: raw over unique across the three dedup
    /// streams (diagnostics, functions, violations), 2 decimals.
    pub dedup_ratio: String,
}

/// What one `run` invocation did (the report only exists when the
/// campaign completed).
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Whether every chunk is journaled.
    pub complete: bool,
    /// Total chunks the seed range needs.
    pub chunks_total: u64,
    /// Chunks journaled after this invocation.
    pub chunks_done: u64,
    /// Chunks executed by this invocation (the rest were resumed).
    pub chunks_run: u64,
    /// Chunks already journaled when this invocation started.
    pub resumed_from: u64,
    /// Why a pre-existing journal was discarded, if it was.
    pub journal_note: Option<String>,
    /// The canonical report (completion only).
    pub report: Option<CampaignReport>,
    /// Where the report was written.
    pub report_path: PathBuf,
    /// Quarantine directory.
    pub quarantine_dir: PathBuf,
    /// Non-canonical wall-clock aggregates for the human summary.
    pub solver_us: BTreeMap<String, u64>,
    /// Wall-budget overruns (advisory; journal-wide).
    pub overruns: u64,
    /// Wall time of this invocation.
    pub wall: Duration,
}

impl CampaignOutcome {
    /// Human summary: headline counts, per-property violations, dedup
    /// accounting, per-solver throughput.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "campaign: {}/{} chunks journaled ({} run now, {} resumed) in {:.2?}",
            self.chunks_done, self.chunks_total, self.chunks_run, self.resumed_from, self.wall,
        );
        if let Some(note) = &self.journal_note {
            let _ = writeln!(s, "  journal: {note}");
        }
        let Some(r) = &self.report else {
            let _ = writeln!(
                s,
                "  checkpointed — rerun with the same flags to resume at chunk {}",
                self.chunks_done
            );
            return s;
        };
        let _ = writeln!(
            s,
            "  {} seeds — {} clean, {} degraded, {} over budget, {} crashed, {} quarantined, \
             {}/{} demand queries in budget",
            r.seeds,
            r.clean,
            r.degraded,
            r.over_budget,
            r.crashed,
            r.quarantine.len(),
            r.demand_hits,
            r.demand_queries,
        );
        let _ = writeln!(
            s,
            "  violations: {} raw -> {} deduplicated case(s)",
            r.violations_total,
            r.cases.len()
        );
        for (prop, n) in &r.by_property {
            let _ = writeln!(s, "    {prop:<12} {n}");
        }
        let _ = writeln!(
            s,
            "  dedup: {} diagnostics -> {} unique; {} functions -> {} unique; ratio {}x",
            r.diag_total, r.diag_unique, r.func_total, r.func_unique, r.dedup_ratio
        );
        if !self.solver_us.is_empty() {
            let _ = writeln!(s, "  per-solver throughput ({} seeds):", r.seeds);
            for (name, us) in &self.solver_us {
                let secs = *us as f64 / 1e6;
                let rate = if secs > 0.0 {
                    r.seeds as f64 / secs
                } else {
                    f64::INFINITY
                };
                let _ = writeln!(s, "    {name:<12} {secs:>8.2}s total  {rate:>10.0} seeds/s");
            }
        }
        s
    }
}

/// Runs (or resumes) a campaign. See the module docs for the contract;
/// the short version: chunked, journaled, panic-isolated, and the final
/// report is a deterministic fold over the journal.
pub fn run(cfg: &CampaignConfig) -> Result<CampaignOutcome, CampaignError> {
    let t0 = Instant::now();
    if cfg.seeds == 0 {
        return Err(CampaignError::Invalid("seeds must be positive".into()));
    }
    if cfg.chunk == 0 {
        return Err(CampaignError::Invalid("chunk must be positive".into()));
    }
    let threads = if cfg.threads == 0 {
        pool::auto_threads()
    } else {
        cfg.threads
    };
    let qdir = cfg.dir.join("campaign-quarantine");
    fs::create_dir_all(&cfg.dir).map_err(|e| CampaignError::Io(format!("{e}")))?;
    fs::create_dir_all(&qdir).map_err(|e| CampaignError::Io(format!("{e}")))?;

    let key = config_key(cfg);
    let journal_path = cfg.dir.join("journal.ruf95");
    let mut journal_note = None;
    let mut journal = match load_journal(&journal_path) {
        JournalLoad::Missing => Journal {
            config_key: key.clone(),
            chunks: Vec::new(),
        },
        JournalLoad::Rejected(reason) => {
            journal_note = Some(format!("discarded unusable journal ({reason})"));
            Journal {
                config_key: key.clone(),
                chunks: Vec::new(),
            }
        }
        JournalLoad::Loaded(j) => {
            if j.config_key != key {
                return Err(CampaignError::ConfigMismatch {
                    journal: j.config_key,
                    current: key,
                });
            }
            j
        }
    };
    // A journal must be a contiguous prefix of chunks; anything else
    // means manual tampering and restarts the campaign.
    if !journal
        .chunks
        .iter()
        .enumerate()
        .all(|(i, c)| c.index == i as u64)
    {
        journal_note = Some("discarded journal with non-contiguous chunks".into());
        journal.chunks.clear();
    }
    let resumed_from = journal.chunks.len() as u64;
    if resumed_from == 0 {
        // Fresh start: drop quarantine files from any previous run so
        // the directory always mirrors the journal.
        let _ = fs::remove_dir_all(&qdir);
        fs::create_dir_all(&qdir).map_err(|e| CampaignError::Io(format!("{e}")))?;
    }

    let chunks_total = cfg.seeds.div_ceil(cfg.chunk);
    let mut chunks_run = 0u64;
    for index in resumed_from..chunks_total {
        if let Some(max) = cfg.max_chunks {
            if chunks_run >= max {
                break;
            }
        }
        let t_chunk = Instant::now();
        let first = cfg.start_seed + index * cfg.chunk;
        let count = cfg.chunk.min(cfg.start_seed + cfg.seeds - first) as usize;
        let record = run_chunk(cfg, index, first, count, threads);
        if cfg.progress {
            eprintln!(
                "campaign: chunk {}/{} (seeds {first}..{}) — {} clean, {} violations, {} quarantined [{:.2?}]",
                index + 1,
                chunks_total,
                first + count as u64,
                record.clean,
                record.violations.len(),
                record.quarantine.len(),
                t_chunk.elapsed(),
            );
        }
        write_quarantine_files(&qdir, &record.quarantine)?;
        journal.chunks.push(record);
        save_journal(&journal_path, &journal)?;
        chunks_run += 1;
    }

    let complete = journal.chunks.len() as u64 == chunks_total;
    let report_path = cfg.dir.join("CAMPAIGN_report.json");
    let mut solver_us = BTreeMap::new();
    let mut overruns = 0;
    for c in &journal.chunks {
        for (name, us) in &c.solver_us {
            *solver_us.entry(name.clone()).or_insert(0) += us;
        }
        overruns += c.overruns;
    }
    let report = if complete {
        let r = build_report(cfg, &journal);
        let rendered = r.to_json();
        atomic_write(&report_path, rendered.as_bytes())?;
        if let Some(out) = &cfg.report_out {
            atomic_write(out, rendered.as_bytes())?;
        }
        // Re-write every quarantine file from the journal so the
        // directory is consistent even after kill/resume cycles.
        for c in &journal.chunks {
            write_quarantine_files(&qdir, &c.quarantine)?;
        }
        Some(r)
    } else {
        None
    };

    Ok(CampaignOutcome {
        complete,
        chunks_total,
        chunks_done: journal.chunks.len() as u64,
        chunks_run,
        resumed_from,
        journal_note,
        report,
        report_path,
        quarantine_dir: qdir,
        solver_us,
        overruns,
        wall: t0.elapsed(),
    })
}

/// Runs one chunk of seeds over the pool and aggregates, including the
/// bounded shrink passes for violations and quarantined jobs.
fn run_chunk(
    cfg: &CampaignConfig,
    index: u64,
    first: u64,
    count: usize,
    threads: usize,
) -> ChunkRecord {
    let t0 = Instant::now();
    type JobResult = (u64, String, Result<fuzz::Findings, String>);
    let jobs: Vec<JobResult> = pool::run_indexed(count, threads, |i| {
        let seed = first + i as u64;
        let src = cfg.fuzz.planted.plant(&generate(seed, &cfg.fuzz.gen));
        let inject = cfg.panic_seed == Some(seed);
        let res = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("campaign: injected test panic at seed {seed}");
            }
            fuzz::check_source(&src, &cfg.fuzz, seed)
        }))
        .map_err(panic_msg);
        (seed, src, res)
    });

    let mut rec = ChunkRecord {
        index,
        ..ChunkRecord::default()
    };
    let mut diag_keys = BTreeSet::new();
    let mut func_fps = BTreeSet::new();
    for (seed, src, res) in jobs {
        match res {
            Ok(f) => {
                rec.demand_queries += f.demand_queries;
                rec.demand_hits += f.demand_hits;
                rec.diag_total += f.diag_total;
                diag_keys.extend(f.diag_keys.iter().copied());
                rec.func_total += f.func_fps.len() as u64;
                func_fps.extend(f.func_fps.iter().copied());
                rec.overruns += f.overruns;
                for (name, us) in &f.solver_us {
                    *rec.solver_us.entry(name.to_string()).or_insert(0) += us;
                }
                // Deterministic notion of clean: wall-clock overruns
                // are advisory and must not perturb journaled counts.
                if f.violations.is_empty() && f.degraded.is_empty() {
                    rec.clean += 1;
                }
                if !f.degraded.is_empty() {
                    rec.degraded += 1;
                }
                if f.outcome() == JobOutcome::OverBudget {
                    rec.over_budget += 1;
                    rec.quarantine.push(QuarantineRecord {
                        seed,
                        outcome: JobOutcome::OverBudget.name().to_string(),
                        detail: f.degraded.first().cloned().unwrap_or_default(),
                        repro: src.clone(),
                        shrunk: false,
                    });
                }
                for v in f.violations {
                    rec.violations.push(CaseRecord {
                        seed,
                        kind: v.kind.to_string(),
                        solver: v.solver,
                        detail: v.detail,
                        source: src.clone(),
                        minimized: None,
                    });
                }
            }
            Err(msg) => {
                rec.crashed += 1;
                rec.quarantine.push(QuarantineRecord {
                    seed,
                    outcome: JobOutcome::Crashed.name().to_string(),
                    detail: msg,
                    repro: src,
                    shrunk: false,
                });
            }
        }
    }
    rec.diag_keys = diag_keys.into_iter().collect();
    rec.func_fps = func_fps.into_iter().collect();

    if cfg.fuzz.shrink {
        shrink_chunk(cfg, &mut rec);
    }
    rec.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    rec
}

/// Bounded minimization for a chunk's violations and quarantine
/// entries. Soundness violations get slots first (same ranking as the
/// plain fuzzer); quarantine entries shrink only when the failure
/// reproduces from source alone, so an injected test panic keeps its
/// full program instead of shrinking against a vacuous predicate.
fn shrink_chunk(cfg: &CampaignConfig, rec: &mut ChunkRecord) {
    let rank = |k: &str| match k {
        "soundness" => 0u8,
        "divergence" => 1,
        "incremental" => 2,
        "lattice" => 3,
        _ => 4,
    };
    let mut order: Vec<usize> = (0..rec.violations.len()).collect();
    order.sort_by_key(|&i| (rank(&rec.violations[i].kind), rec.violations[i].seed, i));
    for &vi in order.iter().take(MAX_SHRINKS_PER_CHUNK) {
        let v = &mut rec.violations[vi];
        let kind = v.kind.clone();
        let solver = v.solver.clone();
        let seed = v.seed;
        let pred = |s: &str| {
            catch_unwind(AssertUnwindSafe(|| fuzz::check_source(s, &cfg.fuzz, seed)))
                .map(|f| {
                    f.violations
                        .iter()
                        .any(|x| x.kind == kind && x.solver == solver)
                })
                .unwrap_or(false)
        };
        v.minimized = Some(shrink(&v.source, &pred));
    }
    let mut shrunk = 0usize;
    for q in rec.quarantine.iter_mut() {
        if shrunk >= MAX_SHRINKS_PER_CHUNK {
            break;
        }
        let seed = q.seed;
        let pred: Box<dyn Fn(&str) -> bool> = if q.outcome == JobOutcome::Crashed.name() {
            Box::new(move |s: &str| {
                catch_unwind(AssertUnwindSafe(|| {
                    fuzz::check_source(s, &cfg.fuzz, seed);
                }))
                .is_err()
            })
        } else {
            Box::new(move |s: &str| {
                catch_unwind(AssertUnwindSafe(|| fuzz::check_source(s, &cfg.fuzz, seed)))
                    .map(|f| f.budget_exhausted)
                    .unwrap_or(false)
            })
        };
        if pred(&q.repro) {
            q.repro = shrink(&q.repro, &*pred);
            q.shrunk = true;
            shrunk += 1;
        }
    }
}

/// Renders the panic payload carried out of `catch_unwind`.
fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Quarantine repro filename for one record.
fn quarantine_file(q: &QuarantineRecord) -> String {
    format!("seed-{}-{}.c", q.seed, q.outcome)
}

fn write_quarantine_files(qdir: &Path, records: &[QuarantineRecord]) -> Result<(), CampaignError> {
    for q in records {
        atomic_write(&qdir.join(quarantine_file(q)), q.repro.as_bytes())?;
    }
    Ok(())
}

/// Every knob that affects canonical per-chunk results. Wall-clock
/// knobs (`budget_ms`) and scheduling knobs (`threads`, `max_chunks`,
/// `progress`) are deliberately absent: changing them mid-campaign is
/// safe and must not invalidate the journal.
fn config_key(cfg: &CampaignConfig) -> String {
    format!(
        "v{JOURNAL_VERSION}|seeds={}|start={}|chunk={}|max_steps={}|interp_steps={}|shrink={}|corpus_stats={}|fault={:?}|planted={:?}|panic_seed={:?}|gen={:?}",
        cfg.seeds,
        cfg.start_seed,
        cfg.chunk,
        cfg.fuzz.max_steps,
        cfg.fuzz.interp_steps,
        cfg.fuzz.shrink,
        cfg.fuzz.corpus_stats,
        cfg.fuzz.fault,
        cfg.fuzz.planted,
        cfg.panic_seed,
        cfg.fuzz.gen,
    )
}

// ---------------------------------------------------------------------
// Journal persistence (the `serve::store` idiom: versioned checksummed
// header line + single-line JSON payload, atomic rename).
// ---------------------------------------------------------------------

fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CampaignError> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| CampaignError::Io(format!("{}: {e}", path.display()));
    {
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    fs::rename(&tmp, path).map_err(io)
}

fn save_journal(path: &Path, journal: &Journal) -> Result<(), CampaignError> {
    let payload = journal_to_value(journal).render();
    let header = format!(
        "{JOURNAL_MAGIC} v{JOURNAL_VERSION} {}",
        fp_hex(alias::fingerprint::fnv64(payload.as_bytes()))
    );
    atomic_write(path, format!("{header}\n{payload}\n").as_bytes())
}

fn load_journal(path: &Path) -> JournalLoad {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return JournalLoad::Missing,
        Err(e) => return JournalLoad::Rejected(format!("unreadable: {e}")),
    };
    let Some((header, rest)) = text.split_once('\n') else {
        return JournalLoad::Rejected("missing header line".into());
    };
    let fields: Vec<&str> = header.split(' ').collect();
    if fields.len() != 3 || fields[0] != JOURNAL_MAGIC {
        return JournalLoad::Rejected("bad header".into());
    }
    if fields[1] != format!("v{JOURNAL_VERSION}") {
        return JournalLoad::Rejected(format!("version {} (want v{JOURNAL_VERSION})", fields[1]));
    }
    let Some(want) = parse_fp_hex(fields[2]) else {
        return JournalLoad::Rejected("bad checksum field".into());
    };
    let payload = rest.strip_suffix('\n').unwrap_or(rest);
    if alias::fingerprint::fnv64(payload.as_bytes()) != want {
        return JournalLoad::Rejected("checksum mismatch".into());
    }
    let value = match Value::parse(payload) {
        Ok(v) => v,
        Err(e) => return JournalLoad::Rejected(format!("payload: {e}")),
    };
    match journal_from_value(&value) {
        Some(j) => JournalLoad::Loaded(j),
        None => JournalLoad::Rejected("payload schema mismatch".into()),
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn vu(n: u64) -> Value {
    Value::Int(n as i64)
}

fn hex_arr(fps: &[u64]) -> Value {
    Value::Arr(fps.iter().map(|&f| Value::Str(fp_hex(f))).collect())
}

fn journal_to_value(j: &Journal) -> Value {
    obj(vec![
        ("config", Value::Str(j.config_key.clone())),
        (
            "chunks",
            Value::Arr(j.chunks.iter().map(chunk_to_value).collect()),
        ),
    ])
}

fn chunk_to_value(c: &ChunkRecord) -> Value {
    obj(vec![
        ("i", vu(c.index)),
        ("clean", vu(c.clean)),
        ("degraded", vu(c.degraded)),
        ("over_budget", vu(c.over_budget)),
        ("crashed", vu(c.crashed)),
        ("demand_q", vu(c.demand_queries)),
        ("demand_h", vu(c.demand_hits)),
        ("diag_total", vu(c.diag_total)),
        ("diag_keys", hex_arr(&c.diag_keys)),
        ("func_total", vu(c.func_total)),
        ("func_fps", hex_arr(&c.func_fps)),
        (
            "violations",
            Value::Arr(
                c.violations
                    .iter()
                    .map(|v| {
                        obj(vec![
                            ("seed", vu(v.seed)),
                            ("kind", Value::Str(v.kind.clone())),
                            ("solver", Value::Str(v.solver.clone())),
                            ("detail", Value::Str(v.detail.clone())),
                            ("source", Value::Str(v.source.clone())),
                            (
                                "minimized",
                                match &v.minimized {
                                    Some(m) => Value::Str(m.clone()),
                                    None => Value::Null,
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "quarantine",
            Value::Arr(
                c.quarantine
                    .iter()
                    .map(|q| {
                        obj(vec![
                            ("seed", vu(q.seed)),
                            ("outcome", Value::Str(q.outcome.clone())),
                            ("detail", Value::Str(q.detail.clone())),
                            ("repro", Value::Str(q.repro.clone())),
                            ("shrunk", Value::Bool(q.shrunk)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("overruns", vu(c.overruns)),
        (
            "solver_us",
            Value::Obj(
                c.solver_us
                    .iter()
                    .map(|(k, v)| (k.clone(), vu(*v)))
                    .collect(),
            ),
        ),
        ("wall_ms", Value::Float(c.wall_ms)),
    ])
}

fn journal_from_value(v: &Value) -> Option<Journal> {
    let config_key = v.get("config")?.as_str()?.to_string();
    let mut chunks = Vec::new();
    for c in v.get("chunks")?.as_arr()? {
        chunks.push(chunk_from_value(c)?);
    }
    Some(Journal { config_key, chunks })
}

fn hex_list(v: &Value) -> Option<Vec<u64>> {
    v.as_arr()?
        .iter()
        .map(|x| x.as_str().and_then(parse_fp_hex))
        .collect()
}

fn chunk_from_value(v: &Value) -> Option<ChunkRecord> {
    let mut violations = Vec::new();
    for x in v.get("violations")?.as_arr()? {
        violations.push(CaseRecord {
            seed: x.get("seed")?.as_u64()?,
            kind: x.get("kind")?.as_str()?.to_string(),
            solver: x.get("solver")?.as_str()?.to_string(),
            detail: x.get("detail")?.as_str()?.to_string(),
            source: x.get("source")?.as_str()?.to_string(),
            minimized: match x.get("minimized")? {
                Value::Null => None,
                m => Some(m.as_str()?.to_string()),
            },
        });
    }
    let mut quarantine = Vec::new();
    for x in v.get("quarantine")?.as_arr()? {
        quarantine.push(QuarantineRecord {
            seed: x.get("seed")?.as_u64()?,
            outcome: x.get("outcome")?.as_str()?.to_string(),
            detail: x.get("detail")?.as_str()?.to_string(),
            repro: x.get("repro")?.as_str()?.to_string(),
            shrunk: x.get("shrunk")?.as_bool()?,
        });
    }
    let mut solver_us = BTreeMap::new();
    for (k, val) in v.get("solver_us")?.as_obj()? {
        solver_us.insert(k.clone(), val.as_u64()?);
    }
    Some(ChunkRecord {
        index: v.get("i")?.as_u64()?,
        clean: v.get("clean")?.as_u64()?,
        degraded: v.get("degraded")?.as_u64()?,
        over_budget: v.get("over_budget")?.as_u64()?,
        crashed: v.get("crashed")?.as_u64()?,
        demand_queries: v.get("demand_q")?.as_u64()?,
        demand_hits: v.get("demand_h")?.as_u64()?,
        diag_total: v.get("diag_total")?.as_u64()?,
        diag_keys: hex_list(v.get("diag_keys")?)?,
        func_total: v.get("func_total")?.as_u64()?,
        func_fps: hex_list(v.get("func_fps")?)?,
        violations,
        quarantine,
        overruns: v.get("overruns")?.as_u64()?,
        solver_us,
        wall_ms: match v.get("wall_ms")? {
            Value::Float(f) => *f,
            Value::Int(i) => *i as f64,
            _ => return None,
        },
    })
}

// ---------------------------------------------------------------------
// Report assembly and rendering.
// ---------------------------------------------------------------------

fn build_report(cfg: &CampaignConfig, journal: &Journal) -> CampaignReport {
    let mut r = CampaignReport {
        seeds: cfg.seeds,
        start_seed: cfg.start_seed,
        clean: 0,
        degraded: 0,
        over_budget: 0,
        crashed: 0,
        demand_queries: 0,
        demand_hits: 0,
        violations_total: 0,
        by_property: PROPERTIES.iter().map(|p| (p.to_string(), 0)).collect(),
        cases: Vec::new(),
        quarantine: Vec::new(),
        diag_total: 0,
        diag_unique: 0,
        func_total: 0,
        func_unique: 0,
        dedup_ratio: String::new(),
    };
    let mut diag_keys = BTreeSet::new();
    let mut func_fps = BTreeSet::new();
    let mut cases: BTreeMap<u64, CampaignCase> = BTreeMap::new();
    for c in &journal.chunks {
        r.clean += c.clean;
        r.degraded += c.degraded;
        r.over_budget += c.over_budget;
        r.crashed += c.crashed;
        r.demand_queries += c.demand_queries;
        r.demand_hits += c.demand_hits;
        r.diag_total += c.diag_total;
        r.func_total += c.func_total;
        diag_keys.extend(c.diag_keys.iter().copied());
        func_fps.extend(c.func_fps.iter().copied());
        for v in &c.violations {
            r.violations_total += 1;
            if let Some(slot) = r.by_property.iter_mut().find(|(p, _)| *p == v.kind) {
                slot.1 += 1;
            }
            // The issue's dedup keying: property + solver + *shrunk*
            // counterexample (full source for unshrunk overflow).
            let repro = v.minimized.as_deref().unwrap_or(&v.source);
            let fp = fnv64_parts(&[v.kind.as_bytes(), v.solver.as_bytes(), repro.as_bytes()]);
            let case = cases.entry(fp).or_insert_with(|| CampaignCase {
                fingerprint: fp_hex(fp),
                kind: v.kind.clone(),
                solver: v.solver.clone(),
                count: 0,
                seeds: Vec::new(),
                detail: v.detail.clone(),
                minimized: None,
            });
            case.count += 1;
            case.seeds.push(v.seed);
            if case.minimized.is_none() {
                case.minimized = v.minimized.clone();
            }
        }
        for q in &c.quarantine {
            r.quarantine.push(QuarantineCase {
                seed: q.seed,
                outcome: q.outcome.clone(),
                detail: q.detail.clone(),
                shrunk: q.shrunk,
                file: quarantine_file(q),
            });
        }
    }
    r.diag_unique = diag_keys.len() as u64;
    r.func_unique = func_fps.len() as u64;
    let mut cases: Vec<CampaignCase> = cases.into_values().collect();
    cases.sort_by(|a, b| {
        (&a.kind, &a.solver, &a.fingerprint).cmp(&(&b.kind, &b.solver, &b.fingerprint))
    });
    r.cases = cases;
    r.quarantine.sort_by_key(|q| q.seed);
    let raw = r.diag_total + r.func_total + r.violations_total;
    let unique = r.diag_unique + r.func_unique + r.cases.len() as u64;
    r.dedup_ratio = if unique == 0 {
        "1.00".to_string()
    } else {
        format!("{:.2}", raw as f64 / unique as f64)
    };
    r
}

impl CampaignReport {
    /// Canonical JSON rendering: deterministic, grep-friendly (CI
    /// asserts on `"soundness": 0` and `"quarantined": 0`), and free of
    /// wall-clock data so kill/resume runs stay byte-identical.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seeds\": {},\n", self.seeds));
        s.push_str(&format!("  \"start_seed\": {},\n", self.start_seed));
        s.push_str(&format!("  \"clean\": {},\n", self.clean));
        s.push_str(&format!("  \"degraded\": {},\n", self.degraded));
        s.push_str(&format!("  \"over_budget\": {},\n", self.over_budget));
        s.push_str(&format!("  \"crashed\": {},\n", self.crashed));
        s.push_str(&format!("  \"quarantined\": {},\n", self.quarantine.len()));
        s.push_str(&format!("  \"demand_queries\": {},\n", self.demand_queries));
        s.push_str(&format!("  \"demand_hits\": {},\n", self.demand_hits));
        s.push_str(&format!(
            "  \"violations_total\": {},\n",
            self.violations_total
        ));
        s.push_str("  \"violations_by_property\": {\n");
        for (i, (prop, n)) in self.by_property.iter().enumerate() {
            let comma = if i + 1 < self.by_property.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!("    \"{prop}\": {n}{comma}\n"));
        }
        s.push_str("  },\n");
        s.push_str("  \"cases\": [");
        for (i, c) in self.cases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"fingerprint\": \"{}\", ", c.fingerprint));
            s.push_str(&format!("\"kind\": \"{}\", ", esc(&c.kind)));
            s.push_str(&format!("\"solver\": \"{}\", ", esc(&c.solver)));
            s.push_str(&format!("\"count\": {}, ", c.count));
            s.push_str(&format!(
                "\"seeds\": [{}], ",
                c.seeds
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            s.push_str(&format!("\"detail\": \"{}\", ", esc(&c.detail)));
            match &c.minimized {
                Some(m) => s.push_str(&format!("\"minimized\": \"{}\"", esc(m))),
                None => s.push_str("\"minimized\": null"),
            }
            s.push('}');
        }
        if !self.cases.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"quarantine\": [");
        for (i, q) in self.quarantine.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"seed\": {}, ", q.seed));
            s.push_str(&format!("\"outcome\": \"{}\", ", esc(&q.outcome)));
            s.push_str(&format!("\"detail\": \"{}\", ", esc(&q.detail)));
            s.push_str(&format!("\"shrunk\": {}, ", q.shrunk));
            s.push_str(&format!("\"file\": \"{}\"", esc(&q.file)));
            s.push('}');
        }
        if !self.quarantine.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"dedup\": {\n");
        s.push_str(&format!(
            "    \"diagnostics\": {{\"raw\": {}, \"unique\": {}}},\n",
            self.diag_total, self.diag_unique
        ));
        s.push_str(&format!(
            "    \"functions\": {{\"raw\": {}, \"unique\": {}}},\n",
            self.func_total, self.func_unique
        ));
        s.push_str(&format!("    \"violation_cases\": {},\n", self.cases.len()));
        s.push_str(&format!("    \"ratio\": \"{}\"\n", self.dedup_ratio));
        s.push_str("  },\n");
        s.push_str(&format!("  \"dedup_ratio\": \"{}\"\n", self.dedup_ratio));
        s.push_str("}\n");
        s
    }
}

/// JSON string escaping (shared shape with `fuzz::esc`, local to keep
/// the modules independent).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_roundtrips_through_value() {
        let j = Journal {
            config_key: "v1|test".into(),
            chunks: vec![ChunkRecord {
                index: 0,
                clean: 3,
                degraded: 1,
                over_budget: 1,
                crashed: 1,
                demand_queries: 40,
                demand_hits: 39,
                diag_total: 12,
                diag_keys: vec![1, u64::MAX],
                func_total: 7,
                func_fps: vec![42],
                violations: vec![CaseRecord {
                    seed: 5,
                    kind: "soundness".into(),
                    solver: "ci".into(),
                    detail: "d \"quoted\"\nnewline".into(),
                    source: "int main(void) { return 0; }".into(),
                    minimized: None,
                }],
                quarantine: vec![QuarantineRecord {
                    seed: 6,
                    outcome: "crashed".into(),
                    detail: "boom".into(),
                    repro: "int main(void) { return 1; }".into(),
                    shrunk: true,
                }],
                overruns: 2,
                solver_us: [("ci".to_string(), 123u64)].into_iter().collect(),
                wall_ms: 0.0,
            }],
        };
        let v = journal_to_value(&j);
        let parsed = Value::parse(&v.render()).expect("journal json parses");
        let back = journal_from_value(&parsed).expect("journal schema roundtrips");
        assert_eq!(back.config_key, j.config_key);
        assert_eq!(back.chunks.len(), 1);
        let (a, b) = (&back.chunks[0], &j.chunks[0]);
        assert_eq!(a.diag_keys, b.diag_keys);
        assert_eq!(a.violations[0].detail, b.violations[0].detail);
        assert_eq!(a.quarantine[0].shrunk, b.quarantine[0].shrunk);
        assert_eq!(a.solver_us, b.solver_us);
    }

    #[test]
    fn hostile_journal_bytes_are_rejected_not_panicking() {
        let dir = std::env::temp_dir().join(format!("ruf95-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ruf95");
        for bytes in [
            &b""[..],
            b"garbage",
            b"ruf95-campaign v1 nothex\n{}",
            b"ruf95-campaign v9 0000000000000000\n{}",
            b"ruf95-campaign v1 0000000000000000\n{\"config\":\"x\",\"chunks\":[]}",
            b"ruf95-campaign v1 0000000000000000\nnot json",
        ] {
            fs::write(&path, bytes).unwrap();
            assert!(matches!(load_journal(&path), JournalLoad::Rejected(_)));
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
