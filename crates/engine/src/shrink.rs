//! Greedy delta-debugging minimizer for fuzz counterexamples.
//!
//! Given a failing program and a predicate that re-checks the failure,
//! repeatedly removes program pieces — whole functions, function
//! parameters (with their arguments at every direct call site), global
//! declarations, individual statements (recursing into nested blocks),
//! control-flow wrappers (an `if` or loop collapses to its body),
//! assignment targets (`x = e` becomes `e`), and finally raw source
//! lines — keeping each removal only when the shrunk program still
//! compiles *and* still fails. The passes loop to
//! a fixpoint, so a removal that unlocks further removals (a function
//! whose last caller just disappeared, a global whose last use was in a
//! dropped statement) is picked up on the next round.
//!
//! The structural passes parse with [`cfront::parser`] alone (no
//! semantic analysis), mutate the AST, and re-render through
//! [`cfront::pretty`] — the same round-trip the fuzzer's generated
//! cases already satisfy — so every intermediate candidate is a
//! standalone `.c` repro. The final line pass catches what the AST
//! passes cannot express (dropping a record field, a declarator).

use cfront::ast::{Block, ExprId, ExprKind, Program, Stmt};

/// Upper bound on predicate evaluations per [`shrink`] call: delta
/// debugging is worst-case quadratic in program size, and the predicate
/// re-runs solvers and the interpreter.
const MAX_CANDIDATES: usize = 2_000;

/// Minimizes `source` while `still_fails` keeps holding.
///
/// `still_fails` receives a candidate source text that is already known
/// to compile; it should re-run whatever check originally failed and
/// report whether the candidate still exhibits the failure. The
/// returned program is the smallest accepted candidate (at worst,
/// `source` itself).
pub fn shrink(source: &str, still_fails: &dyn Fn(&str) -> bool) -> String {
    let mut best = source.to_string();
    let mut budget = MAX_CANDIDATES;
    loop {
        let before = budget;
        let mut progressed = false;
        progressed |= drop_funcs(&mut best, still_fails, &mut budget);
        progressed |= drop_params(&mut best, still_fails, &mut budget);
        progressed |= drop_globals(&mut best, still_fails, &mut budget);
        progressed |= drop_stmts(&mut best, still_fails, &mut budget);
        progressed |= unwrap_blocks(&mut best, still_fails, &mut budget);
        progressed |= strip_assigns(&mut best, still_fails, &mut budget);
        progressed |= drop_lines(&mut best, still_fails, &mut budget);
        if !progressed || budget == 0 || budget == before {
            break;
        }
    }
    best
}

/// Parses without semantic analysis, as the pretty-printer round-trip
/// tests do; shrink candidates need not be semantically valid until
/// they are re-checked.
fn parse(src: &str) -> Option<Program> {
    cfront::parser::parse(cfront::lexer::lex(src).ok()?).ok()
}

/// Renders a candidate and accepts it into `best` when it compiles and
/// still fails. Every call costs one unit of `budget`.
fn accept(
    candidate: &Program,
    best: &mut String,
    still_fails: &dyn Fn(&str) -> bool,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let text = cfront::pretty::print_program(candidate);
    if cfront::compile(&text).is_ok() && still_fails(&text) {
        *best = text;
        true
    } else {
        false
    }
}

/// One pass of whole-function removal (never `main`), restarting after
/// every success so indices stay valid.
fn drop_funcs(best: &mut String, still_fails: &dyn Fn(&str) -> bool, budget: &mut usize) -> bool {
    let mut progressed = false;
    'retry: loop {
        let Some(prog) = parse(best) else {
            return progressed;
        };
        for i in 0..prog.funcs.len() {
            if prog.funcs[i].name == "main" {
                continue;
            }
            let mut c = prog.clone();
            c.funcs.remove(i);
            if accept(&c, best, still_fails, budget) {
                progressed = true;
                continue 'retry;
            }
            if *budget == 0 {
                return progressed;
            }
        }
        return progressed;
    }
}

/// One pass of parameter removal: drops a function's parameter together
/// with the matching argument at every direct call site (calls through
/// function pointers keep their arity and are caught by the compile
/// check, which rejects the then-mismatched assignment of the function
/// to the pointer). Removing an argument often strands the last use of
/// a local or global, which the later passes then collect.
fn drop_params(best: &mut String, still_fails: &dyn Fn(&str) -> bool, budget: &mut usize) -> bool {
    let mut progressed = false;
    'retry: loop {
        let Some(prog) = parse(best) else {
            return progressed;
        };
        for fi in 0..prog.funcs.len() {
            if prog.funcs[fi].name == "main" {
                continue;
            }
            for pi in 0..prog.funcs[fi].n_params {
                let mut c = prog.clone();
                if !remove_param(&mut c, fi, pi) {
                    continue;
                }
                if accept(&c, best, still_fails, budget) {
                    progressed = true;
                    continue 'retry;
                }
                if *budget == 0 {
                    return progressed;
                }
            }
        }
        return progressed;
    }
}

/// Removes parameter `pi` of function `fi` and argument `pi` of every
/// direct call to it. Returns `false` (program untouched) when some
/// direct call has too few arguments to edit.
fn remove_param(prog: &mut Program, fi: usize, pi: usize) -> bool {
    let fname = prog.funcs[fi].name.clone();
    let mut calls = Vec::new();
    for i in 0..prog.exprs.len() {
        let id = ExprId(i as u32);
        if let ExprKind::Call { callee, args } = &prog.exprs.get(id).kind {
            if let ExprKind::Ident { name, .. } = &prog.exprs.get(*callee).kind {
                if *name == fname {
                    if args.len() <= pi {
                        return false;
                    }
                    calls.push(id);
                }
            }
        }
    }
    for id in calls {
        if let ExprKind::Call { args, .. } = &mut prog.exprs.get_mut(id).kind {
            args.remove(pi);
        }
    }
    prog.funcs[fi].vars.remove(pi);
    prog.funcs[fi].n_params -= 1;
    true
}

/// One pass of global-declaration removal.
fn drop_globals(best: &mut String, still_fails: &dyn Fn(&str) -> bool, budget: &mut usize) -> bool {
    let mut progressed = false;
    'retry: loop {
        let Some(prog) = parse(best) else {
            return progressed;
        };
        for i in 0..prog.globals.len() {
            let mut c = prog.clone();
            c.globals.remove(i);
            if accept(&c, best, still_fails, budget) {
                progressed = true;
                continue 'retry;
            }
            if *budget == 0 {
                return progressed;
            }
        }
        return progressed;
    }
}

/// One pass of single-statement removal over every function body, in
/// depth-first source order.
fn drop_stmts(best: &mut String, still_fails: &dyn Fn(&str) -> bool, budget: &mut usize) -> bool {
    let mut progressed = false;
    'retry: loop {
        let Some(prog) = parse(best) else {
            return progressed;
        };
        for fi in 0..prog.funcs.len() {
            let total = match &prog.funcs[fi].body {
                Some(b) => count_stmts(b),
                None => 0,
            };
            for k in 0..total {
                let mut c = prog.clone();
                let body = c.funcs[fi].body.as_mut().expect("counted body");
                let mut n = k;
                if !remove_nth(body, &mut n) {
                    continue;
                }
                if accept(&c, best, still_fails, budget) {
                    progressed = true;
                    continue 'retry;
                }
                if *budget == 0 {
                    return progressed;
                }
            }
        }
        return progressed;
    }
}

/// Counts statements in depth-first source order, nested blocks
/// included.
fn count_stmts(block: &Block) -> usize {
    let mut n = 0;
    for s in &block.stmts {
        n += 1;
        match s {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                n += count_stmts(then_blk);
                if let Some(e) = else_blk {
                    n += count_stmts(e);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                n += count_stmts(body);
            }
            Stmt::Switch { cases, default, .. } => {
                for c in cases {
                    n += count_stmts(&c.body);
                }
                if let Some(d) = default {
                    n += count_stmts(d);
                }
            }
            Stmt::Block(b) => n += count_stmts(b),
            _ => {}
        }
    }
    n
}

/// Removes the `n`-th statement in the [`count_stmts`] order. On return
/// `true` the statement (with any nested children) is gone.
fn remove_nth(block: &mut Block, n: &mut usize) -> bool {
    let mut i = 0;
    while i < block.stmts.len() {
        if *n == 0 {
            block.stmts.remove(i);
            return true;
        }
        *n -= 1;
        let hit = match &mut block.stmts[i] {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                remove_nth(then_blk, n)
                    || match else_blk {
                        Some(e) => remove_nth(e, n),
                        None => false,
                    }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                remove_nth(body, n)
            }
            Stmt::Switch { cases, default, .. } => {
                let mut hit = false;
                for c in cases.iter_mut() {
                    if remove_nth(&mut c.body, n) {
                        hit = true;
                        break;
                    }
                }
                if !hit {
                    if let Some(d) = default {
                        hit = remove_nth(d, n);
                    }
                }
                hit
            }
            Stmt::Block(b) => remove_nth(b, n),
            _ => false,
        };
        if hit {
            return true;
        }
        i += 1;
    }
    false
}

/// One pass replacing control-flow wrappers with their bodies: `if`,
/// `while`, `do`/`while`, `for`, and bare blocks are flattened into the
/// enclosing statement list (an `if` contributes both branches). Where
/// statement removal cannot make progress — the guarded body is what
/// keeps the failure alive — unwrapping still sheds the wrapper's lines
/// and guard expression.
fn unwrap_blocks(
    best: &mut String,
    still_fails: &dyn Fn(&str) -> bool,
    budget: &mut usize,
) -> bool {
    let mut progressed = false;
    'retry: loop {
        let Some(prog) = parse(best) else {
            return progressed;
        };
        for fi in 0..prog.funcs.len() {
            let total = match &prog.funcs[fi].body {
                Some(b) => count_stmts(b),
                None => 0,
            };
            for k in 0..total {
                let mut c = prog.clone();
                let body = c.funcs[fi].body.as_mut().expect("counted body");
                let mut n = k;
                if !matches!(unwrap_nth(body, &mut n), UnwrapHit::Replaced) {
                    continue;
                }
                if accept(&c, best, still_fails, budget) {
                    progressed = true;
                    continue 'retry;
                }
                if *budget == 0 {
                    return progressed;
                }
            }
        }
        return progressed;
    }
}

/// Outcome of [`unwrap_nth`] at one statement position.
enum UnwrapHit {
    /// The wrapper was replaced by its body.
    Replaced,
    /// The position named a non-wrapper statement; nothing changed.
    NotWrapper,
    /// The position lies beyond this block.
    Miss,
}

/// Splices the body of the `n`-th statement (in [`count_stmts`] order)
/// into its place when that statement is a control-flow wrapper.
fn unwrap_nth(block: &mut Block, n: &mut usize) -> UnwrapHit {
    let mut i = 0;
    while i < block.stmts.len() {
        if *n == 0 {
            let inner: Vec<Stmt> = match &mut block.stmts[i] {
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    let mut v = std::mem::take(&mut then_blk.stmts);
                    if let Some(e) = else_blk {
                        v.append(&mut e.stmts);
                    }
                    v
                }
                Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                    std::mem::take(&mut body.stmts)
                }
                Stmt::Block(b) => std::mem::take(&mut b.stmts),
                _ => return UnwrapHit::NotWrapper,
            };
            block.stmts.splice(i..=i, inner);
            return UnwrapHit::Replaced;
        }
        *n -= 1;
        let hit = match &mut block.stmts[i] {
            Stmt::If {
                then_blk, else_blk, ..
            } => match unwrap_nth(then_blk, n) {
                UnwrapHit::Miss => match else_blk {
                    Some(e) => unwrap_nth(e, n),
                    None => UnwrapHit::Miss,
                },
                other => other,
            },
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                unwrap_nth(body, n)
            }
            Stmt::Switch { cases, default, .. } => {
                let mut hit = UnwrapHit::Miss;
                for c in cases.iter_mut() {
                    match unwrap_nth(&mut c.body, n) {
                        UnwrapHit::Miss => {}
                        other => {
                            hit = other;
                            break;
                        }
                    }
                }
                if matches!(hit, UnwrapHit::Miss) {
                    if let Some(d) = default {
                        hit = unwrap_nth(d, n);
                    }
                }
                hit
            }
            Stmt::Block(b) => unwrap_nth(b, n),
            _ => UnwrapHit::Miss,
        };
        match hit {
            UnwrapHit::Miss => {}
            other => return other,
        }
        i += 1;
    }
    UnwrapHit::Miss
}

/// One pass turning assignments into bare expression statements:
/// `x = call(...)` becomes `call(...)`. The side effect that sustains
/// the failure survives while the written variable loses a use, letting
/// the statement and line passes collect its declaration afterwards.
fn strip_assigns(
    best: &mut String,
    still_fails: &dyn Fn(&str) -> bool,
    budget: &mut usize,
) -> bool {
    let mut progressed = false;
    'retry: loop {
        let Some(prog) = parse(best) else {
            return progressed;
        };
        for fi in 0..prog.funcs.len() {
            let total = match &prog.funcs[fi].body {
                Some(b) => count_stmts(b),
                None => 0,
            };
            for k in 0..total {
                let mut c = prog.clone();
                let (funcs, exprs) = (&mut c.funcs, &c.exprs);
                let body = funcs[fi].body.as_mut().expect("counted body");
                let mut n = k;
                if !matches!(strip_assign_nth(body, &mut n, exprs), UnwrapHit::Replaced) {
                    continue;
                }
                if accept(&c, best, still_fails, budget) {
                    progressed = true;
                    continue 'retry;
                }
                if *budget == 0 {
                    return progressed;
                }
            }
        }
        return progressed;
    }
}

/// Replaces the `n`-th statement (in [`count_stmts`] order) with its
/// assignment's right-hand side when it is `Stmt::Expr(lhs = rhs)`.
fn strip_assign_nth(block: &mut Block, n: &mut usize, exprs: &cfront::ast::ExprArena) -> UnwrapHit {
    let mut i = 0;
    while i < block.stmts.len() {
        if *n == 0 {
            if let Stmt::Expr(id) = block.stmts[i] {
                if let ExprKind::Assign { rhs, .. } = &exprs.get(id).kind {
                    block.stmts[i] = Stmt::Expr(*rhs);
                    return UnwrapHit::Replaced;
                }
            }
            return UnwrapHit::NotWrapper;
        }
        *n -= 1;
        let hit = match &mut block.stmts[i] {
            Stmt::If {
                then_blk, else_blk, ..
            } => match strip_assign_nth(then_blk, n, exprs) {
                UnwrapHit::Miss => match else_blk {
                    Some(e) => strip_assign_nth(e, n, exprs),
                    None => UnwrapHit::Miss,
                },
                other => other,
            },
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                strip_assign_nth(body, n, exprs)
            }
            Stmt::Switch { cases, default, .. } => {
                let mut hit = UnwrapHit::Miss;
                for c in cases.iter_mut() {
                    match strip_assign_nth(&mut c.body, n, exprs) {
                        UnwrapHit::Miss => {}
                        other => {
                            hit = other;
                            break;
                        }
                    }
                }
                if matches!(hit, UnwrapHit::Miss) {
                    if let Some(d) = default {
                        hit = strip_assign_nth(d, n, exprs);
                    }
                }
                hit
            }
            Stmt::Block(b) => strip_assign_nth(b, n, exprs),
            _ => UnwrapHit::Miss,
        };
        match hit {
            UnwrapHit::Miss => {}
            other => return other,
        }
        i += 1;
    }
    UnwrapHit::Miss
}

/// Final textual pass: drop one raw line at a time. Reaches what the
/// AST passes cannot (record fields, lone declarators, stray braces
/// that the printer always re-emits).
fn drop_lines(best: &mut String, still_fails: &dyn Fn(&str) -> bool, budget: &mut usize) -> bool {
    let mut progressed = false;
    'retry: loop {
        let lines: Vec<String> = best.lines().map(str::to_string).collect();
        if lines.len() <= 1 {
            return progressed;
        }
        for i in 0..lines.len() {
            if *budget == 0 {
                return progressed;
            }
            *budget -= 1;
            let mut cand: Vec<&str> = lines.iter().map(String::as_str).collect();
            cand.remove(i);
            let text = cand.join("\n");
            if cfront::compile(&text).is_ok() && still_fails(&text) {
                *best = text;
                progressed = true;
                continue 'retry;
            }
        }
        return progressed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiles(src: &str) -> bool {
        cfront::compile(src).is_ok()
    }

    /// Each pass must (a) fire on a program built to trigger it and
    /// (b) hand back a candidate that still compiles and still
    /// satisfies the failure predicate — `accept` enforces (b), so the
    /// assertions here would catch a pass that bypasses it.

    #[test]
    fn drop_funcs_removes_an_uncalled_function() {
        let mut best =
            "int g;\nvoid junk(void) { g = 9; }\nint main(void) { g = 1; return g; }".to_string();
        let pred = |s: &str| s.contains("g = 1");
        let mut budget = 100;
        assert!(drop_funcs(&mut best, &pred, &mut budget));
        assert!(!best.contains("junk"));
        assert!(compiles(&best) && pred(&best));
    }

    #[test]
    fn drop_params_removes_a_dead_parameter_and_its_arguments() {
        let mut best = "int g;\nvoid f(int keep, int dead) { g = keep; }\n\
             int main(void) { f(1, 2); return 0; }"
            .to_string();
        let pred = |s: &str| s.contains("f(");
        let mut budget = 100;
        assert!(drop_params(&mut best, &pred, &mut budget));
        assert!(!best.contains("dead"));
        let f = parse(&best)
            .unwrap()
            .funcs
            .into_iter()
            .find(|f| f.name == "f")
            .unwrap();
        assert_eq!(
            f.n_params, 1,
            "argument lists must shrink with the parameter"
        );
        assert!(compiles(&best) && pred(&best));
    }

    #[test]
    fn drop_globals_removes_an_unreferenced_global() {
        let mut best =
            "int used;\nint lonely;\nint main(void) { used = 1; return used; }".to_string();
        let pred = |s: &str| s.contains("used = 1");
        let mut budget = 100;
        assert!(drop_globals(&mut best, &pred, &mut budget));
        assert!(!best.contains("lonely"));
        assert!(compiles(&best) && pred(&best));
    }

    #[test]
    fn drop_stmts_removes_a_statement_the_predicate_ignores() {
        let mut best = "int g1; int g2;\nint main(void) { g1 = 1; g2 = 2; return 0; }".to_string();
        let pred = |s: &str| s.contains("g1 = 1");
        let mut budget = 100;
        assert!(drop_stmts(&mut best, &pred, &mut budget));
        assert!(!best.contains("g2 = 2"));
        assert!(compiles(&best) && pred(&best));
    }

    #[test]
    fn unwrap_blocks_splices_a_guarded_body_into_place() {
        let mut best = "int g1;\nint main(void) { if (1) { g1 = 1; } return g1; }".to_string();
        let pred = |s: &str| s.contains("g1 = 1");
        let mut budget = 100;
        assert!(unwrap_blocks(&mut best, &pred, &mut budget));
        assert!(!best.contains("if"), "wrapper must be gone: {best}");
        assert!(compiles(&best) && pred(&best));
    }

    #[test]
    fn strip_assigns_keeps_the_call_but_drops_the_target() {
        let mut best = "int g; int *p;\nint *id(int *q) { return q; }\n\
             int main(void) { p = id(&g); return 0; }"
            .to_string();
        // The pretty-printer parenthesizes unary operands (`id(&(g))`),
        // so the marker must survive the round-trip.
        let pred = |s: &str| s.contains("id(&");
        let mut budget = 100;
        assert!(strip_assigns(&mut best, &pred, &mut budget));
        assert!(
            !best.contains("p = id"),
            "assignment target must be gone: {best}"
        );
        assert!(compiles(&best) && pred(&best));
    }

    #[test]
    fn drop_lines_reaches_what_the_ast_passes_cannot() {
        // A lone textual line whose removal keeps the program compiling.
        let mut best =
            "int keep;\nint lonely;\nint main(void) { keep = 1; return keep; }".to_string();
        let pred = |s: &str| s.contains("keep = 1");
        let mut budget = 100;
        assert!(drop_lines(&mut best, &pred, &mut budget));
        assert!(!best.contains("lonely"));
        assert!(compiles(&best) && pred(&best));
    }

    /// Every pass runs to its own internal fixpoint before returning
    /// (each restarts after a successful removal), so a second
    /// invocation on its own output must find nothing: no progress
    /// report, no text change, at most one predicate evaluation per
    /// rejected candidate. A pass that violated this would make
    /// [`shrink`]'s outer loop spin without converging.
    #[test]
    fn every_pass_is_idempotent_on_its_own_output() {
        type Pass = fn(&mut String, &dyn Fn(&str) -> bool, &mut usize) -> bool;
        let passes: [(&str, Pass); 7] = [
            ("drop_funcs", drop_funcs),
            ("drop_params", drop_params),
            ("drop_globals", drop_globals),
            ("drop_stmts", drop_stmts),
            ("unwrap_blocks", unwrap_blocks),
            ("strip_assigns", strip_assigns),
            ("drop_lines", drop_lines),
        ];
        // One composite program with removal opportunities for every
        // pass: an uncalled function, a dead parameter, an unused
        // global, an ignorable statement, a vacuous wrapper, and a
        // strippable assignment.
        let src = "int g; int lonely;\n\
             void junk(void) { lonely = 9; }\n\
             int *id(int *q, int dead) { return q; }\n\
             int main(void) { int *p; if (1) { p = id(&g, 2); } g = 1; junk(); return 0; }";
        let pred = |s: &str| s.contains("id(&");
        for (name, pass) in passes {
            let mut best = src.to_string();
            let mut budget = MAX_CANDIDATES;
            pass(&mut best, &pred, &mut budget);
            assert!(
                compiles(&best) && pred(&best),
                "{name} must preserve the invariant"
            );
            let after_first = best.clone();
            let mut budget = MAX_CANDIDATES;
            let progressed = pass(&mut best, &pred, &mut budget);
            assert!(!progressed, "{name} must be idempotent (reported progress)");
            assert_eq!(
                best, after_first,
                "{name} must be idempotent (changed text)"
            );
        }
    }

    /// [`shrink`] itself is idempotent: its output is a fixpoint of a
    /// second full run, so campaign dedup keys computed over minimized
    /// repros are stable.
    #[test]
    fn shrink_output_is_a_fixpoint_of_shrink() {
        let src = "int g; int noise;\n\
             void junk(void) { noise = 3; }\n\
             int *id(int *q) { return q; }\n\
             int main(void) { int *p; if (1) { p = id(&g); } junk(); return 0; }";
        let pred = |s: &str| cfront::compile(s).is_ok() && s.contains("id(&");
        let once = shrink(src, &pred);
        let twice = shrink(&once, &pred);
        assert_eq!(once, twice);
    }

    #[test]
    fn shrink_composes_the_passes_to_a_fixpoint() {
        let src = "int g; int noise;\n\
             void junk(void) { noise = 3; }\n\
             int *id(int *q) { return q; }\n\
             int main(void) { int *p; if (1) { p = id(&g); } junk(); return 0; }";
        // The \"failure\" is the id(&g) call surviving the round-trip.
        let pred = |s: &str| cfront::compile(s).is_ok() && s.contains("id(&");
        let out = shrink(src, &pred);
        assert!(pred(&out));
        assert!(!out.contains("junk") && !out.contains("noise"));
        assert!(out.len() < src.len());
    }
}
