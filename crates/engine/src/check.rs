//! Check mode: running the `checker` crate's six memory-safety checkers
//! over a finished engine run and attaching the oracle-labeled counts to
//! the report.
//!
//! Every solver solution a run produced is re-used as-is — checking is a
//! pure post-pass over [`crate::BenchOutput`], so the per-benchmark
//! `Program`/`Graph`/CI artifacts and all five solutions are shared with
//! the analysis stage. One oracle run per benchmark labels every
//! solver's diagnostics (the run is solver-independent ground truth).
//!
//! For incremental runs, [`CheckCache`] keys cached diagnostic rows by
//! the exact source text: a benchmark the edit did not touch replays its
//! rows verbatim, and only the dirty benchmarks re-run the checkers and
//! the oracle. Graph-level replay is *not* enough to reuse diagnostics —
//! a whitespace-only edit moves spans — so the cache is keyed strictly
//! by source hash.

use crate::report::CheckMetrics;
use crate::{BenchOutput, EngineRun};
use checker::harness::{oracle_races, oracle_run};
use checker::{label_with_races, refuted_fault, refuted_race, CheckKind, LabeledDiagnostic};
use std::collections::HashMap;

/// One benchmark's oracle-labeled diagnostics, one row per solver.
#[derive(Clone)]
pub struct BenchChecks {
    /// Benchmark name.
    pub name: String,
    /// Per-solver rows, in the run's solver order.
    pub rows: Vec<checker::PrecisionRow>,
}

impl BenchChecks {
    /// Whether any solver's row carries an oracle-refuted fault or an
    /// oracle-refuted (unpredicted) data race.
    pub fn any_refuted(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.refuted.is_some() || r.refuted_race.is_some())
    }
}

/// Source-keyed cache of check rows for incremental runs.
#[derive(Default)]
pub struct CheckCache {
    entries: HashMap<String, (u64, Vec<checker::PrecisionRow>)>,
    /// Benchmarks answered from cache by the last
    /// [`EngineRun::run_checks_cached`] call.
    pub replayed: usize,
}

fn check_bench(b: &BenchOutput) -> Vec<checker::PrecisionRow> {
    let rec = oracle_run(&b.program, &b.input);
    let obs = oracle_races(&b.program, &b.input);
    b.solutions
        .iter()
        .map(|s| {
            let (labeled, refuted, race): (Vec<LabeledDiagnostic>, _, _) =
                match s.solution.as_deref() {
                    Some(sol) => {
                        let diags = checker::run_checks(&b.graph, sol, &b.ci.callees);
                        let refuted = refuted_fault(&diags, &rec);
                        let race = obs.as_ref().and_then(|o| refuted_race(&diags, o));
                        (label_with_races(diags, &rec, obs.as_ref()), refuted, race)
                    }
                    // A failed solve (step-budget overflow) has no solution
                    // to check; the row stays empty rather than refuted.
                    None => (Vec::new(), None, None),
                };
            let counts = checker::CheckCounts::from_labeled(&labeled);
            checker::PrecisionRow {
                solver: s.analysis.clone(),
                labeled,
                refuted,
                refuted_race: race,
                counts,
            }
        })
        .collect()
}

fn metrics_of(row: &checker::PrecisionRow) -> CheckMetrics {
    CheckMetrics {
        diags: row.counts.by_kind,
        true_positives: row.counts.true_positives,
        false_positives: row.counts.false_positives,
        unreachable: row.counts.unreachable,
        refuted: row.refuted.is_some(),
    }
}

impl EngineRun {
    /// Runs every checker under every solved solution of every
    /// benchmark, labels the diagnostics against one oracle run per
    /// benchmark, attaches [`CheckMetrics`] rows to the report, and
    /// returns the labeled diagnostics for rendering.
    pub fn run_checks(&mut self) -> Vec<BenchChecks> {
        let mut cache = CheckCache::default();
        self.run_checks_cached(&mut cache)
    }

    /// Like [`EngineRun::run_checks`], but replays cached rows for
    /// benchmarks whose source text is unchanged since `cache` last saw
    /// them — the check-mode analogue of incremental solution replay.
    pub fn run_checks_cached(&mut self, cache: &mut CheckCache) -> Vec<BenchChecks> {
        cache.replayed = 0;
        let mut out = Vec::with_capacity(self.benches.len());
        for (bi, b) in self.benches.iter().enumerate() {
            let hash = alias::fingerprint::fnv64(b.source.as_bytes());
            let rows = match cache.entries.get(&b.name) {
                Some((h, rows)) if *h == hash => {
                    cache.replayed += 1;
                    rows.clone()
                }
                _ => {
                    let rows = check_bench(b);
                    cache.entries.insert(b.name.clone(), (hash, rows.clone()));
                    rows
                }
            };
            for row in &rows {
                if let Some(m) = self.report.benchmarks[bi]
                    .solvers
                    .iter_mut()
                    .find(|s| s.analysis == row.solver)
                {
                    m.checks = Some(metrics_of(row));
                }
            }
            out.push(BenchChecks {
                name: b.name.clone(),
                rows,
            });
        }
        out
    }
}

/// Renders one benchmark's diagnostics (under `analysis`) with source
/// carets and oracle labels, as `ruf95 check` prints them.
pub fn render_diagnostics(b: &BenchOutput, checks: &BenchChecks, analysis: &str) -> String {
    let file = cfront::SourceFile::new(&b.name, &b.source);
    let mut out = String::new();
    let all = analysis == "all";
    for row in &checks.rows {
        if !all && row.solver != analysis {
            continue;
        }
        if all && !row.labeled.is_empty() {
            out.push_str(&format!("---- {} ----\n", row.solver));
        }
        for l in &row.labeled {
            out.push_str(&l.diag.render(&file));
            out.push_str(&format!("\n  oracle: {}\n", l.label.name()));
        }
        if let Some(f) = &row.refuted {
            out.push_str(&format!(
                "!! refuted: runtime fault {:?} at an unflagged site ({})\n",
                f.kind, f.message
            ));
        }
        if let Some((a, b)) = &row.refuted_race {
            out.push_str(&format!(
                "!! refuted: observed data race between sites {} and {} that no diagnostic predicted\n",
                a.0, b.0
            ));
        }
    }
    out
}

/// JSON rendering of labeled diagnostics for `ruf95 check --json`:
/// an array of objects, one per diagnostic of the chosen solver — or of
/// every solver when `analysis` is `"all"` (each object names its
/// solver in `"analysis"`).
pub fn diagnostics_json(b: &BenchOutput, checks: &BenchChecks, analysis: &str) -> String {
    let file = cfront::SourceFile::new(&b.name, &b.source);
    let jstr = |s: &str| {
        format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        )
    };
    let items: Vec<String> = checks
        .rows
        .iter()
        .filter(|r| analysis == "all" || r.solver == analysis)
        .flat_map(|row| row.labeled.iter())
        .map(|l| {
            let lc = file.line_col(l.diag.span.start);
            format!(
                "{{\"kind\": {}, \"severity\": {}, \"analysis\": {}, \"line\": {}, \
                 \"col\": {}, \"message\": {}, \"label\": {}, \"witness\": [{}]}}",
                jstr(l.diag.kind.name()),
                jstr(l.diag.severity.label()),
                jstr(&l.diag.analysis),
                lc.line,
                lc.col,
                jstr(&l.diag.message),
                jstr(l.label.name()),
                l.diag
                    .witness
                    .iter()
                    .map(|w| jstr(w))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

/// Re-checks the false-positive monotonicity claim on finished rows:
/// along the spectrum suffix CS → CI → Weihl, a coarser solver may only
/// add false positives for the base-set-monotone checkers. Returns the
/// first violated pair, if any. Used by tests and the CI smoke step.
pub fn fp_monotone_violation(checks: &[BenchChecks]) -> Option<String> {
    // Coarse-to-fine chains provable from base-set inclusion. k=1 and
    // assumption-set CS are pointwise incomparable with each other but
    // both refine CI.
    const CHAINS: [(&str, &str); 4] = [
        ("weihl", "ci"),
        ("steensgaard", "ci"),
        ("ci", "cs"),
        ("ci", "k1"),
    ];
    for bc in checks {
        for (coarse, fine) in CHAINS {
            let (Some(c), Some(f)) = (
                bc.rows.iter().find(|r| r.solver == coarse),
                bc.rows.iter().find(|r| r.solver == fine),
            ) else {
                continue;
            };
            if c.counts.false_positives < f.counts.false_positives {
                return Some(format!(
                    "{}: {} has {} false positives but coarser {} has {}",
                    bc.name, fine, f.counts.false_positives, coarse, c.counts.false_positives
                ));
            }
            // Site-level inclusion for the monotone checkers: every
            // diagnostic the fine solver emits, the coarse one emits.
            let monotone = [
                CheckKind::UseAfterFree,
                CheckKind::DoubleFree,
                CheckKind::DanglingLocal,
                // The race checker intersects referent sets over a
                // solver-independent MHP relation, so a pair the fine
                // solver flags, any coarser solver flags too.
                CheckKind::DataRace,
            ];
            let sites = |row: &checker::PrecisionRow| -> Vec<(u32, CheckKind)> {
                row.labeled
                    .iter()
                    .filter(|l| monotone.contains(&l.diag.kind))
                    .map(|l| (l.diag.span.start, l.diag.kind))
                    .collect()
            };
            let cs = sites(c);
            for s in sites(f) {
                if !cs.contains(&s) {
                    return Some(format!(
                        "{}: {fine} flags {s:?} but coarser {coarse} does not",
                        bc.name
                    ));
                }
            }
        }
    }
    None
}

/// Total oracle-labeled counts across one solver's rows (or across all
/// five when `analysis` is `"all"`), for summary lines:
/// `(diagnostics, true positives, false positives, unreachable)`.
pub fn totals_for(checks: &[BenchChecks], analysis: &str) -> (usize, usize, usize, usize) {
    let mut t = (0, 0, 0, 0);
    for bc in checks {
        for r in bc
            .rows
            .iter()
            .filter(|r| analysis == "all" || r.solver == analysis)
        {
            t.0 += r.counts.total();
            t.1 += r.counts.true_positives;
            t.2 += r.counts.false_positives;
            t.3 += r.counts.unreachable;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Job};
    use checker::Label;

    #[test]
    fn check_rows_attach_to_report_and_replay_from_cache() {
        let e = Engine::new().threads(2);
        let mut run = e.run(&Job::named(&["span"])).unwrap();
        let mut cache = CheckCache::default();
        let checks = run.run_checks_cached(&mut cache);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].rows.len(), 5);
        assert_eq!(cache.replayed, 0);
        assert!(
            !checks[0].any_refuted(),
            "span must have no oracle-refuted diagnostics"
        );
        for s in &run.report.benchmarks[0].solvers {
            let m = s.checks.as_ref().expect("checks attached");
            assert!(!m.refuted);
        }
        assert!(run.report.to_json().contains("\"checks\": {\"diags\""));

        // Unchanged source: the second pass answers from cache.
        let mut run2 = e.run(&Job::named(&["span"])).unwrap();
        let again = run2.run_checks_cached(&mut cache);
        assert_eq!(cache.replayed, 1);
        assert_eq!(again[0].rows[0].counts, checks[0].rows[0].counts);
    }

    #[test]
    fn labels_partition_diagnostics() {
        let mut run = Engine::new()
            .threads(1)
            .run(&Job::named(&["anagram"]))
            .unwrap();
        for bc in run.run_checks() {
            for row in &bc.rows {
                let by_label = |l: Label| row.labeled.iter().filter(|d| d.label == l).count();
                assert_eq!(
                    row.counts.total(),
                    by_label(Label::TruePositive)
                        + by_label(Label::FalsePositive)
                        + by_label(Label::Unreachable)
                );
            }
        }
    }
}
