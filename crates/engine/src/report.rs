//! Structured per-stage metrics for an engine run, serializable to JSON.
//!
//! The JSON schema (documented in `DESIGN.md` §"The engine") is stable
//! and hand-rolled — the workspace is dependency-free by design, and the
//! report is flat enough that a serializer library would be the only
//! reason to stop being so. All durations are reported twice: as
//! `*_ns` integer nanoseconds (exact) and implicitly via the
//! benchmark's stage order. A *fingerprint* is the rendering of the
//! [`EngineReport::canonical`] form of the report — the same document
//! with every fingerprint-exempt field scrubbed — so two runs can be
//! compared for semantic equality regardless of scheduling, thread
//! count, propagation discipline, cache state, or serving transport.
//! `canonical` is the **single authority** on which fields are exempt;
//! any new work-description field (daemon latency, cache-hit counters,
//! …) must be scrubbed there, and nowhere else, or it would silently
//! perturb fingerprints.

use std::time::Duration;

/// Metrics for one solver on one benchmark.
#[derive(Debug, Clone)]
pub struct SolverMetrics {
    /// [`alias::Solver::name`] of the producing solver.
    pub analysis: String,
    /// Wall-clock time of the solve call.
    pub wall: Duration,
    /// Total points-to pairs (`None` for the unification solver) — the
    /// solution-size / peak-pair metric.
    pub pairs: Option<usize>,
    /// Transfer-function applications (worklist iterations). A seeded
    /// resume reaches the same fixpoint in fewer applications than a
    /// from-scratch solve, so the fingerprint nulls it.
    pub flow_ins: Option<u64>,
    /// Meet operations (work-dependent like `flow_ins`; nulled in the
    /// fingerprint).
    pub flow_outs: Option<u64>,
    /// Emission attempts deduplicated by the committed sets
    /// (scheduling-dependent; nulled in the fingerprint).
    pub dedup_hits: Option<u64>,
    /// Batched delta deliveries consumed under difference propagation
    /// (`None` under naive propagation; nulled in the fingerprint).
    pub delta_batches: Option<u64>,
    /// Worklist deliveries saved by delta batching:
    /// `flow_ins − delta_batches` (nulled in the fingerprint).
    pub deliveries_saved: Option<u64>,
    /// How an incremental run obtained this solution (`"replayed"`,
    /// `"seeded(..)"`, `"fresh(..)"`); `None` for plain runs. Describes
    /// the work done, not the solution, so the fingerprint nulls it.
    pub mode: Option<String>,
    /// Failure (e.g. a step-budget overflow), if the solve failed.
    pub error: Option<String>,
    /// Checker diagnostics under this solution, attached by
    /// [`crate::EngineRun::run_checks`]; `None` when the run skipped
    /// checking. Solution-derived and deterministic, so the fingerprint
    /// keeps it.
    pub checks: Option<CheckMetrics>,
}

/// Oracle-labeled checker counts for one solver on one benchmark (the
/// `--check` rows of a report).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckMetrics {
    /// Diagnostics per checker, in `checker::CheckKind::all()` order:
    /// use-after-free, double-free, dangling-local, uninit-read,
    /// null-deref, dead-store, data-race.
    pub diags: [usize; 7],
    /// Oracle-confirmed diagnostics.
    pub true_positives: usize,
    /// Diagnostics whose site executed without the defect.
    pub false_positives: usize,
    /// Diagnostics at sites the oracle run never reached.
    pub unreachable: usize,
    /// A runtime fault no diagnostic predicted — a checker+solver
    /// soundness failure. Must stay `false`.
    pub refuted: bool,
}

impl CheckMetrics {
    fn to_json(&self) -> String {
        format!(
            "{{\"diags\": [{}], \"true_positives\": {}, \"false_positives\": {}, \
             \"unreachable\": {}, \"refuted\": {}}}",
            self.diags
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            self.true_positives,
            self.false_positives,
            self.unreachable,
            self.refuted
        )
    }
}

/// Cache-effectiveness counters of one incremental run.
#[derive(Debug, Clone, Default)]
pub struct IncrementalStats {
    /// Benchmarks answered entirely from cache (source or graph
    /// fingerprint match).
    pub benches_replayed: usize,
    /// Benchmarks re-solved from a seeded dirty cone.
    pub benches_seeded: usize,
    /// Benchmarks solved from scratch.
    pub benches_fresh: usize,
    /// Function summaries reused across all benchmarks.
    pub funcs_reused: usize,
    /// Functions re-fingerprinted as dirty across all benchmarks.
    pub funcs_dirty: usize,
    /// Individual solver solutions replayed from cache.
    pub solutions_replayed: usize,
    /// Individual solver solutions obtained by a seeded resume
    /// (`reseeded(..)` or `seeded(..)` modes), across all solvers.
    pub solutions_resumed: usize,
}

/// Per-benchmark stage timings, sizes, and solver metrics.
#[derive(Debug, Clone)]
pub struct BenchmarkReport {
    /// Benchmark name.
    pub name: String,
    /// Non-blank source lines.
    pub lines: usize,
    /// VDG nodes after lowering.
    pub nodes: usize,
    /// VDG outputs.
    pub outputs: usize,
    /// Indirect memory operations (the §4.3 comparison sites).
    pub indirect_refs: usize,
    /// Lex + parse + sema wall time.
    pub frontend: Duration,
    /// VDG lowering wall time.
    pub lowering: Duration,
    /// One entry per solver, in the engine's solver order.
    pub solvers: Vec<SolverMetrics>,
}

/// Serving-side counters the `ruf95 serve` daemon attaches to reports
/// it returns over the wire: how fast the request was handled and how
/// much of it came from the session cache. Pure work description —
/// [`EngineReport::canonical`] scrubs the whole block.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Wall time the service spent handling the request, microseconds.
    pub latency_us: u64,
    /// Benchmarks replayed verbatim from the session cache.
    pub benches_replayed: usize,
    /// Individual solver solutions replayed from cache.
    pub solutions_replayed: usize,
    /// Whether the request warm-started its session from the disk
    /// store.
    pub restored: bool,
    /// Queries answered from the demand-solved region.
    pub demand_hits: u64,
    /// Queries answered from the exhaustive fallback solution.
    pub demand_fallbacks: u64,
    /// Demand queries that exhausted a slice or step budget.
    pub demand_budget_exhausted: u64,
    /// Microseconds the session has spent restoring from the disk
    /// store (initial load plus lazy per-bench decode), cumulative.
    pub restore_us: u64,
}

/// The full result of an engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Worker threads the run actually used.
    pub threads: usize,
    /// End-to-end wall time of the run, all stages included.
    pub total_wall: Duration,
    /// One entry per benchmark, in job order.
    pub benchmarks: Vec<BenchmarkReport>,
    /// Cache-effectiveness counters, for incremental runs only. Like
    /// the timings, these describe the work done rather than the
    /// solution, so the fingerprint nulls them.
    pub incremental: Option<IncrementalStats>,
    /// Serving counters, attached only by the `ruf95 serve` daemon.
    /// Work description like `incremental`; fingerprint-exempt.
    pub serve: Option<ServeStats>,
}

impl EngineReport {
    /// Serializes the report to a self-contained JSON document.
    pub fn to_json(&self) -> String {
        self.render()
    }

    /// The timing-free canonical form: identical across runs whenever
    /// the analysis *results* are identical, whatever the parallelism.
    pub fn fingerprint(&self) -> String {
        self.canonical().render()
    }

    /// Scrubs every fingerprint-exempt field — the one place in the
    /// workspace that decides what the fingerprint ignores. Exempt are
    /// the fields that describe the *work done* rather than the
    /// solution computed: timings and thread count, the fixpoint work
    /// counters (`flow_ins`, `flow_outs`) and delta-batch scheduling
    /// counters (`dedup_hits`, `delta_batches`, `deliveries_saved`) —
    /// a seeded resume reaches the same fixpoint with less work — the
    /// incremental `mode` strings and cache counters, and the daemon's
    /// [`ServeStats`]. Everything else — sizes, pair counts, checker
    /// diagnostics, errors — is solution-derived and must survive.
    ///
    /// Adding a field to the report? If it can differ between two runs
    /// that computed identical solutions, scrub it here, or restart
    /// replay and cross-run equivalence comparisons will break.
    pub fn canonical(&self) -> EngineReport {
        let mut r = self.clone();
        r.threads = 0;
        r.total_wall = Duration::ZERO;
        r.incremental = None;
        r.serve = None;
        for b in &mut r.benchmarks {
            b.frontend = Duration::ZERO;
            b.lowering = Duration::ZERO;
            for s in &mut b.solvers {
                s.wall = Duration::ZERO;
                s.flow_ins = None;
                s.flow_outs = None;
                s.dedup_hits = None;
                s.delta_batches = None;
                s.deliveries_saved = None;
                s.mode = None;
            }
        }
        r
    }

    /// Sum of one solver's wall time across all benchmarks.
    pub fn solver_wall(&self, analysis: &str) -> Duration {
        self.benchmarks
            .iter()
            .flat_map(|b| &b.solvers)
            .filter(|s| s.analysis == analysis)
            .map(|s| s.wall)
            .sum()
    }

    /// Renders exactly what the struct holds — no field is scrubbed
    /// here. Exemption decisions all live in [`EngineReport::canonical`].
    fn render(&self) -> String {
        let ns = |d: Duration| d.as_nanos();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let inc = match &self.incremental {
            Some(s) => format!(
                "{{\"benches_replayed\": {}, \"benches_seeded\": {}, \"benches_fresh\": {}, \
                 \"funcs_reused\": {}, \"funcs_dirty\": {}, \"solutions_replayed\": {}, \
                 \"solutions_resumed\": {}}}",
                s.benches_replayed,
                s.benches_seeded,
                s.benches_fresh,
                s.funcs_reused,
                s.funcs_dirty,
                s.solutions_replayed,
                s.solutions_resumed
            ),
            None => "null".into(),
        };
        let serve = match &self.serve {
            Some(s) => format!(
                "{{\"latency_us\": {}, \"benches_replayed\": {}, \
                 \"solutions_replayed\": {}, \"restored\": {}, \
                 \"demand_hits\": {}, \"demand_fallbacks\": {}, \
                 \"demand_budget_exhausted\": {}, \"restore_us\": {}}}",
                s.latency_us,
                s.benches_replayed,
                s.solutions_replayed,
                s.restored,
                s.demand_hits,
                s.demand_fallbacks,
                s.demand_budget_exhausted,
                s.restore_us
            ),
            None => "null".into(),
        };
        out.push_str(&format!(
            "  \"threads\": {},\n  \"total_wall_ns\": {},\n  \"incremental\": {},\n  \
             \"serve\": {},\n  \"benchmarks\": [\n",
            self.threads,
            ns(self.total_wall),
            inc,
            serve
        ));
        for (i, b) in self.benchmarks.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"lines\": {}, \"nodes\": {}, \"outputs\": {}, \
                 \"indirect_refs\": {}, \"frontend_ns\": {}, \"lowering_ns\": {}, \
                 \"solvers\": [\n",
                json_str(&b.name),
                b.lines,
                b.nodes,
                b.outputs,
                b.indirect_refs,
                ns(b.frontend),
                ns(b.lowering)
            ));
            for (j, s) in b.solvers.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"analysis\": {}, \"wall_ns\": {}, \"pairs\": {}, \
                     \"flow_ins\": {}, \"flow_outs\": {}, \"dedup_hits\": {}, \
                     \"delta_batches\": {}, \"deliveries_saved\": {}, \
                     \"mode\": {}, \"error\": {}, \"checks\": {}}}{}\n",
                    json_str(&s.analysis),
                    ns(s.wall),
                    json_opt(s.pairs.map(|v| v.to_string())),
                    json_opt(s.flow_ins.map(|v| v.to_string())),
                    json_opt(s.flow_outs.map(|v| v.to_string())),
                    json_opt(s.dedup_hits.map(|v| v.to_string())),
                    json_opt(s.delta_batches.map(|v| v.to_string())),
                    json_opt(s.deliveries_saved.map(|v| v.to_string())),
                    json_opt_str(s.mode.as_deref()),
                    json_opt_str(s.error.as_deref()),
                    json_opt(s.checks.as_ref().map(CheckMetrics::to_json)),
                    if j + 1 < b.solvers.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 < self.benchmarks.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(v: Option<String>) -> String {
    v.unwrap_or_else(|| "null".into())
}

fn json_opt_str(v: Option<&str>) -> String {
    v.map(json_str).unwrap_or_else(|| "null".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineReport {
        EngineReport {
            threads: 4,
            total_wall: Duration::from_millis(12),
            benchmarks: vec![BenchmarkReport {
                name: "span".into(),
                lines: 100,
                nodes: 500,
                outputs: 700,
                indirect_refs: 9,
                frontend: Duration::from_micros(80),
                lowering: Duration::from_micros(200),
                solvers: vec![
                    SolverMetrics {
                        analysis: "ci".into(),
                        wall: Duration::from_micros(300),
                        pairs: Some(1234),
                        flow_ins: Some(5000),
                        flow_outs: Some(800),
                        dedup_hits: Some(42),
                        delta_batches: Some(700),
                        deliveries_saved: Some(4300),
                        mode: Some("seeded(dirty=1/5)".into()),
                        error: None,
                        checks: Some(CheckMetrics {
                            diags: [1, 0, 2, 0, 0, 3, 1],
                            true_positives: 4,
                            false_positives: 1,
                            unreachable: 1,
                            refuted: false,
                        }),
                    },
                    SolverMetrics {
                        analysis: "steensgaard".into(),
                        wall: Duration::from_micros(40),
                        pairs: None,
                        flow_ins: None,
                        flow_outs: None,
                        dedup_hits: None,
                        delta_batches: None,
                        deliveries_saved: None,
                        mode: None,
                        error: None,
                        checks: None,
                    },
                ],
            }],
            incremental: Some(IncrementalStats {
                benches_seeded: 1,
                funcs_reused: 4,
                funcs_dirty: 1,
                ..IncrementalStats::default()
            }),
            serve: Some(ServeStats {
                latency_us: 740,
                benches_replayed: 1,
                solutions_replayed: 5,
                restored: true,
                demand_hits: 2,
                demand_fallbacks: 1,
                demand_budget_exhausted: 0,
                restore_us: 120,
            }),
        }
    }

    #[test]
    fn json_has_all_fields_and_nulls() {
        let j = sample().to_json();
        for needle in [
            "\"threads\": 4",
            "\"name\": \"span\"",
            "\"pairs\": 1234",
            "\"flow_ins\": null",
            "\"error\": null",
            "\"indirect_refs\": 9",
            "\"dedup_hits\": 42",
            "\"delta_batches\": 700",
            "\"deliveries_saved\": 4300",
            "\"mode\": \"seeded(dirty=1/5)\"",
            "\"funcs_reused\": 4",
            "\"serve\": {\"latency_us\": 740, \"benches_replayed\": 1, \
             \"solutions_replayed\": 5, \"restored\": true, \
             \"demand_hits\": 2, \"demand_fallbacks\": 1, \
             \"demand_budget_exhausted\": 0, \"restore_us\": 120}",
            "\"checks\": {\"diags\": [1, 0, 2, 0, 0, 3, 1], \"true_positives\": 4, \
             \"false_positives\": 1, \"unreachable\": 1, \"refuted\": false}",
            "\"checks\": null",
        ] {
            assert!(j.contains(needle), "missing {needle} in\n{j}");
        }
    }

    #[test]
    fn fingerprint_nulls_delta_batch_counters() {
        let mut a = sample();
        let mut b = sample();
        // Different propagation schedules: different dedup/batch stats,
        // different transfer-application counts...
        a.benchmarks[0].solvers[0].dedup_hits = Some(1);
        a.benchmarks[0].solvers[0].delta_batches = None;
        a.benchmarks[0].solvers[0].deliveries_saved = None;
        a.benchmarks[0].solvers[0].flow_ins = Some(7);
        b.benchmarks[0].solvers[0].dedup_hits = Some(9000);
        // ...same fingerprint, as long as the solutions agree.
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(!a.fingerprint().contains("\"dedup_hits\": 1"));
        // Work-description fields are nulled too: an incremental run and
        // a plain run that computed the same fixpoint must agree.
        assert!(a.fingerprint().contains("\"mode\": null"));
        assert!(a.fingerprint().contains("\"incremental\": null"));
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn fingerprint_scrubs_serve_stats() {
        let mut a = sample();
        let mut b = sample();
        a.serve = Some(ServeStats {
            latency_us: 3,
            ..ServeStats::default()
        });
        b.serve = None;
        // A warm daemon answer and a plain in-process run of the same
        // solutions must fingerprint identically.
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().contains("\"serve\": null"));
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn canonical_is_idempotent_and_authoritative() {
        let r = sample();
        let c = r.canonical();
        // Rendering the canonical form directly IS the fingerprint:
        // no second scrubbing pass hides an exemption elsewhere.
        assert_eq!(c.to_json(), r.fingerprint());
        assert_eq!(c.canonical().to_json(), r.fingerprint());
    }

    #[test]
    fn fingerprint_zeroes_every_timing() {
        let mut a = sample();
        let mut b = sample();
        a.threads = 1;
        a.total_wall = Duration::from_secs(9);
        a.benchmarks[0].frontend = Duration::from_secs(1);
        a.benchmarks[0].solvers[0].wall = Duration::from_secs(2);
        b.threads = 16;
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
