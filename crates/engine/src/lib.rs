//! # engine — the parallel analysis driver
//!
//! One engine invocation fans (benchmark × analysis) jobs across a
//! work-stealing thread pool, shares each benchmark's immutable
//! `Program`/`Graph`/CI solution behind `Arc`s so five solvers reuse a
//! single lowering, and records per-stage metrics into an
//! [`EngineReport`] that serializes to JSON.
//!
//! ```text
//!            stage 1: prepare (parallel over benchmarks)
//!   source ──lex/parse/sema──▶ Program ──lower──▶ Graph ──ci──▶ CiResult
//!                                  │                 │              │
//!                                  └── Arc ──────────┴── Arc ───────┘
//!            stage 2: solve (parallel over benchmark × solver jobs)
//!   (graph, ci) ──▶ weihl │ steensgaard │ k=1 │ cs   (dyn Solver)
//!                                  │
//!            EngineReport: frontend/lowering/solver wall times,
//!            worklist iterations, pair counts — table or JSON
//! ```
//!
//! The solvers themselves stay single-threaded, exactly as the paper's
//! algorithms are described; all parallelism is across independent jobs,
//! which is safe because every solver input is immutable after lowering.
//!
//! ## Quickstart
//!
//! ```
//! let run = engine::Engine::new()
//!     .threads(2)
//!     .run(&engine::Job::named(&["span"]))
//!     .unwrap();
//! assert_eq!(run.benches.len(), 1);
//! assert!(run.benches[0].cs().is_some());
//! println!("{}", run.report.to_json());
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod check;
pub mod compose;
pub mod fuzz;
pub mod incremental;
pub mod pool;
pub mod report;
pub mod shrink;
pub mod stats;

pub use campaign::{
    CampaignCase, CampaignConfig, CampaignError, CampaignOutcome, CampaignReport, QuarantineCase,
};
pub use check::{BenchChecks, CheckCache};
pub use fuzz::{FuzzConfig, FuzzReport, FuzzViolation, JobOutcome, PlantedFault};
pub use incremental::{FreshReason, SolveMode, SummaryCache};
pub use report::{
    BenchmarkReport, CheckMetrics, EngineReport, IncrementalStats, ServeStats, SolverMetrics,
};

use alias::ci::CiResult;
use alias::cs::CsResult;
use alias::solver::{Solution, SolutionBox, Solver, SolverSpec};
use alias::AnalysisError;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vdg::build::{lower, BuildOptions};
use vdg::graph::Graph;

/// One program for the engine to analyze.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display name (benchmark name or file path).
    pub name: String,
    /// mini-C source text.
    pub source: String,
    /// Bytes served to `getchar()` when the oracle interpreter runs the
    /// program (checker labeling); empty for programs that read no
    /// input.
    pub input: Vec<u8>,
}

impl Job {
    /// A job with no interpreter input.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Job {
        Job {
            name: name.into(),
            source: source.into(),
            input: Vec::new(),
        }
    }

    /// The full bundled benchmark suite, in Figure 2 order.
    pub fn suite() -> Vec<Job> {
        suite::benchmarks()
            .iter()
            .map(|b| Job {
                name: b.name.to_string(),
                source: b.source.to_string(),
                input: b.input.to_vec(),
            })
            .collect()
    }

    /// The threaded litmus benchmarks ([`suite::litmus`]): planted-race
    /// and race-free fixtures for the data-race checker.
    pub fn litmus() -> Vec<Job> {
        suite::litmus()
            .iter()
            .map(|b| Job {
                name: b.name.to_string(),
                source: b.source.to_string(),
                input: b.input.to_vec(),
            })
            .collect()
    }

    /// Selected bundled benchmarks, by name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark name.
    pub fn named(names: &[&str]) -> Vec<Job> {
        names
            .iter()
            .map(|n| {
                let b = suite::by_name(n).unwrap_or_else(|| panic!("unknown benchmark `{n}`"));
                Job {
                    name: b.name.to_string(),
                    source: b.source.to_string(),
                    input: b.input.to_vec(),
                }
            })
            .collect()
    }
}

/// The parallel driver. Configure with the builder methods, then call
/// [`Engine::run`] or [`Engine::run_suite`].
pub struct Engine {
    threads: usize,
    specs: Vec<SolverSpec>,
    solvers: Vec<Arc<dyn Solver>>,
    build: BuildOptions,
    ci: SolverSpec,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine over all five solvers with default options and
    /// auto-detected parallelism.
    pub fn new() -> Self {
        let specs = SolverSpec::all();
        Engine {
            threads: 0,
            solvers: specs.iter().map(|s| Arc::from(s.build())).collect(),
            specs,
            build: BuildOptions::default(),
            ci: SolverSpec::ci(),
        }
    }

    /// Sets the worker-thread count; `0` means one per available core.
    /// `1` is the exact serial baseline (no pool is spun up).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Replaces the solver list with solvers built from `specs` — the
    /// single configuration surface (see [`SolverSpec`]): no caller
    /// constructs a solver stage by hand. The shared CI solution is
    /// computed in the prepare stage regardless (it is the common
    /// vocabulary the other solvers key their path tables off), and a
    /// listed `"ci"` solver reports that run rather than re-solving.
    pub fn specs(mut self, specs: &[SolverSpec]) -> Self {
        self.solvers = specs.iter().map(|s| Arc::from(s.build())).collect();
        self.specs = specs.to_vec();
        self
    }

    /// Sets the VDG lowering options.
    pub fn build_options(mut self, build: BuildOptions) -> Self {
        self.build = build;
        self
    }

    /// Sets the spec of the shared prepare-stage CI run. Must agree
    /// with a configured CS solver's heap naming and strong updates (the
    /// defaults do).
    pub fn ci_spec(mut self, ci: SolverSpec) -> Self {
        self.ci = ci;
        self
    }

    /// The stable key over every configured solver spec (CI first).
    /// Cached facts are reusable only between engines that share it.
    pub(crate) fn spec_key(&self) -> String {
        let mut key = self.ci.key();
        for s in &self.specs {
            key.push('|');
            key.push_str(&s.key());
        }
        key
    }

    /// Runs the engine over the full bundled suite.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_suite(&self) -> Result<EngineRun, AnalysisError> {
        self.run(&Job::suite())
    }

    /// Runs the engine over `jobs`.
    ///
    /// Frontend or lowering failures abort the run (the input set is
    /// expected to be well-formed); a *solver* failure (step-budget
    /// overflow) is recorded in the report and the run continues.
    ///
    /// # Errors
    ///
    /// Returns the first frontend/lowering error, if any.
    pub fn run(&self, jobs: &[Job]) -> Result<EngineRun, AnalysisError> {
        let t_run = Instant::now();
        let threads = if self.threads == 0 {
            pool::auto_threads()
        } else {
            self.threads
        };

        // Stage 1 — prepare: one job per benchmark, each producing the
        // shared immutable inputs every solver of stage 2 reuses.
        let prepared: Vec<Result<Prepared, AnalysisError>> =
            pool::run_indexed(jobs.len(), threads, |i| self.prepare(&jobs[i]));
        let mut benches = Vec::with_capacity(jobs.len());
        for p in prepared {
            benches.push(p?);
        }

        // Stage 2 — solve: one job per (benchmark × non-CI solver),
        // claimed dynamically so a slow CS run does not serialize the
        // cheap baselines behind it.
        let solve_jobs: Vec<(usize, usize)> = benches
            .iter()
            .enumerate()
            .flat_map(|(bi, _)| {
                self.solvers
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.name() != "ci")
                    .map(move |(si, _)| (bi, si))
            })
            .collect();
        let solved: Vec<(usize, usize, Solved)> =
            pool::run_indexed(solve_jobs.len(), threads, |k| {
                let (bi, si) = solve_jobs[k];
                let b = &benches[bi];
                let s = &self.solvers[si];
                let t = Instant::now();
                let outcome = s.solve(&b.graph, Some(&b.ci));
                let wall = t.elapsed();
                let solved = match outcome {
                    Ok(solution) => Solved {
                        analysis: s.name().to_string(),
                        wall,
                        solution: Some(solution),
                        mode: None,
                        error: None,
                    },
                    Err(e) => Solved {
                        analysis: s.name().to_string(),
                        wall,
                        solution: None,
                        mode: None,
                        // Attach solver + benchmark so the report's
                        // one-liner is actionable on its own.
                        error: Some(e.in_context(s.name(), &b.name).to_string()),
                    },
                };
                (bi, si, solved)
            });

        // Assemble per-benchmark outputs in configured solver order.
        let mut outputs: Vec<BenchOutput> = benches
            .into_iter()
            .map(|p| BenchOutput {
                name: p.name,
                source: p.source,
                input: p.input,
                program: p.program,
                graph: p.graph,
                ci: p.ci,
                ci_wall: p.ci_wall,
                frontend: p.frontend,
                lowering: p.lowering,
                solutions: Vec::new(),
            })
            .collect();
        let mut slots: Vec<Vec<Option<Solved>>> = outputs
            .iter()
            .map(|_| self.solvers.iter().map(|_| None).collect())
            .collect();
        for (bi, si, s) in solved {
            slots[bi][si] = Some(s);
        }
        for (bi, row) in slots.into_iter().enumerate() {
            for (si, slot) in row.into_iter().enumerate() {
                if let Some(s) = slot {
                    outputs[bi].solutions.push(s);
                } else if self.solvers[si].name() == "ci" {
                    // The shared prepare-stage run doubles as the CI
                    // solver's product.
                    let b = &mut outputs[bi];
                    b.solutions.push(Solved {
                        analysis: "ci".to_string(),
                        wall: b.ci_wall,
                        solution: Some(Box::new(b.ci.as_ref().clone())),
                        mode: None,
                        error: None,
                    });
                }
            }
        }

        let report = EngineReport {
            threads,
            total_wall: t_run.elapsed(),
            benchmarks: outputs.iter().map(BenchOutput::report).collect(),
            incremental: None,
            serve: None,
        };
        Ok(EngineRun {
            report,
            benches: outputs,
        })
    }

    fn prepare(&self, job: &Job) -> Result<Prepared, AnalysisError> {
        let t0 = Instant::now();
        let program = cfront::compile(&job.source)?;
        let frontend = t0.elapsed();
        let t1 = Instant::now();
        let graph = lower(&program, &self.build)?;
        let lowering = t1.elapsed();
        let t2 = Instant::now();
        let ci = self
            .ci
            .solve(&graph, None)
            .expect("the CI solver has no step budget")
            .into_ci()
            .expect("the engine's ci spec must describe the CI analysis");
        let ci_wall = t2.elapsed();
        Ok(Prepared {
            name: job.name.clone(),
            source: job.source.clone(),
            input: job.input.clone(),
            program: Arc::new(program),
            graph: Arc::new(graph),
            ci: Arc::new(ci),
            ci_wall,
            frontend,
            lowering,
        })
    }
}

/// Stage-1 product for one benchmark.
struct Prepared {
    name: String,
    source: String,
    input: Vec<u8>,
    program: Arc<cfront::Program>,
    graph: Arc<Graph>,
    ci: Arc<CiResult>,
    ci_wall: Duration,
    frontend: Duration,
    lowering: Duration,
}

/// One solver's outcome on one benchmark.
pub struct Solved {
    /// The solver's [`Solver::name`].
    pub analysis: String,
    /// Wall-clock time of the solve call.
    pub wall: Duration,
    /// The solution, unless the solver failed.
    pub solution: Option<SolutionBox>,
    /// How an incremental run obtained the solution; `None` for plain
    /// runs.
    pub mode: Option<incremental::SolveMode>,
    /// The failure, if it did.
    pub error: Option<String>,
}

/// Everything the engine computed for one benchmark.
pub struct BenchOutput {
    /// Benchmark name.
    pub name: String,
    /// Source text.
    pub source: String,
    /// Interpreter input for oracle runs (checker labeling).
    pub input: Vec<u8>,
    /// The checked program (shared with all solver jobs).
    pub program: Arc<cfront::Program>,
    /// The lowered VDG (shared with all solver jobs).
    pub graph: Arc<Graph>,
    /// The prepare-stage CI solution (shared with all solver jobs).
    pub ci: Arc<CiResult>,
    /// Wall time of the shared CI run.
    pub ci_wall: Duration,
    /// Frontend (lex/parse/sema) wall time.
    pub frontend: Duration,
    /// Lowering wall time.
    pub lowering: Duration,
    /// Per-solver outcomes, in the engine's configured solver order.
    pub solutions: Vec<Solved>,
}

impl BenchOutput {
    /// The named solver's solution, if it ran and succeeded.
    pub fn solution(&self, analysis: &str) -> Option<&dyn Solution> {
        self.solutions
            .iter()
            .find(|s| s.analysis == analysis)
            .and_then(|s| s.solution.as_deref())
    }

    /// The named solver's wall time, if it ran.
    pub fn wall(&self, analysis: &str) -> Option<Duration> {
        self.solutions
            .iter()
            .find(|s| s.analysis == analysis)
            .map(|s| s.wall)
    }

    /// The concrete CS result, if a CS solver ran and stayed within
    /// budget.
    pub fn cs(&self) -> Option<&CsResult> {
        self.solution("cs").and_then(Solution::as_cs)
    }

    /// The per-benchmark metrics row this output contributes to an
    /// [`EngineReport`]. Public so the serving layer can assemble
    /// reports for restored sessions without re-running the engine.
    pub fn report(&self) -> BenchmarkReport {
        BenchmarkReport {
            name: self.name.clone(),
            lines: self.source.lines().filter(|l| !l.trim().is_empty()).count(),
            nodes: self.graph.node_count(),
            outputs: self.graph.output_count(),
            indirect_refs: self.graph.indirect_mem_ops().len(),
            frontend: self.frontend,
            lowering: self.lowering,
            solvers: self
                .solutions
                .iter()
                .map(|s| SolverMetrics {
                    analysis: s.analysis.clone(),
                    wall: s.wall,
                    pairs: s.solution.as_ref().and_then(|x| x.pairs()),
                    flow_ins: s.solution.as_ref().and_then(|x| x.flow_ins()),
                    flow_outs: s.solution.as_ref().and_then(|x| x.flow_outs()),
                    dedup_hits: s.solution.as_ref().and_then(|x| x.dedup_hits()),
                    delta_batches: s.solution.as_ref().and_then(|x| x.delta_batches()),
                    deliveries_saved: s.solution.as_ref().and_then(|x| x.deliveries_saved()),
                    mode: s.mode.as_ref().map(|m| m.render()),
                    error: s.error.clone(),
                    checks: None,
                })
                .collect(),
        }
    }
}

/// An [`Engine::run`] result: the metrics report plus the underlying
/// per-benchmark data for harnesses that post-process solutions.
pub struct EngineRun {
    /// Per-stage metrics, serializable with [`EngineReport::to_json`].
    pub report: EngineReport,
    /// Shared inputs and boxed solutions, one entry per job.
    pub benches: Vec<BenchOutput>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_benchmark_all_five_solvers() {
        let run = Engine::new()
            .threads(2)
            .run(&Job::named(&["span"]))
            .unwrap();
        assert_eq!(run.benches.len(), 1);
        let b = &run.benches[0];
        assert_eq!(b.solutions.len(), 5);
        let names: Vec<&str> = b.solutions.iter().map(|s| s.analysis.as_str()).collect();
        assert_eq!(names, ["weihl", "steensgaard", "ci", "k1", "cs"]);
        assert!(b.cs().is_some());
        assert_eq!(
            b.solution("ci").unwrap().pairs(),
            Some(b.ci.total_pairs()),
            "listed ci solver must report the shared prepare-stage run"
        );
        let rep = &run.report.benchmarks[0];
        assert_eq!(rep.name, "span");
        assert!(rep.nodes > 0 && rep.indirect_refs > 0);
        assert_eq!(rep.solvers.len(), 5);
        assert!(rep.solvers.iter().all(|s| s.error.is_none()));
    }

    #[test]
    fn frontend_errors_abort_the_run() {
        let jobs = vec![Job::new("bad", "int main(void) { return x; }")];
        assert!(matches!(
            Engine::new().run(&jobs),
            Err(AnalysisError::Frontend(_))
        ));
    }

    #[test]
    fn solver_budget_overflow_is_recorded_not_fatal() {
        let run = Engine::new()
            .specs(&[SolverSpec::k1().max_steps(1)])
            .run(&Job::named(&["span"]))
            .unwrap();
        let s = &run.benches[0].solutions[0];
        assert!(s.solution.is_none());
        assert!(s.error.is_some(), "overflow should be recorded");
        let msg = run.report.benchmarks[0].solvers[0]
            .error
            .clone()
            .expect("recorded");
        assert!(
            msg.contains("k1") && msg.contains("span"),
            "error should carry solver + benchmark context: {msg}"
        );
    }
}
