//! Differential fuzzing of the five solvers over generated programs.
//!
//! Per seed, a deterministic pointer-heavy mini-C program
//! ([`suite::generator`]) flows through the whole pipeline and three
//! differential properties are checked:
//!
//! 1. **Oracle soundness** — every runtime dereference observed by the
//!    interpreter must be predicted by every solver's solution
//!    ([`interp::check_solution_dyn`]).
//! 2. **Precision lattice** — coverage at indirect references must be
//!    monotone along the provable edges of the spectrum: CS ⊆ CI,
//!    k=1 ⊆ CI, CI ⊆ Weihl, and CI ⊆ Steensgaard
//!    ([`alias::Solution::covers`]). k=1 and assumption-set CS are
//!    pointwise incomparable and deliberately not ordered — see
//!    DESIGN.md §"Differential fuzzing".
//! 3. **Naive/Delta equality** — difference propagation is a pure
//!    optimization; re-solving CI, Weihl, and k=1 with naive
//!    propagation must reach the identical fixpoint.
//! 4. **Incremental equivalence** — after one random edit
//!    ([`suite::edit`]), re-analysis through
//!    [`crate::Engine::analyze_incremental`] must reach the identical
//!    CI solution as a from-scratch solve of the edited program.
//!
//! Solvers run under step budgets and a wall-clock budget with graceful
//! degradation: a `StepLimit` or an interpreter abort is *recorded*
//! (the seed counts as degraded, its remaining checks are skipped) and
//! never a crash. Any violating program is minimized by the greedy
//! delta-debugger in [`crate::shrink`] before landing in the
//! [`FuzzReport`], so every finding ships as a standalone `.c` repro.
//!
//! 5. **Planted checker defects** — with [`FuzzConfig::planted`] set, a
//!    self-contained memory-safety bug (dangling load, double free, or
//!    dead store) is appended to every generated program, and every
//!    solver's `checker::run_checks` sweep must flag its kind.
//!
//! For programs that spawn threads (the generator's
//! [`GenConfig::threaded`] preset, or any hand-written repro), two more
//! properties fire: **race soundness** — every racing pair the bounded
//! interleaving oracle ([`interp::explore_races`]) observes must be
//! covered by a data-race diagnostic under every solver — and **race
//! monotonicity** — data-race sites must shrink along the lattice edges
//! of property 2, so finer alias information can only remove race
//! reports, never add them.
//!
//! The additional [`FuzzConfig::fault`] knob deliberately injects a
//! known bug into the CI solver; the planted-bug self-test uses it to
//! prove the whole detect-and-minimize loop actually fires.
//! [`PlantedFault`] is the checker-level mirror of that knob.

use crate::pool;
use crate::shrink::shrink;
use alias::solver::{Solution, SolutionBox};
use alias::{AnalysisError, Fault, Propagation, SolverKind, SolverSpec};
use std::time::{Duration, Instant};
use suite::generator::{generate, GenConfig};
use vdg::build::{lower, BuildOptions};
use vdg::graph::{Graph, OutputId};

/// Fuzzing-campaign knobs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of seeds to run.
    pub seeds: u64,
    /// First seed (campaigns can be sharded by range).
    pub start_seed: u64,
    /// Per-solver wall-clock budget in milliseconds; exceeding it is
    /// recorded as an overrun (degraded-but-counted, never fatal).
    pub budget_ms: u64,
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Program-generator shape knobs.
    pub gen: GenConfig,
    /// Step budget for the potentially exponential solvers (CS, k=1).
    pub max_steps: u64,
    /// Interpreter step budget per seed.
    pub interp_steps: u64,
    /// Minimize violating programs before reporting.
    pub shrink: bool,
    /// Deliberate fault injected into the CI solver (planted-bug
    /// self-test); [`Fault::None`] for real campaigns.
    pub fault: Fault,
    /// Program-level memory-safety defect planted into every generated
    /// program; the campaign then requires each solver's checker run to
    /// flag it ([`PlantedFault::None`] for plain campaigns).
    pub planted: PlantedFault,
    /// Collect corpus-scale statistics per seed (checker-diagnostic
    /// dedup keys, per-function fingerprints) for the campaign runner's
    /// aggregation. Off for plain fuzzing — it adds a full checker
    /// sweep per seed.
    pub corpus_stats: bool,
}

/// Typed outcome of one differential job, for exact campaign accounting
/// and quarantine triage. Budget exhaustion is the *deterministic* kind
/// (a solver's step budget or the interpreter's step budget), never the
/// advisory wall-clock overrun counter, so outcome classification is
/// reproducible across runs and resumes. `Crashed` is assigned by the
/// campaign's `catch_unwind` wrapper — `check_source` itself treats a
/// panic as a bug, not an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every property ran to completion (violations may still exist).
    Completed,
    /// A step budget was exhausted; the affected checks were skipped.
    OverBudget,
    /// The job panicked and was isolated by the campaign runner.
    Crashed,
}

impl JobOutcome {
    /// Stable lowercase name, used in journals and quarantine files.
    pub fn name(self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::OverBudget => "over-budget",
            JobOutcome::Crashed => "crashed",
        }
    }
}

/// A program-level memory-safety defect the fuzzer plants into generated
/// programs. The checker-layer mirror of [`Fault::OverStrongUpdates`]:
/// where that variant proves the differential loop detects a *solver*
/// bug, a planted defect proves `checker::run_checks` flags a *program*
/// bug under every solver — a solver that misses it is reported as a
/// `"checker"` violation.
///
/// Plants are self-contained functions appended to the generated source
/// (nothing need call them: the checkers sweep every VDG node), so the
/// program's own behavior — and every other differential property — is
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlantedFault {
    /// No planted defect.
    #[default]
    None,
    /// A load through a pointer into a dead frame (a function returning
    /// `&local`). Expected flag: `dangling-local`.
    DanglingLoad,
    /// Two `free`s of one heap object through aliased pointers.
    /// Expected flag: `double-free`.
    DoubleFree,
    /// A store through a pointer that nothing ever reads. Expected
    /// flag: `dead-store`.
    DeadStore,
}

impl PlantedFault {
    /// The plantable defects (everything but `None`).
    pub fn all() -> [PlantedFault; 3] {
        [
            PlantedFault::DanglingLoad,
            PlantedFault::DoubleFree,
            PlantedFault::DeadStore,
        ]
    }

    /// The diagnostic kind every solver must emit for this plant.
    pub fn expected_kind(self) -> Option<checker::CheckKind> {
        match self {
            PlantedFault::None => None,
            PlantedFault::DanglingLoad => Some(checker::CheckKind::DanglingLocal),
            PlantedFault::DoubleFree => Some(checker::CheckKind::DoubleFree),
            PlantedFault::DeadStore => Some(checker::CheckKind::DeadStore),
        }
    }

    /// The defective function appended to a generated program.
    pub fn snippet(self) -> &'static str {
        match self {
            PlantedFault::None => "",
            PlantedFault::DanglingLoad => {
                "int *planted_dangling(void) {\n    int planted_x;\n    planted_x = 1;\n    return &planted_x;\n}\n"
            }
            PlantedFault::DoubleFree => {
                "void planted_double_free(void) {\n    int *planted_p;\n    int *planted_q;\n    planted_p = (int *) malloc(sizeof(int));\n    planted_q = planted_p;\n    free(planted_p);\n    free(planted_q);\n}\n"
            }
            PlantedFault::DeadStore => {
                "void planted_dead_store(void) {\n    int planted_x;\n    int *planted_p;\n    planted_p = &planted_x;\n    *planted_p = 42;\n}\n"
            }
        }
    }

    /// Appends the defective function to `src` (identity for `None`).
    pub fn plant(self, src: &str) -> String {
        match self {
            PlantedFault::None => src.to_string(),
            _ => format!("{src}\n{}", self.snippet()),
        }
    }
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seeds: 100,
            start_seed: 0,
            budget_ms: 200,
            threads: 0,
            gen: GenConfig::default(),
            max_steps: 2_000_000,
            interp_steps: 1_000_000,
            shrink: true,
            fault: Fault::None,
            planted: PlantedFault::None,
            corpus_stats: false,
        }
    }
}

/// One confirmed property violation, with its repro program.
#[derive(Debug, Clone)]
pub struct FuzzViolation {
    /// The generator seed that produced the program.
    pub seed: u64,
    /// Which property failed: `"soundness"`, `"lattice"`,
    /// `"divergence"`, `"incremental"`, `"checker"`, `"demand"`,
    /// `"roundtrip"`, or `"pipeline"`.
    pub kind: String,
    /// The solver (or solver pair) implicated.
    pub solver: String,
    /// Human-readable description of the mismatch.
    pub detail: String,
    /// The full generated source.
    pub source: String,
    /// The delta-debugged minimal repro, when shrinking ran.
    pub minimized: Option<String>,
}

/// Aggregate outcome of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seeds run.
    pub seeds: u64,
    /// Seeds with no violations and no degradation.
    pub clean: u64,
    /// Seeds where a solver hit its step budget or the interpreter hit
    /// its own (checks for that pairing skipped, seed still counted).
    pub degraded: u64,
    /// Seeds whose typed outcome is [`JobOutcome::OverBudget`] — a
    /// deterministic step-budget exhaustion, the subset of `degraded`
    /// that campaign quarantine triage cares about.
    pub over_budget: u64,
    /// Solver runs that exceeded the wall-clock budget.
    pub overruns: u64,
    /// All confirmed violations, minimized when shrinking is on.
    pub violations: Vec<FuzzViolation>,
    /// Demand point queries fired against the CI oracle.
    pub demand_queries: u64,
    /// Demand queries answered without falling back to the exhaustive
    /// solution. A campaign where every query fell back checked
    /// nothing, so callers assert this is positive.
    pub demand_hits: u64,
    /// Campaign wall time.
    pub wall: Duration,
}

impl FuzzReport {
    /// Hand-rolled JSON rendering (the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seeds\": {},\n", self.seeds));
        s.push_str(&format!("  \"clean\": {},\n", self.clean));
        s.push_str(&format!("  \"degraded\": {},\n", self.degraded));
        s.push_str(&format!("  \"over_budget\": {},\n", self.over_budget));
        s.push_str(&format!("  \"overruns\": {},\n", self.overruns));
        s.push_str(&format!("  \"demand_queries\": {},\n", self.demand_queries));
        s.push_str(&format!("  \"demand_hits\": {},\n", self.demand_hits));
        s.push_str(&format!(
            "  \"wall_ms\": {:.3},\n",
            self.wall.as_secs_f64() * 1e3
        ));
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"seed\": {}, ", v.seed));
            s.push_str(&format!("\"kind\": \"{}\", ", esc(&v.kind)));
            s.push_str(&format!("\"solver\": \"{}\", ", esc(&v.solver)));
            s.push_str(&format!("\"detail\": \"{}\", ", esc(&v.detail)));
            s.push_str(&format!("\"source\": \"{}\", ", esc(&v.source)));
            match &v.minimized {
                Some(m) => s.push_str(&format!("\"minimized\": \"{}\"", esc(m))),
                None => s.push_str("\"minimized\": null"),
            }
            s.push('}');
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "fuzz: {} seeds in {:.2?} — {} clean, {} degraded ({} over step budget), \
             {} wall overruns, {} violations, {}/{} demand queries in budget",
            self.seeds,
            self.wall,
            self.clean,
            self.degraded,
            self.over_budget,
            self.overruns,
            self.violations.len(),
            self.demand_hits,
            self.demand_queries,
        )
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A property failure before shrinking attaches the repro.
pub(crate) struct Finding {
    pub(crate) kind: &'static str,
    pub(crate) solver: String,
    pub(crate) detail: String,
}

/// Everything one source text yields under the differential checks.
pub(crate) struct Findings {
    pub(crate) degraded: Vec<String>,
    pub(crate) overruns: u64,
    /// A solver or interpreter *step* budget was exhausted — the
    /// deterministic signal behind [`JobOutcome::OverBudget`].
    pub(crate) budget_exhausted: bool,
    pub(crate) violations: Vec<Finding>,
    pub(crate) demand_queries: u64,
    pub(crate) demand_hits: u64,
    /// Raw checker diagnostics under the CI solution (corpus stats).
    pub(crate) diag_total: u64,
    /// Deduplication keys (`fnv64` of check kind + offending source
    /// line) of those diagnostics, unique and sorted (corpus stats).
    pub(crate) diag_keys: Vec<u64>,
    /// Per-function structural fingerprints of the lowered graph
    /// (corpus stats).
    pub(crate) func_fps: Vec<u64>,
    /// Per-solver wall micros, for throughput summaries only — never
    /// part of canonical campaign output.
    pub(crate) solver_us: Vec<(&'static str, u64)>,
}

impl Findings {
    /// The typed outcome of this job (`Crashed` is assigned one layer
    /// up, by the campaign's `catch_unwind` wrapper).
    pub(crate) fn outcome(&self) -> JobOutcome {
        if self.budget_exhausted {
            JobOutcome::OverBudget
        } else {
            JobOutcome::Completed
        }
    }
}

/// Whether the error's root cause is a step-budget exhaustion — the
/// deterministic budget signal, as opposed to wall-clock overruns.
fn is_step_limit(e: &AnalysisError) -> bool {
    match e {
        AnalysisError::StepLimit(_) => true,
        AnalysisError::Context { source, .. } => is_step_limit(source),
        _ => false,
    }
}

/// Runs a fuzzing campaign. Seeds are checked in parallel; shrinking of
/// the (rare) violations runs serially afterwards.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let t = Instant::now();
    let threads = if cfg.threads == 0 {
        pool::auto_threads()
    } else {
        cfg.threads
    };
    let outcomes: Vec<(u64, Findings, String)> =
        pool::run_indexed(cfg.seeds as usize, threads, |i| {
            let seed = cfg.start_seed + i as u64;
            let src = cfg.planted.plant(&generate(seed, &cfg.gen));
            (seed, check_source(&src, cfg, seed), src)
        });

    let mut clean = 0u64;
    let mut degraded = 0u64;
    let mut over_budget = 0u64;
    let mut overruns = 0u64;
    let mut demand_queries = 0u64;
    let mut demand_hits = 0u64;
    let mut violations = Vec::new();
    for (seed, f, src) in outcomes {
        demand_queries += f.demand_queries;
        demand_hits += f.demand_hits;
        if f.violations.is_empty() && f.degraded.is_empty() && f.overruns == 0 {
            clean += 1;
        }
        if !f.degraded.is_empty() {
            degraded += 1;
        }
        if f.outcome() == JobOutcome::OverBudget {
            over_budget += 1;
        }
        overruns += f.overruns;
        for v in f.violations {
            violations.push(FuzzViolation {
                seed,
                kind: v.kind.to_string(),
                solver: v.solver,
                detail: v.detail,
                source: src.clone(),
                minimized: None,
            });
        }
    }

    // Shrinking re-runs the full differential check per candidate, so
    // bound the number of minimized repros per campaign; the rest keep
    // their full source.
    const MAX_SHRINKS: usize = 5;
    if cfg.shrink {
        // Soundness violations get the limited shrink slots first — they
        // are the findings a human reads — then fixpoint divergences,
        // then lattice inversions.
        let rank = |k: &str| match k {
            "soundness" => 0u8,
            "divergence" => 1,
            "incremental" => 2,
            "lattice" => 3,
            _ => 4,
        };
        let mut order: Vec<usize> = (0..violations.len()).collect();
        order.sort_by_key(|&i| (rank(&violations[i].kind), violations[i].seed, i));
        for &vi in order.iter().take(MAX_SHRINKS) {
            let v = &mut violations[vi];
            let kind = v.kind.clone();
            let solver = v.solver.clone();
            let seed = v.seed;
            let pred = |s: &str| {
                check_source(s, cfg, seed)
                    .violations
                    .iter()
                    .any(|f| f.kind == kind && f.solver == solver)
            };
            v.minimized = Some(shrink(&v.source, &pred));
        }
    }

    FuzzReport {
        seeds: cfg.seeds,
        clean,
        degraded,
        over_budget,
        overruns,
        violations,
        demand_queries,
        demand_hits,
        wall: t.elapsed(),
    }
}

/// Probe hook: the `(kind, solver)` labels `check_source` finds on one
/// source text. Lets diagnostics outside this crate re-run the exact
/// shrink predicate.
#[doc(hidden)]
pub fn check_source_for_test(src: &str, cfg: &FuzzConfig, seed: u64) -> Vec<(String, String)> {
    check_source(src, cfg, seed)
        .violations
        .into_iter()
        .map(|f| (f.kind.to_string(), f.solver))
        .collect()
}

/// Checks one source text against all three differential properties
/// plus the printer round-trip. Never panics on solver or interpreter
/// resource exhaustion — those degrade the seed instead.
pub(crate) fn check_source(src: &str, cfg: &FuzzConfig, seed: u64) -> Findings {
    let job = format!("seed {seed}");
    let mut f = Findings {
        degraded: Vec::new(),
        overruns: 0,
        budget_exhausted: false,
        violations: Vec::new(),
        demand_queries: 0,
        demand_hits: 0,
        diag_total: 0,
        diag_keys: Vec::new(),
        func_fps: Vec::new(),
        solver_us: Vec::new(),
    };

    // Printer round-trip: `print` must be a fixpoint of `parse ∘ print`,
    // so every emitted repro is a faithful standalone program.
    if let Some(detail) = roundtrip_violation(src) {
        f.violations.push(Finding {
            kind: "roundtrip",
            solver: "pretty".to_string(),
            detail,
        });
    }

    // Pipeline: the generator promises well-typed programs, so frontend
    // or lowering failures are genuine findings, not infrastructure.
    let prog = match cfront::compile(src) {
        Ok(p) => p,
        Err(e) => {
            f.violations.push(Finding {
                kind: "pipeline",
                solver: "frontend".to_string(),
                detail: AnalysisError::from(e)
                    .in_context("frontend", &job)
                    .to_string(),
            });
            return f;
        }
    };
    let graph = match lower(&prog, &BuildOptions::default()) {
        Ok(g) => g,
        Err(e) => {
            f.violations.push(Finding {
                kind: "pipeline",
                solver: "lowering".to_string(),
                detail: AnalysisError::from(e)
                    .in_context("lowering", &job)
                    .to_string(),
            });
            return f;
        }
    };

    // Solve the full spectrum under budgets. The CI run doubles as the
    // shared path-table vocabulary for every pair-based solver.
    let budget = Duration::from_millis(cfg.budget_ms);
    let ci_spec = SolverSpec::ci().fault(cfg.fault);
    let t_ci = Instant::now();
    let ci = ci_spec.solve_ci(&graph);
    let ci_elapsed = t_ci.elapsed();
    f.solver_us.push(("ci", ci_elapsed.as_micros() as u64));
    if ci_elapsed > budget {
        f.overruns += 1;
    }
    let mut solved: Vec<(&'static str, SolutionBox)> = Vec::new();
    for spec in SolverSpec::all() {
        let spec = spec.max_steps(cfg.max_steps);
        let spec = if spec.kind() == SolverKind::Ci {
            spec.fault(cfg.fault)
        } else {
            spec
        };
        let name = spec.name();
        let t = Instant::now();
        let outcome = if spec.kind() == SolverKind::Ci {
            Ok(Box::new(ci.clone()) as SolutionBox)
        } else {
            spec.solve(&graph, Some(&ci))
        };
        let elapsed = t.elapsed();
        if spec.kind() != SolverKind::Ci {
            f.solver_us.push((name, elapsed.as_micros() as u64));
        }
        if elapsed > budget {
            f.overruns += 1;
        }
        match outcome {
            Ok(sol) => solved.push((name, sol)),
            Err(e) => {
                if is_step_limit(&e) {
                    f.budget_exhausted = true;
                }
                f.degraded.push(e.in_context(name, &job).to_string());
            }
        }
    }
    let by_name = |n: &str| solved.iter().find(|(s, _)| *s == n).map(|(_, b)| &**b);

    // Corpus-scale statistics for campaign dedup accounting: checker
    // diagnostics keyed by (check kind, offending source line) — the
    // generator's statement grammar repeats identical lines across
    // thousands of programs, so line-keyed dedup is where repetitive
    // corpora pay off — plus per-function structural fingerprints for
    // cross-program function dedup.
    if cfg.corpus_stats {
        let idx = alias::fingerprint::GraphIndex::build(&graph);
        f.func_fps = idx.func_fps.clone();
        let diags = checker::run_checks(&graph, &ci, &ci.callees);
        f.diag_total = diags.len() as u64;
        let mut keys: Vec<u64> = diags.iter().map(|d| diag_key(src, d)).collect();
        keys.sort_unstable();
        keys.dedup();
        f.diag_keys = keys;
    }

    // Property 2 — the precision lattice, coarse ⊇ fine. Note the two
    // context-sensitive analyses are *not* on one chain: k=1 call
    // strings and assumption sets prune different spurious flows, so
    // neither covers the other pointwise (the fuzzer itself established
    // this — see DESIGN.md). Both refine CI, and CI refines both
    // flow-insensitive baselines; those are the theorems checked here.
    for (coarse, fine) in [
        ("weihl", "ci"),
        ("steensgaard", "ci"),
        ("ci", "k1"),
        ("ci", "cs"),
    ] {
        let (Some(c), Some(d)) = (by_name(coarse), by_name(fine)) else {
            continue; // a degraded side skips the comparison
        };
        if c.covers(&graph, d) == Some(false) {
            f.violations.push(Finding {
                kind: "lattice",
                solver: format!("{coarse}⊉{fine}"),
                detail: format!(
                    "{coarse} does not cover {fine}: {} ({job})",
                    lattice_detail(&graph, c, d)
                ),
            });
        }
    }

    // Property 5 — planted checker defects: the source carries a known
    // memory-safety bug, and every solver's checker sweep must flag its
    // kind. A miss is a checker+solver precision/soundness finding.
    if let Some(kind) = cfg.planted.expected_kind() {
        for (name, sol) in &solved {
            let diags = checker::run_checks(&graph, &**sol, &ci.callees);
            if !diags.iter().any(|d| d.kind == kind) {
                f.violations.push(Finding {
                    kind: "checker",
                    solver: name.to_string(),
                    detail: format!(
                        "planted {:?} not flagged as {} ({job})",
                        cfg.planted,
                        kind.name()
                    ),
                });
            }
        }
    }

    // Property 3 — naive propagation reaches the identical fixpoint.
    let ci_naive = ci_spec
        .clone()
        .propagation(Propagation::Naive)
        .solve_ci(&graph);
    if !same_solution(&graph, &ci, &ci_naive) {
        f.violations.push(Finding {
            kind: "divergence",
            solver: "ci".to_string(),
            detail: format!("ci naive/delta fixpoints differ ({job})"),
        });
    }
    for kind in [SolverKind::Weihl, SolverKind::CallString1] {
        let spec = SolverSpec::new(kind)
            .max_steps(cfg.max_steps)
            .propagation(Propagation::Naive);
        let name = spec.name();
        let Some(delta) = by_name(name) else { continue };
        match spec.solve(&graph, Some(&ci)) {
            Ok(naive) => {
                if !same_solution(&graph, delta, &*naive) {
                    f.violations.push(Finding {
                        kind: "divergence",
                        solver: name.to_string(),
                        detail: format!("{name} naive/delta fixpoints differ ({job})"),
                    });
                }
            }
            Err(e) => {
                if is_step_limit(&e) {
                    f.budget_exhausted = true;
                }
                f.degraded.push(e.in_context(name, &job).to_string());
            }
        }
    }

    // Property 4 — incremental re-analysis is invisible: after one
    // random edit, `Engine::analyze_incremental` (memoized summaries,
    // dirty-cone seeding) must reach the same CI solution as a
    // from-scratch solve of the edited program.
    if let Some(step) = suite::edit::apply_random_edit(src, seed) {
        let spec = ci_spec.clone();
        let eng = crate::Engine::new()
            .threads(1)
            .specs(std::slice::from_ref(&spec))
            .ci_spec(spec);
        let jobs = |s: &str| vec![crate::Job::new(job.clone(), s)];
        // The edit generator validates that edited programs still
        // compile, so a failure of either run was already reported
        // above.
        if let (Ok(prev), Ok(scratch)) = (eng.run(&jobs(src)), eng.run(&jobs(&step.source))) {
            match eng.analyze_incremental(&prev, &jobs(&step.source)) {
                Ok(inc) => {
                    let a = inc.benches[0].solution("ci");
                    let b = scratch.benches[0].solution("ci");
                    if let (Some(a), Some(b)) = (a, b) {
                        let da = alias::solver::solution_dump(a, &inc.benches[0].graph);
                        let db = alias::solver::solution_dump(b, &scratch.benches[0].graph);
                        if da != db {
                            f.violations.push(Finding {
                                kind: "incremental",
                                solver: "ci".to_string(),
                                detail: format!(
                                    "incremental ci diverges from scratch after edit `{}` ({job})",
                                    step.edit.description
                                ),
                            });
                        }
                    }
                }
                Err(e) => {
                    if is_step_limit(&e) {
                        f.budget_exhausted = true;
                    }
                    f.degraded
                        .push(e.in_context("incremental", &job).to_string());
                }
            }
        }
    }

    // Property 6 — demand-driven queries agree with the exhaustive CI
    // oracle. Fires K pseudo-random point queries (both kinds) through
    // one growing DemandState. A budget-exhausted query answers *from*
    // the oracle, so it agrees by construction; the campaign separately
    // aggregates the non-fallback rate and callers assert it is
    // positive, so fallbacks cannot quietly hollow out the property.
    {
        let sites = graph.indirect_mem_ops();
        if !sites.is_empty() {
            let mut demand = alias::DemandState::new(
                &graph,
                alias::DemandConfig {
                    ci: ci_spec.ci_config(),
                    ..alias::DemandConfig::default()
                },
            );
            let ci_rendered = |node| {
                let mut v: Vec<String> = ci
                    .loc_referents(&graph, node)
                    .iter()
                    .map(|&p| ci.paths.display(p, &graph))
                    .collect();
                v.sort();
                v
            };
            // Tiny xorshift stream off the campaign seed: site picks
            // must be deterministic per seed for shrink re-runs.
            let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
            let mut pick = |n: usize| {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                (rng as usize) % n
            };
            const K: usize = 8;
            for _ in 0..K {
                let (a, _) = sites[pick(sites.len())];
                let (b, _) = sites[pick(sites.len())];
                let got = demand.loc_referents_rendered(&graph, a);
                let want = ci_rendered(a);
                if got != want {
                    f.violations.push(Finding {
                        kind: "demand",
                        solver: "demand".to_string(),
                        detail: format!(
                            "referents_at node {a:?}: demand {got:?} != ci {want:?} ({job})"
                        ),
                    });
                }
                let (hit, witnesses) = demand.may_alias(&graph, a, b);
                let ba = Solution::loc_referent_bases(&ci, &graph, a);
                let bb = Solution::loc_referent_bases(&ci, &graph, b);
                let want_w: Vec<_> = ba
                    .iter()
                    .copied()
                    .filter(|x| bb.binary_search(x).is_ok())
                    .collect();
                if witnesses != want_w || hit == want_w.is_empty() {
                    f.violations.push(Finding {
                        kind: "demand",
                        solver: "demand".to_string(),
                        detail: format!(
                            "may_alias {a:?}/{b:?}: demand {witnesses:?} != ci {want_w:?} ({job})"
                        ),
                    });
                }
            }
            let ds = demand.stats();
            f.demand_queries += ds.queries;
            f.demand_hits += ds.demand_hits;
        }
    }

    // Property 1 — oracle soundness against the interpreter trace.
    match interp::run(
        &prog,
        &interp::Config {
            max_steps: cfg.interp_steps,
            ..interp::Config::default()
        },
    ) {
        Ok(outcome) => {
            for (name, sol) in &solved {
                let vs = interp::check_solution_dyn(&prog, &graph, &**sol, &outcome.trace);
                if let Some(v) = vs.first() {
                    f.violations.push(Finding {
                        kind: "soundness",
                        solver: name.to_string(),
                        detail: format!(
                            "{} runtime {} not predicted at node {:?} (predicted {:?}; {} miss(es), {job})",
                            if v.is_write { "write" } else { "read" },
                            v.runtime,
                            v.node,
                            v.predicted,
                            vs.len(),
                        ),
                    });
                }
            }
        }
        Err(e) => {
            if matches!(e, interp::RunError::StepLimit) {
                f.budget_exhausted = true;
            }
            f.degraded.push(format!("interp on {job}: {e}"));
        }
    }

    // Property 7 — threaded race soundness and monotonicity. For
    // programs that spawn threads, the bounded interleaving oracle
    // replays the program under [`checker::RACE_SCHEDULES`] seeded
    // schedules; every racing pair it observes must be covered by a
    // data-race diagnostic from every solver (a miss means the static
    // checker under-approximated MHP footprints), and data-race sites
    // must shrink monotonically along the same lattice edges as
    // Property 2 — a finer solver may drop a coarse solver's false
    // positives but never invent a race the coarser referent sets
    // already covered.
    if prog.uses_threads() {
        let obs = interp::explore_races(
            &prog,
            &interp::Config {
                max_steps: cfg.interp_steps,
                ..interp::Config::default()
            },
            checker::RACE_SCHEDULES,
        );
        let mut race_sites: Vec<(&'static str, std::collections::BTreeSet<u32>)> = Vec::new();
        for (name, sol) in &solved {
            let diags = checker::run_checks(&graph, &**sol, &ci.callees);
            if let Some((x, y)) = checker::refuted_race(&diags, &obs) {
                f.violations.push(Finding {
                    kind: "race-soundness",
                    solver: name.to_string(),
                    detail: format!(
                        "oracle observed a race between sites {} and {} that no \
                         data-race diagnostic covers ({job})",
                        x.0, y.0
                    ),
                });
            }
            race_sites.push((
                name,
                diags
                    .iter()
                    .filter(|d| d.kind == checker::CheckKind::DataRace)
                    .map(|d| d.span.start)
                    .collect(),
            ));
        }
        let sites = |n: &str| race_sites.iter().find(|(s, _)| *s == n).map(|(_, v)| v);
        for (coarse, fine) in [
            ("weihl", "ci"),
            ("steensgaard", "ci"),
            ("ci", "k1"),
            ("ci", "cs"),
        ] {
            let (Some(c), Some(d)) = (sites(coarse), sites(fine)) else {
                continue; // a degraded side skips the comparison
            };
            if let Some(s) = d.iter().find(|s| !c.contains(s)) {
                f.violations.push(Finding {
                    kind: "race-monotone",
                    solver: format!("{coarse}⊉{fine}"),
                    detail: format!(
                        "{fine} reports a data race at byte {s} that {coarse} does not ({job})"
                    ),
                });
            }
        }
    }

    f
}

/// Deduplication key for one checker diagnostic: the check kind plus
/// the trimmed text of the source line it points at. Two programs
/// emitting the same statement with the same defect collapse to one
/// key, which is exactly the repetition campaign corpora exhibit.
pub(crate) fn diag_key(src: &str, d: &checker::Diagnostic) -> u64 {
    let start = (d.span.start as usize).min(src.len());
    let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = src[line_start..]
        .find('\n')
        .map_or(src.len(), |i| line_start + i);
    alias::fingerprint::fnv64_parts(&[
        d.kind.name().as_bytes(),
        src[line_start..line_end].trim().as_bytes(),
    ])
}

/// Locates the first indirect reference where `fine` escapes `coarse`
/// and renders both base sets, for actionable lattice-violation
/// reports.
fn lattice_detail(graph: &Graph, coarse: &dyn Solution, fine: &dyn Solution) -> String {
    for (node, _) in graph.indirect_mem_ops() {
        let c = coarse.loc_referent_bases(graph, node);
        let d = fine.loc_referent_bases(graph, node);
        if !d.iter().all(|b| c.binary_search(b).is_ok()) {
            return format!(
                "at node {:?}: coarse bases {:?}, fine bases {:?}",
                node, c, d
            );
        }
    }
    "no offending node (covers() disagrees with rescan)".to_string()
}

/// `print ∘ parse ∘ print = print ∘ parse`: pretty-printing must be a
/// parse fixpoint. Returns the mismatch rendered as a diff hint.
fn roundtrip_violation(src: &str) -> Option<String> {
    let parse = |s: &str| cfront::parser::parse(cfront::lexer::lex(s).ok()?).ok();
    let p1 = parse(src)?;
    let once = cfront::pretty::print_program(&p1);
    let Some(p2) = parse(&once) else {
        return Some("printed program fails to re-parse".to_string());
    };
    let twice = cfront::pretty::print_program(&p2);
    if once == twice {
        None
    } else {
        let byte = once
            .bytes()
            .zip(twice.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| once.len().min(twice.len()));
        Some(format!(
            "printer not a parse fixpoint (first divergence at byte {byte})"
        ))
    }
}

/// Structural equality of two solutions of the same graph: pair-for-pair
/// when both expose the pair-level view, referent-for-referent through
/// the trait surface otherwise.
fn same_solution(graph: &Graph, a: &dyn Solution, b: &dyn Solution) -> bool {
    if let (Some(pa), Some(pb)) = (a.as_points_to(), b.as_points_to()) {
        return (0..graph.output_count())
            .all(|o| pa.pairs_at(OutputId(o as u32)) == pb.pairs_at(OutputId(o as u32)));
    }
    if a.pairs() != b.pairs() {
        return false;
    }
    graph.all_mem_ops().iter().all(|&(node, _)| {
        match (a.referents_at(graph, node), b.referents_at(graph, node)) {
            (Some(mut x), Some(mut y)) => {
                x.sort_unstable();
                y.sort_unstable();
                x == y
            }
            _ => a.loc_referent_bases(graph, node) == b.loc_referent_bases(graph, node),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean() {
        let cfg = FuzzConfig {
            seeds: 8,
            threads: 1,
            ..FuzzConfig::default()
        };
        let r = fuzz(&cfg);
        assert_eq!(r.seeds, 8);
        assert!(
            r.violations.is_empty(),
            "unexpected violations: {:?}",
            r.violations
                .iter()
                .map(|v| format!("{} {} {}", v.kind, v.solver, v.detail))
                .collect::<Vec<_>>()
        );
        let json = r.to_json();
        assert!(json.contains("\"seeds\": 8"));
        assert!(json.contains("\"violations\": []"));
        assert!(r.demand_queries > 0, "demand property never fired");
        assert!(
            r.demand_hits > 0,
            "every demand query fell back to the oracle — the property \
             compared the oracle against itself"
        );
        assert!(json.contains("\"demand_queries\":"));
    }

    #[test]
    fn planted_defects_are_flagged_by_every_solver() {
        for planted in PlantedFault::all() {
            let cfg = FuzzConfig {
                seeds: 3,
                threads: 1,
                shrink: false,
                planted,
                ..FuzzConfig::default()
            };
            let r = fuzz(&cfg);
            assert!(
                r.violations.iter().all(|v| v.kind != "checker"),
                "{planted:?} should be flagged by every solver; got {:?}",
                r.violations
                    .iter()
                    .map(|v| format!("{} {} {}", v.kind, v.solver, v.detail))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn missing_plant_is_detected() {
        // A clean program claimed to carry a planted double free: the
        // checker property must report the miss for every solver, which
        // proves the detection loop actually fires.
        let cfg = FuzzConfig {
            planted: PlantedFault::DoubleFree,
            ..FuzzConfig::default()
        };
        let src = "int main(void) { return 0; }";
        let found = check_source(src, &cfg, 0);
        assert_eq!(
            found
                .violations
                .iter()
                .filter(|v| v.kind == "checker")
                .count(),
            5,
            "all five solvers should be reported as missing the plant"
        );
    }

    #[test]
    fn threaded_campaign_is_clean_under_race_properties() {
        // The threaded generator preset spawns workers from main, so
        // every seed exercises Property 7 (race soundness against the
        // interleaving oracle, race monotonicity along the lattice) on
        // top of the sequential properties.
        let cfg = FuzzConfig {
            seeds: 8,
            threads: 1,
            shrink: false,
            gen: GenConfig::threaded(),
            ..FuzzConfig::default()
        };
        let r = fuzz(&cfg);
        assert!(
            r.violations.is_empty(),
            "threaded campaign violations: {:?}",
            r.violations
                .iter()
                .map(|v| format!("{} {} {}", v.kind, v.solver, v.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn race_properties_cover_a_hand_written_racy_repro() {
        // A minimal planted race: main and the worker both write `g`
        // between spawn and join. The static checker must cover every
        // pair the oracle observes (no race-soundness finding) and the
        // spectrum must stay monotone (no race-monotone finding).
        let src = "int g;\n\
                   void worker(void) { g = 2; }\n\
                   int main(void) { spawn worker(); g = 2; join; return g; }\n";
        let prog = cfront::compile(src).expect("repro compiles");
        assert!(prog.uses_threads(), "repro must reach Property 7");
        let found = check_source(src, &FuzzConfig::default(), 0);
        assert!(
            found.violations.is_empty(),
            "racy repro violations: {:?}",
            found
                .violations
                .iter()
                .map(|v| format!("{} {} {}", v.kind, v.solver, v.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn planted_fault_is_caught() {
        // Seed window chosen so at least one generated program drives an
        // interpreter trace through a wrongly-killed binding; smaller
        // windows only trip the lattice checks (the faulted CI shrinks
        // below k=1/CS without the trace witnessing the missing path).
        let cfg = FuzzConfig {
            seeds: 12,
            start_seed: 50,
            threads: 1,
            shrink: false,
            fault: Fault::OverStrongUpdates,
            ..FuzzConfig::default()
        };
        let r = fuzz(&cfg);
        assert!(
            r.violations.iter().any(|v| v.kind == "soundness"),
            "planted over-strong-update fault should produce a soundness violation; got {:?}",
            r.violations
                .iter()
                .map(|v| (&v.kind, &v.solver))
                .collect::<Vec<_>>()
        );
    }
}
