//! A dependency-free work-stealing job pool.
//!
//! The engine's unit of work is one (benchmark × analysis) job; jobs are
//! independent and wildly uneven (a CS run can cost 1000× a Steensgaard
//! run on the same program), so static partitioning would leave cores
//! idle. Workers instead *claim* the next unstarted index from a shared
//! atomic counter — the indexed-job equivalent of work stealing: a
//! worker that finishes early immediately takes work that would
//! otherwise have queued behind a slow job on another thread.
//!
//! Results are returned in job order regardless of completion order or
//! thread count, which is what makes the engine's output deterministic
//! (timings aside) and lets the determinism test diff a parallel run
//! against a single-threaded one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` across `threads` workers and returns the results in
/// index order.
///
/// `threads == 1` (or `n <= 1`) degrades to a plain sequential loop on
/// the calling thread — no pool, no locks — so a single-threaded run is
/// a faithful serial baseline.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers stop claiming jobs.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    done.lock().unwrap().extend(local);
                })
            })
            .collect();
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    let mut v = done.into_inner().unwrap();
    v.sort_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, t)| t).collect()
}

/// The number of worker threads a `threads = 0` ("auto") engine uses.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_at_any_width() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 200] {
            let got = run_indexed(97, threads, |i| {
                // Uneven job costs exercise the dynamic scheduling.
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                i * i
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn zero_jobs_and_oversubscription_are_fine() {
        let got: Vec<usize> = run_indexed(0, 8, |i| i);
        assert!(got.is_empty());
        let got = run_indexed(1, 64, |i| i + 1);
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }
}
