//! Incremental re-analysis with memoized per-function summaries.
//!
//! An incremental run answers "the same jobs, after an edit" without
//! repeating work that the edit provably did not invalidate. Three
//! reuse tiers, cheapest first:
//!
//! 1. **Source replay** — the job's source text hashes identically to
//!    the cached run: every artifact (program, graph, CI solution, all
//!    solver solutions) replays verbatim. Nothing is recompiled.
//! 2. **Graph replay** — the source changed but the lowered VDG's
//!    content fingerprint is unchanged (comment, whitespace, or
//!    literal-only edits: `ScalarConst` carries no payload). Equal
//!    graph fingerprints mean the graphs are isomorphic id-for-id, so
//!    every cached solution is still exact and replays verbatim.
//! 3. **Seeded resume** — the graph changed. Functions are
//!    re-fingerprinted; fingerprint-matched functions contribute their
//!    memoized [`SolverSummaries`] facts as seeds, the dirty cone
//!    (changed functions plus everything their facts can reach) is
//!    re-solved from a delta worklist, and the per-vocabulary
//!    subset-seeding argument (`DESIGN.md` §12) guarantees the result
//!    is numerically identical to a from-scratch solve.
//!
//! **All five solvers support tier 3** through the uniform
//! [`Solver::resume`] capability: each resumes from summaries in its
//! own stable vocabulary (CI/Weihl pair rows, k=1 per-context rows, CS
//! qualified antichains, Steensgaard constraint atoms). A solver that
//! cannot resume a particular edit — unstable naming, a configuration
//! without stable summaries, a rejected plan — falls back to a fresh
//! solve with the typed [`FreshReason`] recorded in its [`SolveMode`].
//!
//! Reuse is sound only when the same [`Engine`] configuration produced
//! the cached facts; the cache records the engine's full solver spec
//! key and resets itself when it changes.

use crate::report::IncrementalStats;
use crate::{compose, pool, BenchOutput, Engine, EngineReport, EngineRun, Job, Solved};
use alias::ci::CiResult;
use alias::fingerprint::{fnv64, GraphIndex};
use alias::solver::SolutionBox;
use alias::summary::{ResumeStats, SolverSummaries};
use alias::{AnalysisError, Fault, HeapNaming};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vdg::build::lower;
use vdg::graph::Graph;

/// Why a solver solved from scratch instead of reusing cached facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreshReason {
    /// No cached run for this benchmark.
    NoCache,
    /// The engine's solver spec changed, invalidating the whole cache.
    SpecChange,
    /// The benchmark was cached, but a replayed solution for this
    /// solver was not (newly configured, or failed last time).
    NotInCache,
    /// The cache entry carries no summaries in this solver's
    /// vocabulary.
    NoSummaries,
    /// Call-string heap naming keys heap paths to call sites, defeating
    /// stable cross-edit summaries.
    HeapNaming,
    /// Fault injection is active; planted bugs must not be masked by
    /// cached facts.
    FaultInjection,
    /// The graph's naming is unstable (the recorded reason), so
    /// function fingerprints cannot be trusted across edits.
    UnstableNaming(String),
    /// No function's fingerprint survived the edit; seeding would win
    /// nothing.
    EveryFunctionChanged,
    /// The solver rejected the resume plan (vocabulary mismatch, facts
    /// outside the stable vocabulary, …).
    PlanRejected,
    /// The resume itself exhausted the solver's step budget.
    StepBudget,
}

impl FreshReason {
    /// Compact report rendering.
    pub fn render(&self) -> String {
        match self {
            FreshReason::NoCache => "no cached run for this benchmark".into(),
            FreshReason::SpecChange => "solver spec changed".into(),
            FreshReason::NotInCache => "not in cache".into(),
            FreshReason::NoSummaries => "no summaries for this solver".into(),
            FreshReason::HeapNaming => "call-string heap naming defeats stable summaries".into(),
            FreshReason::FaultInjection => "fault injection active".into(),
            FreshReason::UnstableNaming(r) => format!("unstable naming: {r}"),
            FreshReason::EveryFunctionChanged => "every function changed".into(),
            FreshReason::PlanRejected => "resume plan rejected".into(),
            FreshReason::StepBudget => "resume exhausted its step budget".into(),
        }
    }
}

/// How an incremental run obtained one solver's solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveMode {
    /// Replayed verbatim from the cache (source or graph fingerprint
    /// match).
    Replay,
    /// Resumed from summaries with an *empty* dirty cone: every
    /// function's facts replayed as seeds (a store-restored entry whose
    /// graph still fingerprints clean).
    Reseeded {
        /// Outputs seeded from the previous summaries.
        seeded_outputs: usize,
        /// Total value outputs in the graph.
        total_outputs: usize,
    },
    /// Resumed from summaries: clean functions seeded, the dirty cone
    /// re-solved.
    DirtyCone {
        /// Functions whose fingerprints (or fact translation) changed.
        dirty: usize,
        /// Functions whose memoized summaries were reused as seeds.
        clean: usize,
        /// Value outputs inside the dirty cone (re-solved).
        cone_outputs: usize,
        /// Outputs seeded from the previous summaries.
        seeded_outputs: usize,
        /// Total value outputs in the graph.
        total_outputs: usize,
    },
    /// Solved from scratch, with the typed reason.
    Fresh {
        /// Why cached facts could not be used.
        why: FreshReason,
    },
}

impl SolveMode {
    /// The mode a successful [`Solver::resume`] outcome reports.
    pub fn from_stats(stats: &ResumeStats) -> SolveMode {
        if stats.dirty.is_empty() {
            SolveMode::Reseeded {
                seeded_outputs: stats.seeded_outputs,
                total_outputs: stats.total_outputs,
            }
        } else {
            SolveMode::DirtyCone {
                dirty: stats.dirty.len(),
                clean: stats.clean,
                cone_outputs: stats.cone_outputs,
                seeded_outputs: stats.seeded_outputs,
                total_outputs: stats.total_outputs,
            }
        }
    }

    /// Whether the solution came out of a seeded resume (either
    /// flavor).
    pub fn is_resumed(&self) -> bool {
        matches!(
            self,
            SolveMode::Reseeded { .. } | SolveMode::DirtyCone { .. }
        )
    }

    /// Compact report rendering: `"replayed"`,
    /// `"reseeded(seeded=800/840)"`,
    /// `"seeded(dirty=1/9, cone=120/840)"`, or `"fresh(<reason>)"`.
    pub fn render(&self) -> String {
        match self {
            SolveMode::Replay => "replayed".into(),
            SolveMode::Reseeded {
                seeded_outputs,
                total_outputs,
            } => format!("reseeded(seeded={seeded_outputs}/{total_outputs})"),
            SolveMode::DirtyCone {
                dirty,
                clean,
                cone_outputs,
                total_outputs,
                ..
            } => format!(
                "seeded(dirty={dirty}/{}, cone={cone_outputs}/{total_outputs})",
                dirty + clean
            ),
            SolveMode::Fresh { why } => format!("fresh({})", why.render()),
        }
    }
}

/// What [`SummaryCache::summaries_of`] hands a persistent store: the
/// source hash and graph fingerprint one benchmark's summaries were
/// extracted under, plus the per-solver summary maps themselves.
pub type StoredSummaries = (u64, u64, HashMap<String, Arc<SolverSummaries>>);

/// One benchmark's memoized artifacts from a previous run.
struct ProgramEntry {
    source_hash: u64,
    graph_fp: u64,
    /// Memoized per-solver summaries by [`Solver::name`]. Matching
    /// stays content-addressed — a summary seeds a next-graph function
    /// only when its recorded fingerprint (which hashes the name and
    /// full VDG shape) matches — but the planners also need the
    /// *unmatched* summaries, to invalidate the callees of edited and
    /// deleted functions.
    summaries: HashMap<String, Arc<SolverSummaries>>,
    /// In-memory artifacts, present for entries absorbed from a live
    /// run. `None` for entries restored from a disk store, which carry
    /// only the summaries: a restored entry cannot replay at tiers 1–2
    /// (there are no cached solutions to hand back) but seeds every
    /// solver's tier-3 resume, which with an unchanged graph re-solves
    /// an empty dirty cone instead of the whole program.
    arts: Option<EntryArtifacts>,
}

/// The replay-grade artifacts of a [`ProgramEntry`]: everything tiers
/// 1–2 hand back verbatim.
struct EntryArtifacts {
    program: Arc<cfront::Program>,
    graph: Arc<Graph>,
    ci: Arc<CiResult>,
    /// Cached solver solutions by analysis name. `SolutionBox` is
    /// `Send` but not `Sync`, so these live and replay on the driver
    /// thread only.
    solutions: HashMap<String, SolutionBox>,
}

/// Persistent in-memory cache of per-function summaries and solutions,
/// keyed by benchmark name. Feed it successive runs with
/// [`Engine::analyze_incremental_with`] to analyze an edit chain.
pub struct SummaryCache {
    spec_key: String,
    entries: HashMap<String, ProgramEntry>,
}

impl SummaryCache {
    /// Number of benchmarks with cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no benchmark.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The engine solver-spec key this cache's facts were computed
    /// under (the CI spec plus every configured solver spec).
    /// Persistent stores record it so a restored cache is never seeded
    /// into an engine with different solver knobs.
    pub fn spec_key(&self) -> &str {
        &self.spec_key
    }

    /// Benchmark names with cached artifacts, sorted.
    pub fn bench_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }

    /// Order-of-magnitude estimate of this cache's resident memory, in
    /// bytes. Counts the dominant owners — VDG nodes/outputs, memoized
    /// summary fact rows, and cached solution pairs — at fixed per-item
    /// costs; auxiliary structure (hash tables, Arc headers, strings)
    /// rides in the constants. Used by the serving layer's LRU eviction
    /// budget, where relative session weight matters and exact byte
    /// counts do not.
    pub fn approx_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|e| {
                let summaries: usize = e
                    .summaries
                    .values()
                    .map(|s| 48 * s.fact_rows() + 64 * s.funcs.len() + 64)
                    .sum();
                let arts = e
                    .arts
                    .as_ref()
                    .map(|a| {
                        64 * a.graph.node_count()
                            + 32 * a.graph.output_count()
                            + a.solutions
                                .values()
                                .map(|s| 32 * s.pairs().unwrap_or(a.graph.output_count()) + 256)
                                .sum::<usize>()
                    })
                    .unwrap_or(0);
                summaries + arts + 512
            })
            .sum()
    }

    /// Seeds the cache with per-solver summaries restored from a
    /// persistent store, keyed to the `source_hash`/`graph_fp` they
    /// were extracted under. The entry carries no programs or
    /// solutions, so the next analyze of the benchmark cannot replay
    /// at tiers 1–2; instead it recompiles and — when the lowered
    /// graph's fingerprint still matches function-for-function — seeds
    /// every solver's tier-3 resume from the restored summaries,
    /// re-solving an empty dirty cone. The subset-seeding argument
    /// makes the result bit-identical to a from-scratch solve either
    /// way, so a corrupt or stale store can cost time but never
    /// correctness.
    pub fn seed_restored(
        &mut self,
        name: &str,
        source_hash: u64,
        graph_fp: u64,
        summaries: HashMap<String, Arc<SolverSummaries>>,
    ) {
        self.entries.insert(
            name.to_string(),
            ProgramEntry {
                source_hash,
                graph_fp,
                summaries,
                arts: None,
            },
        );
    }

    /// The memoized summaries of one benchmark, with the source hash
    /// and graph fingerprint they were extracted under — everything a
    /// persistent store needs to rebuild the entry via
    /// [`SummaryCache::seed_restored`].
    pub fn summaries_of(&self, name: &str) -> Option<StoredSummaries> {
        self.entries
            .get(name)
            .map(|e| (e.source_hash, e.graph_fp, e.summaries.clone()))
    }

    /// Memoizes every benchmark of `run`: per-solver summaries are
    /// extracted from each solution bottom-up, solutions are cloned for
    /// replay.
    pub fn absorb(&mut self, run: &EngineRun) {
        for b in &run.benches {
            let index = Arc::new(GraphIndex::build(&b.graph));
            self.absorb_bench(b, index, 1);
        }
    }

    /// Absorbs one benchmark, summarizing each solution over `threads`
    /// workers via the bottom-up composition driver
    /// ([`compose::summarize`]).
    fn absorb_bench(&mut self, b: &BenchOutput, index: Arc<GraphIndex>, threads: usize) {
        let mut summaries: HashMap<String, Arc<SolverSummaries>> = HashMap::new();
        if index.unsafe_reason.is_none() {
            if let Some(s) = compose::summarize(&b.graph, &index, b.ci.as_ref(), None, threads) {
                summaries.insert("ci".into(), Arc::new(s));
            }
            for solved in &b.solutions {
                if solved.analysis == "ci" {
                    // The listed "ci" slot is a clone of the shared
                    // prepare-stage run summarized above.
                    continue;
                }
                if let Some(sol) = &solved.solution {
                    if let Some(s) =
                        compose::summarize(&b.graph, &index, sol.as_ref(), Some(&b.ci), threads)
                    {
                        summaries.insert(solved.analysis.clone(), Arc::new(s));
                    }
                }
            }
        }
        let solutions = b
            .solutions
            .iter()
            .filter_map(|s| {
                s.solution
                    .as_ref()
                    .map(|sol| (s.analysis.clone(), sol.clone_box()))
            })
            .collect();
        self.entries.insert(
            b.name.clone(),
            ProgramEntry {
                source_hash: fnv64(b.source.as_bytes()),
                graph_fp: index.graph_fp,
                summaries,
                arts: Some(EntryArtifacts {
                    program: Arc::clone(&b.program),
                    graph: Arc::clone(&b.graph),
                    ci: Arc::clone(&b.ci),
                    solutions,
                }),
            },
        );
    }
}

/// The `Sync` subset of a cache entry that pool workers may read.
/// Solutions stay behind on the driver thread.
#[derive(Clone)]
struct PrevMeta {
    source_hash: u64,
    graph_fp: u64,
    summaries: HashMap<String, Arc<SolverSummaries>>,
    /// Whether the entry holds cached solutions to replay. Restored
    /// (summaries-only) entries must skip tiers 1–2 and go straight to
    /// the seeded resume, whatever the fingerprints say.
    replayable: bool,
}

/// Stage-1 product of one benchmark in an incremental run.
enum IncPrep {
    /// Source text unchanged: reuse the whole cache entry.
    ReplaySource {
        /// Time spent hashing the source to discover the match.
        frontend: Duration,
    },
    /// Recompiled, but the VDG fingerprint is unchanged: reuse every
    /// cached solution against the fresh artifacts.
    ReplayGraph {
        program: Arc<cfront::Program>,
        graph: Arc<Graph>,
        frontend: Duration,
        lowering: Duration,
    },
    /// The graph changed: CI was re-solved (resumed or fresh) and every
    /// other solver gets a stage-2 resume-or-solve.
    Solve {
        program: Arc<cfront::Program>,
        graph: Arc<Graph>,
        index: Arc<GraphIndex>,
        ci: Arc<CiResult>,
        ci_wall: Duration,
        ci_mode: SolveMode,
        frontend: Duration,
        lowering: Duration,
        funcs_reused: usize,
        funcs_dirty: usize,
    },
}

impl Engine {
    /// An empty summary cache bound to this engine's solver specs.
    pub fn cache(&self) -> SummaryCache {
        SummaryCache {
            spec_key: self.spec_key(),
            entries: HashMap::new(),
        }
    }

    /// Re-analyzes `jobs` given the previous run `prev`, reusing every
    /// artifact the edits did not invalidate. One-shot form of
    /// [`Engine::analyze_incremental_with`] (which threads a
    /// [`SummaryCache`] through an edit chain).
    ///
    /// # Errors
    ///
    /// Returns the first frontend/lowering error, if any.
    pub fn analyze_incremental(
        &self,
        prev: &EngineRun,
        jobs: &[Job],
    ) -> Result<EngineRun, AnalysisError> {
        let mut cache = self.cache();
        cache.absorb(prev);
        self.analyze_incremental_with(&mut cache, jobs)
    }

    /// Re-analyzes `jobs` against (and then into) `cache`. On return
    /// the cache reflects this run, so successive calls analyze an edit
    /// chain with each step paying only for its own dirty cone.
    ///
    /// # Errors
    ///
    /// Returns the first frontend/lowering error, if any.
    pub fn analyze_incremental_with(
        &self,
        cache: &mut SummaryCache,
        jobs: &[Job],
    ) -> Result<EngineRun, AnalysisError> {
        let t_run = Instant::now();
        let threads = if self.threads == 0 {
            pool::auto_threads()
        } else {
            self.threads
        };
        let mut spec_reset = false;
        if cache.spec_key != self.spec_key() {
            // Cached facts were computed under different knobs; none
            // are sound to reuse.
            cache.entries.clear();
            cache.spec_key = self.spec_key();
            spec_reset = true;
        }

        let metas: Vec<Option<PrevMeta>> = jobs
            .iter()
            .map(|j| {
                cache.entries.get(&j.name).map(|e| PrevMeta {
                    source_hash: e.source_hash,
                    graph_fp: e.graph_fp,
                    summaries: e.summaries.clone(),
                    replayable: e.arts.is_some(),
                })
            })
            .collect();
        let no_cache_why = || {
            if spec_reset {
                FreshReason::SpecChange
            } else {
                FreshReason::NoCache
            }
        };

        // Stage 1 — prepare: hash, compile, fingerprint, and (for
        // changed graphs) re-solve CI seeded from the clean functions'
        // summaries. Parallel over benchmarks.
        let prepared: Vec<Result<IncPrep, AnalysisError>> =
            pool::run_indexed(jobs.len(), threads, |i| {
                self.prepare_incremental(&jobs[i], metas[i].as_ref(), no_cache_why())
            });
        let mut preps = Vec::with_capacity(jobs.len());
        for p in prepared {
            preps.push(p?);
        }

        // Stage 2 — resume-or-solve (benchmark × non-CI solver) jobs
        // for the changed benchmarks only: each solver first tries to
        // resume from its own cached vocabulary, falling back to a
        // fresh solve with the typed reason.
        let solve_jobs: Vec<(usize, usize)> = preps
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, IncPrep::Solve { .. }))
            .flat_map(|(bi, _)| {
                self.solvers
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.name() != "ci")
                    .map(move |(si, _)| (bi, si))
            })
            .collect();
        let solved: Vec<(usize, usize, Solved)> =
            pool::run_indexed(solve_jobs.len(), threads, |k| {
                let (bi, si) = solve_jobs[k];
                let (graph, index, ci) = match &preps[bi] {
                    IncPrep::Solve {
                        graph, index, ci, ..
                    } => (graph, index, ci),
                    _ => unreachable!("solve job on replayed benchmark"),
                };
                let s = &self.solvers[si];
                let prev = metas[bi].as_ref().and_then(|m| m.summaries.get(s.name()));
                let t = Instant::now();
                let (outcome, mode) = match prev {
                    None => {
                        let why = if metas[bi].is_some() {
                            FreshReason::NoSummaries
                        } else {
                            no_cache_why()
                        };
                        (s.solve(graph, Some(ci)), SolveMode::Fresh { why })
                    }
                    Some(prev) => match s.resume(graph, index, prev, Some(ci)) {
                        Some(Ok(out)) => {
                            let mode = SolveMode::from_stats(&out.stats);
                            (Ok(out.solution), mode)
                        }
                        Some(Err(_)) => (
                            s.solve(graph, Some(ci)),
                            SolveMode::Fresh {
                                why: FreshReason::StepBudget,
                            },
                        ),
                        None => {
                            let why = match &index.unsafe_reason {
                                Some(r) => FreshReason::UnstableNaming(r.clone()),
                                None => FreshReason::PlanRejected,
                            };
                            (s.solve(graph, Some(ci)), SolveMode::Fresh { why })
                        }
                    },
                };
                let wall = t.elapsed();
                let solved = match outcome {
                    Ok(solution) => Solved {
                        analysis: s.name().to_string(),
                        wall,
                        solution: Some(solution),
                        mode: Some(mode),
                        error: None,
                    },
                    Err(e) => Solved {
                        analysis: s.name().to_string(),
                        wall,
                        solution: None,
                        mode: Some(mode),
                        error: Some(e.in_context(s.name(), &jobs[bi].name).to_string()),
                    },
                };
                (bi, si, solved)
            });
        let mut slots: Vec<Vec<Option<Solved>>> = preps
            .iter()
            .map(|_| self.solvers.iter().map(|_| None).collect())
            .collect();
        for (bi, si, s) in solved {
            slots[bi][si] = Some(s);
        }

        // Stage 3 — assemble (driver thread: cached solutions are not
        // `Sync`), then fold the finished run back into the cache,
        // summarizing each fresh solution bottom-up in parallel.
        let mut stats = IncrementalStats::default();
        let mut outputs = Vec::with_capacity(jobs.len());
        let mut indexes = Vec::with_capacity(jobs.len());
        for ((job, prep), row) in jobs.iter().zip(preps).zip(slots) {
            let (out, index) = self.assemble_bench(cache, job, prep, row, &mut stats)?;
            outputs.push(out);
            indexes.push(index);
        }
        for (out, index) in outputs.iter().zip(indexes) {
            if let Some(index) = index {
                cache.absorb_bench(out, index, threads);
            }
        }

        let report = EngineReport {
            threads,
            total_wall: t_run.elapsed(),
            benchmarks: outputs.iter().map(BenchOutput::report).collect(),
            incremental: Some(stats),
            serve: None,
        };
        Ok(EngineRun {
            report,
            benches: outputs,
        })
    }

    fn prepare_incremental(
        &self,
        job: &Job,
        meta: Option<&PrevMeta>,
        no_cache_why: FreshReason,
    ) -> Result<IncPrep, AnalysisError> {
        let t0 = Instant::now();
        if let Some(m) = meta {
            if m.replayable && fnv64(job.source.as_bytes()) == m.source_hash {
                return Ok(IncPrep::ReplaySource {
                    frontend: t0.elapsed(),
                });
            }
        }
        let program = cfront::compile(&job.source)?;
        let frontend = t0.elapsed();
        let t1 = Instant::now();
        let graph = lower(&program, &self.build)?;
        let index = Arc::new(GraphIndex::build(&graph));
        let lowering = t1.elapsed();
        let program = Arc::new(program);
        let graph = Arc::new(graph);

        if let Some(m) = meta {
            if m.replayable && index.unsafe_reason.is_none() && index.graph_fp == m.graph_fp {
                return Ok(IncPrep::ReplayGraph {
                    program,
                    graph,
                    frontend,
                    lowering,
                });
            }
        }

        // The graph changed (or was never cached): re-solve CI through
        // its own resume capability, seeded from fingerprint-matched
        // functions when that is sound. The reason gates are checked
        // here (rather than trusting `resume`'s opaque `None`) so the
        // report can say *why* a fresh solve happened.
        let cfg = self.ci.ci_config();
        let fresh = |why: FreshReason| SolveMode::Fresh { why };
        let prev_ci = meta.and_then(|m| m.summaries.get("ci"));
        let t2 = Instant::now();
        let mut resumed: Option<(CiResult, ResumeStats)> = None;
        let ci_mode = match (meta, prev_ci) {
            (None, _) => fresh(no_cache_why),
            _ if cfg.heap_naming != HeapNaming::Site => fresh(FreshReason::HeapNaming),
            _ if cfg.fault != Fault::None => fresh(FreshReason::FaultInjection),
            _ if index.unsafe_reason.is_some() => fresh(FreshReason::UnstableNaming(
                index.unsafe_reason.clone().unwrap_or_default(),
            )),
            (Some(_), None) => fresh(FreshReason::NoSummaries),
            (Some(_), Some(prev)) => {
                let any_clean = graph.func_ids().any(|f| {
                    prev.funcs
                        .get(&graph.func(f).name)
                        .is_some_and(|s| s.fingerprint == index.func_fps[f.0 as usize])
                });
                if !any_clean {
                    fresh(FreshReason::EveryFunctionChanged)
                } else {
                    let ci_solver = self.ci.build();
                    match ci_solver.resume(&graph, &index, prev, None) {
                        Some(Ok(out)) => {
                            let mode = SolveMode::from_stats(&out.stats);
                            let ci = out
                                .solution
                                .into_ci()
                                .expect("the CI solver resumes to a CI result");
                            resumed = Some((ci, out.stats));
                            mode
                        }
                        Some(Err(_)) => fresh(FreshReason::StepBudget),
                        None => fresh(FreshReason::PlanRejected),
                    }
                }
            }
        };
        let (funcs_reused, funcs_dirty) = match &resumed {
            Some((_, stats)) => (stats.clean, stats.dirty.len()),
            None => (0, graph.func_count()),
        };
        let ci = match resumed {
            Some((ci, _)) => ci,
            None => self
                .ci
                .solve(&graph, None)
                .expect("the CI solver has no step budget")
                .into_ci()
                .expect("the engine's ci spec must describe the CI analysis"),
        };
        let ci_wall = t2.elapsed();
        Ok(IncPrep::Solve {
            program,
            graph,
            index,
            ci: Arc::new(ci),
            ci_wall,
            ci_mode,
            frontend,
            lowering,
            funcs_reused,
            funcs_dirty,
        })
    }

    /// Builds one benchmark's output, replaying cached solutions where
    /// the prepare stage proved that sound. Returns the graph index for
    /// changed benchmarks so the caller can fold the fresh run back
    /// into the cache (`None` = cache entry already current).
    fn assemble_bench(
        &self,
        cache: &mut SummaryCache,
        job: &Job,
        prep: IncPrep,
        row: Vec<Option<Solved>>,
        stats: &mut IncrementalStats,
    ) -> Result<(BenchOutput, Option<Arc<GraphIndex>>), AnalysisError> {
        match prep {
            IncPrep::ReplaySource { frontend } => {
                stats.benches_replayed += 1;
                let e = cache.entries.get(&job.name).expect("matched in stage 1");
                let a = e.arts.as_ref().expect("tier 1 requires artifacts");
                let mut out = BenchOutput {
                    name: job.name.clone(),
                    source: job.source.clone(),
                    input: job.input.clone(),
                    program: Arc::clone(&a.program),
                    graph: Arc::clone(&a.graph),
                    ci: Arc::clone(&a.ci),
                    ci_wall: Duration::ZERO,
                    frontend,
                    lowering: Duration::ZERO,
                    solutions: Vec::new(),
                };
                self.replay_solutions(cache, &mut out, stats);
                Ok((out, None))
            }
            IncPrep::ReplayGraph {
                program,
                graph,
                frontend,
                lowering,
            } => {
                stats.benches_replayed += 1;
                let e = cache.entries.get(&job.name).expect("matched in stage 1");
                let a = e.arts.as_ref().expect("tier 2 requires artifacts");
                let mut out = BenchOutput {
                    name: job.name.clone(),
                    source: job.source.clone(),
                    input: job.input.clone(),
                    program,
                    graph,
                    ci: Arc::clone(&a.ci),
                    ci_wall: Duration::ZERO,
                    frontend,
                    lowering,
                    solutions: Vec::new(),
                };
                self.replay_solutions(cache, &mut out, stats);
                // Re-key the entry to the new source text so the next
                // step of an edit chain replays at tier 1. Equal graph
                // fingerprints mean id-for-id isomorphism, so the cached
                // summaries, CI result, and solutions all remain exact —
                // no re-extraction or re-cloning needed.
                let e = cache
                    .entries
                    .get_mut(&job.name)
                    .expect("matched in stage 1");
                e.source_hash = fnv64(job.source.as_bytes());
                let a = e.arts.as_mut().expect("tier 2 requires artifacts");
                a.program = Arc::clone(&out.program);
                a.graph = Arc::clone(&out.graph);
                Ok((out, None))
            }
            IncPrep::Solve {
                program,
                graph,
                index,
                ci,
                ci_wall,
                ci_mode,
                frontend,
                lowering,
                funcs_reused,
                funcs_dirty,
            } => {
                if ci_mode.is_resumed() {
                    stats.benches_seeded += 1;
                } else {
                    stats.benches_fresh += 1;
                }
                stats.funcs_reused += funcs_reused;
                stats.funcs_dirty += funcs_dirty;
                let mut out = BenchOutput {
                    name: job.name.clone(),
                    source: job.source.clone(),
                    input: job.input.clone(),
                    program,
                    graph,
                    ci,
                    ci_wall,
                    frontend,
                    lowering,
                    solutions: Vec::new(),
                };
                for (si, slot) in row.into_iter().enumerate() {
                    if let Some(s) = slot {
                        out.solutions.push(s);
                    } else if self.solvers[si].name() == "ci" {
                        out.solutions.push(Solved {
                            analysis: "ci".to_string(),
                            wall: out.ci_wall,
                            solution: Some(Box::new(out.ci.as_ref().clone())),
                            mode: Some(ci_mode.clone()),
                            error: None,
                        });
                    }
                }
                for s in &out.solutions {
                    if s.mode.as_ref().is_some_and(SolveMode::is_resumed) {
                        stats.solutions_resumed += 1;
                    }
                }
                Ok((out, Some(index)))
            }
        }
    }

    /// Fills `out.solutions` for a replayed benchmark: cached solutions
    /// clone verbatim; a solver missing from the cache (newly
    /// configured, or failed last time) re-solves on the spot.
    fn replay_solutions(
        &self,
        cache: &SummaryCache,
        out: &mut BenchOutput,
        stats: &mut IncrementalStats,
    ) {
        let e = cache.entries.get(&out.name).expect("replay needs an entry");
        let a = e.arts.as_ref().expect("replay requires artifacts");
        for s in &self.solvers {
            let t = Instant::now();
            if let Some(sol) = a.solutions.get(s.name()) {
                stats.solutions_replayed += 1;
                out.solutions.push(Solved {
                    analysis: s.name().to_string(),
                    wall: t.elapsed(),
                    solution: Some(sol.clone_box()),
                    mode: Some(SolveMode::Replay),
                    error: None,
                });
                continue;
            }
            let outcome = s.solve(&out.graph, Some(&out.ci));
            let wall = t.elapsed();
            let mode = Some(SolveMode::Fresh {
                why: FreshReason::NotInCache,
            });
            out.solutions.push(match outcome {
                Ok(solution) => Solved {
                    analysis: s.name().to_string(),
                    wall,
                    solution: Some(solution),
                    mode,
                    error: None,
                },
                Err(err) => Solved {
                    analysis: s.name().to_string(),
                    wall,
                    solution: None,
                    mode,
                    error: Some(err.in_context(s.name(), &out.name).to_string()),
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias::solver::solution_fingerprint;

    const A: &str = "int g1; int g2; int *gp;\n\
         int *id(int *p) { return p; }\n\
         void setg(int x) { if (x) { gp = &g1; } }\n\
         int main(void) { int l; int *q; q = id(&l); setg(1); *q = 3; *gp = 4; return 0; }";
    const B: &str = "int g1; int g2; int *gp;\n\
         int *id(int *p) { return p; }\n\
         void setg(int x) { if (x) { gp = &g2; } }\n\
         int main(void) { int l; int *q; q = id(&l); setg(1); *q = 3; *gp = 4; return 0; }";

    fn job(name: &str, src: &str) -> Job {
        Job::new(name, src)
    }

    /// Every solver solution of `inc` must fingerprint identically to a
    /// from-scratch run of the same jobs.
    fn assert_matches_fresh(e: &Engine, inc: &EngineRun, jobs: &[Job]) {
        let fresh = e.run(jobs).expect("fresh run");
        for (bi, fb) in fresh.benches.iter().enumerate() {
            let ib = &inc.benches[bi];
            for fs in &fb.solutions {
                let f = fs.solution.as_deref().expect("fresh solution");
                let i = ib.solution(&fs.analysis).expect("incremental solution");
                assert_eq!(
                    solution_fingerprint(f, &fb.graph),
                    solution_fingerprint(i, &ib.graph),
                    "{} diverged on {}",
                    fs.analysis,
                    fb.name
                );
            }
        }
    }

    #[test]
    fn identical_jobs_replay_everything() {
        let e = Engine::new().threads(1);
        let jobs = vec![job("t", A)];
        let prev = e.run(&jobs).unwrap();
        let inc = e.analyze_incremental(&prev, &jobs).unwrap();
        let stats = inc.report.incremental.as_ref().expect("stats");
        assert_eq!(stats.benches_replayed, 1);
        assert_eq!(stats.solutions_replayed, 5);
        for s in &inc.benches[0].solutions {
            assert!(matches!(s.mode, Some(SolveMode::Replay)), "{}", s.analysis);
        }
        assert_matches_fresh(&e, &inc, &jobs);
    }

    #[test]
    fn edited_function_resumes_every_solver_and_matches_fresh() {
        let e = Engine::new().threads(2);
        let prev = e.run(&[job("t", A)]).unwrap();
        let jobs = vec![job("t", B)];
        let inc = e.analyze_incremental(&prev, &jobs).unwrap();
        let stats = inc.report.incremental.as_ref().expect("stats");
        assert_eq!(stats.benches_seeded, 1);
        assert_eq!(stats.funcs_dirty, 1, "only setg changed");
        assert!(stats.funcs_reused >= 2);
        let ci_mode = inc.benches[0]
            .solutions
            .iter()
            .find(|s| s.analysis == "ci")
            .and_then(|s| s.mode.clone())
            .expect("ci mode");
        assert!(
            matches!(ci_mode, SolveMode::DirtyCone { dirty: 1, .. }),
            "{}",
            ci_mode.render()
        );
        // Every solver — not just CI — resumes from its own vocabulary.
        for s in &inc.benches[0].solutions {
            let mode = s.mode.as_ref().expect("mode");
            assert!(
                mode.is_resumed(),
                "{} fell back to {}",
                s.analysis,
                mode.render()
            );
        }
        assert_eq!(stats.solutions_resumed, 5);
        assert_matches_fresh(&e, &inc, &jobs);
    }

    #[test]
    fn cold_cache_solves_fresh_and_chains() {
        let e = Engine::new().threads(1);
        let mut cache = e.cache();
        let r1 = e
            .analyze_incremental_with(&mut cache, &[job("t", A)])
            .unwrap();
        assert_eq!(r1.report.incremental.as_ref().unwrap().benches_fresh, 1);
        // Second step of the chain: the cache now holds step 1.
        let jobs = vec![job("t", B)];
        let r2 = e.analyze_incremental_with(&mut cache, &jobs).unwrap();
        assert_eq!(r2.report.incremental.as_ref().unwrap().benches_seeded, 1);
        assert_matches_fresh(&e, &r2, &jobs);
        // Third step: no edit — replays step 2's seeded result.
        let r3 = e.analyze_incremental_with(&mut cache, &jobs).unwrap();
        assert_eq!(r3.report.incremental.as_ref().unwrap().benches_replayed, 1);
        assert_matches_fresh(&e, &r3, &jobs);
    }

    #[test]
    fn untouched_sibling_benchmark_replays() {
        let e = Engine::new().threads(2);
        let prev = e.run(&[job("edited", A), job("same", A)]).unwrap();
        let jobs = vec![job("edited", B), job("same", A)];
        let inc = e.analyze_incremental(&prev, &jobs).unwrap();
        let stats = inc.report.incremental.as_ref().unwrap();
        assert_eq!(stats.benches_replayed, 1);
        assert_eq!(stats.benches_seeded, 1);
        assert_matches_fresh(&e, &inc, &jobs);
    }

    #[test]
    fn spec_change_resets_the_cache() {
        let e1 = Engine::new().threads(1);
        let mut cache = e1.cache();
        e1.analyze_incremental_with(&mut cache, &[job("t", A)])
            .unwrap();
        assert_eq!(cache.len(), 1);
        let e2 = Engine::new()
            .threads(1)
            .ci_spec(alias::SolverSpec::ci().strong_updates(false));
        let jobs = vec![job("t", A)];
        let r = e2.analyze_incremental_with(&mut cache, &jobs).unwrap();
        // Identical source, but the cached facts were for other knobs:
        // everything must re-solve fresh, not replay.
        assert_eq!(r.report.incremental.as_ref().unwrap().benches_fresh, 1);
        for s in &r.benches[0].solutions {
            assert!(
                matches!(
                    s.mode,
                    Some(SolveMode::Fresh {
                        why: FreshReason::SpecChange
                    })
                ),
                "{}: {:?}",
                s.analysis,
                s.mode
            );
        }
        assert_matches_fresh(&e2, &r, &jobs);
    }

    #[test]
    fn restored_summaries_reseed_without_artifacts() {
        // Simulate a disk-store restore: strip the artifacts, keep the
        // summaries. The next analyze cannot replay, but every solver
        // resumes an empty dirty cone.
        let e = Engine::new().threads(1);
        let mut cache = e.cache();
        let jobs = vec![job("t", A)];
        e.analyze_incremental_with(&mut cache, &jobs).unwrap();
        let (sh, gfp, sums) = cache.summaries_of("t").expect("absorbed");
        assert!(sums.len() >= 5, "all five vocabularies extracted");
        let mut cache2 = e.cache();
        cache2.seed_restored("t", sh, gfp, sums);
        let r = e.analyze_incremental_with(&mut cache2, &jobs).unwrap();
        for s in &r.benches[0].solutions {
            assert!(
                matches!(s.mode, Some(SolveMode::Reseeded { .. })),
                "{}: {:?}",
                s.analysis,
                s.mode
            );
        }
        assert_matches_fresh(&e, &r, &jobs);
    }
}
