//! A parallel engine run must produce the same report as a forced
//! single-threaded run — byte-identical modulo wall-clock timings and
//! the recorded thread count, which `EngineReport::fingerprint()`
//! zeroes out.

use engine::{Engine, Job};

#[test]
fn parallel_suite_report_matches_single_threaded() {
    let serial = Engine::new().threads(1).run_suite().expect("serial run");
    let parallel = Engine::new().threads(4).run_suite().expect("parallel run");
    assert_eq!(serial.report.threads, 1);
    assert_eq!(parallel.report.threads, 4);
    assert_eq!(
        serial.report.fingerprint(),
        parallel.report.fingerprint(),
        "parallel schedule changed the analysis products"
    );
}

#[test]
fn repeated_runs_are_reproducible() {
    let jobs = Job::named(&["span", "part"]);
    let a = Engine::new().threads(3).run(&jobs).expect("first run");
    let b = Engine::new().threads(2).run(&jobs).expect("second run");
    assert_eq!(a.report.fingerprint(), b.report.fingerprint());
}

#[test]
fn naive_discipline_matches_delta_fingerprint() {
    // The fingerprint nulls the schedule-describing counters
    // (`dedup_hits`, `delta_batches`, `deliveries_saved`), so the
    // PR 1-style naive worklists and the delta-batched worklists must
    // render identically: same solutions, same deliveries, same unique
    // insertions.
    let jobs = Job::named(&["span", "part", "compress"]);
    let delta = Engine::new().threads(2).run(&jobs).expect("delta run");
    let naive = Engine::new()
        .specs(&alias::SolverSpec::all_naive())
        .ci_spec(alias::SolverSpec::ci().propagation(alias::Propagation::Naive))
        .threads(2)
        .run(&jobs)
        .expect("naive run");
    assert_eq!(
        delta.report.fingerprint(),
        naive.report.fingerprint(),
        "propagation discipline changed the analysis products"
    );
}
