//! A parallel engine run must produce the same report as a forced
//! single-threaded run — byte-identical modulo wall-clock timings and
//! the recorded thread count, which `EngineReport::fingerprint()`
//! zeroes out.

use engine::{Engine, Job};

#[test]
fn parallel_suite_report_matches_single_threaded() {
    let serial = Engine::new().threads(1).run_suite().expect("serial run");
    let parallel = Engine::new().threads(4).run_suite().expect("parallel run");
    assert_eq!(serial.report.threads, 1);
    assert_eq!(parallel.report.threads, 4);
    assert_eq!(
        serial.report.fingerprint(),
        parallel.report.fingerprint(),
        "parallel schedule changed the analysis products"
    );
}

#[test]
fn repeated_runs_are_reproducible() {
    let jobs = Job::named(&["span", "part"]);
    let a = Engine::new().threads(3).run(&jobs).expect("first run");
    let b = Engine::new().threads(2).run(&jobs).expect("second run");
    assert_eq!(a.report.fingerprint(), b.report.fingerprint());
}
