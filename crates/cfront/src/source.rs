//! Source positions, spans, and diagnostics for the mini-C frontend.

use std::fmt;

/// A half-open byte range into a source buffer.
///
/// Spans are carried on tokens and AST nodes so that diagnostics and the
/// downstream analyses can point back at concrete source locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Returns a zero-width span, used for synthesized nodes.
    pub fn dummy() -> Span {
        Span { start: 0, end: 0 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Line/column pair (1-based) resolved from a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

/// A source buffer plus the machinery to resolve spans to line/column.
#[derive(Debug, Clone)]
pub struct SourceFile {
    name: String,
    text: String,
    /// Byte offsets at which each line starts.
    line_starts: Vec<u32>,
}

impl SourceFile {
    /// Wraps source text under a display name.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// The display name given at construction time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of lines in the file (a trailing newline does not add a line).
    pub fn line_count(&self) -> usize {
        if self.text.ends_with('\n') {
            self.line_starts.len() - 1
        } else {
            self.line_starts.len()
        }
    }

    /// Number of source lines that contain at least one non-whitespace
    /// character. This is the "lines" statistic reported in Figure 2.
    pub fn nonblank_line_count(&self) -> usize {
        self.text.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Resolves a byte offset to a 1-based line/column pair.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line as u32 + 1,
            col: offset - self.line_starts[line] + 1,
        }
    }

    /// Returns the text covered by `span`.
    pub fn snippet(&self, span: Span) -> &str {
        &self.text[span.start as usize..span.end as usize]
    }

    /// Renders the source line containing `span` with a caret underline
    /// beneath the spanned characters, `rustc`-style:
    ///
    /// ```text
    ///     return *p;
    ///            ^^
    /// ```
    ///
    /// Multi-line spans are underlined only on their first line. Used by
    /// the checker diagnostics and the fuzzer's counterexample reports.
    pub fn caret(&self, span: Span) -> String {
        let lc = self.line_col(span.start);
        let line_start = self.line_starts[(lc.line - 1) as usize] as usize;
        let line = self.text[line_start..]
            .split('\n')
            .next()
            .unwrap_or("")
            .trim_end_matches('\r');
        let col = (lc.col - 1) as usize;
        // Tabs keep their width in the underline so the carets align.
        let pad: String = line
            .chars()
            .take(col)
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        let span_on_line = (span.end as usize)
            .min(line_start + line.len())
            .saturating_sub(span.start as usize)
            .max(1);
        format!("{line}\n{pad}{}", "^".repeat(span_on_line))
    }
}

/// A diagnostic produced by the lexer, parser, or semantic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where the problem is.
    pub span: Span,
    /// Human-readable description, lowercase, no trailing period.
    pub message: String,
}

impl Diagnostic {
    /// Creates a new diagnostic at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic with line/column info against `file`.
    pub fn render(&self, file: &SourceFile) -> String {
        let lc = file.line_col(self.span.start);
        format!(
            "{}:{}:{}: error: {}",
            file.name(),
            lc.line,
            lc.col,
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Error type aggregating one or more frontend diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// Everything that went wrong, in source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl FrontendError {
    /// Wraps a single diagnostic.
    pub fn single(d: Diagnostic) -> Self {
        FrontendError {
            diagnostics: vec![d],
        }
    }

    /// Renders all diagnostics against `file`, one per line.
    pub fn render(&self, file: &SourceFile) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(file))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for FrontendError {}

impl From<Diagnostic> for FrontendError {
    fn from(d: Diagnostic) -> Self {
        FrontendError::single(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_union_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn line_col_resolution() {
        let f = SourceFile::new("t.c", "ab\ncd\n\nxyz");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(f.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(f.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(f.line_count(), 4);
    }

    #[test]
    fn nonblank_lines_skip_whitespace_only() {
        let f = SourceFile::new("t.c", "int x;\n\n  \nint y;\n");
        assert_eq!(f.nonblank_line_count(), 2);
        assert_eq!(f.line_count(), 4);
    }

    #[test]
    fn snippet_extracts_text() {
        let f = SourceFile::new("t.c", "hello world");
        assert_eq!(f.snippet(Span::new(6, 11)), "world");
    }

    #[test]
    fn caret_underlines_span() {
        let f = SourceFile::new("t.c", "int x;\nreturn *p;\n");
        // `*p` on line 2.
        assert_eq!(f.caret(Span::new(14, 16)), "return *p;\n       ^^");
    }

    #[test]
    fn caret_clamps_multiline_spans_to_first_line() {
        let f = SourceFile::new("t.c", "ab\ncd\n");
        assert_eq!(f.caret(Span::new(1, 5)), "ab\n ^");
    }

    #[test]
    fn caret_on_zero_width_span_shows_one_mark() {
        let f = SourceFile::new("t.c", "abc\n");
        assert_eq!(f.caret(Span::new(1, 1)), "abc\n ^");
    }

    #[test]
    fn diagnostic_renders_position() {
        let f = SourceFile::new("t.c", "int x\nint y;");
        let d = Diagnostic::new(Span::new(6, 9), "expected `;`");
        assert_eq!(d.render(&f), "t.c:2:1: error: expected `;`");
    }
}
