//! Hand-written lexer for the mini-C language.
//!
//! Supports decimal/hex/octal integer literals, character literals (which
//! lex as integer literals), string literals with the common escapes,
//! line (`//`) and block (`/* */`) comments, and the full operator set of
//! the mini-C grammar.

use crate::source::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Lexes `src` into a token stream terminated by an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on the first malformed token (unterminated
/// string or comment, stray character, bad escape).
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
    /// Object-like `#define NAME tokens...` macros. Function-like macros
    /// are not supported (the suite does not need them).
    macros: std::collections::HashMap<String, Vec<TokenKind>>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            macros: std::collections::HashMap::new(),
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn err(&self, start: usize, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Span::new(start as u32, self.pos as u32), msg)
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        self.lex_all()?;
        Ok(self.tokens)
    }

    fn lex_all(&mut self) -> Result<(), Diagnostic> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            if self.pos >= self.src.len() {
                self.push(TokenKind::Eof, start);
                return Ok(());
            }
            let c = self.bump();
            match c {
                b'0'..=b'9' => self.number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'"' => self.string(start)?,
                b'\'' => self.char_lit(start)?,
                b'(' => self.push(TokenKind::LParen, start),
                b')' => self.push(TokenKind::RParen, start),
                b'{' => self.push(TokenKind::LBrace, start),
                b'}' => self.push(TokenKind::RBrace, start),
                b'[' => self.push(TokenKind::LBracket, start),
                b']' => self.push(TokenKind::RBracket, start),
                b';' => self.push(TokenKind::Semi, start),
                b',' => self.push(TokenKind::Comma, start),
                b':' => self.push(TokenKind::Colon, start),
                b'?' => self.push(TokenKind::Question, start),
                b'~' => self.push(TokenKind::Tilde, start),
                b'.' => self.push(TokenKind::Dot, start),
                b'+' => {
                    let k = if self.eat(b'+') {
                        TokenKind::PlusPlus
                    } else if self.eat(b'=') {
                        TokenKind::PlusEq
                    } else {
                        TokenKind::Plus
                    };
                    self.push(k, start);
                }
                b'-' => {
                    let k = if self.eat(b'-') {
                        TokenKind::MinusMinus
                    } else if self.eat(b'=') {
                        TokenKind::MinusEq
                    } else if self.eat(b'>') {
                        TokenKind::Arrow
                    } else {
                        TokenKind::Minus
                    };
                    self.push(k, start);
                }
                b'*' => {
                    let k = if self.eat(b'=') {
                        TokenKind::StarEq
                    } else {
                        TokenKind::Star
                    };
                    self.push(k, start);
                }
                b'/' => {
                    let k = if self.eat(b'=') {
                        TokenKind::SlashEq
                    } else {
                        TokenKind::Slash
                    };
                    self.push(k, start);
                }
                b'%' => {
                    let k = if self.eat(b'=') {
                        TokenKind::PercentEq
                    } else {
                        TokenKind::Percent
                    };
                    self.push(k, start);
                }
                b'&' => {
                    let k = if self.eat(b'&') {
                        TokenKind::AmpAmp
                    } else if self.eat(b'=') {
                        TokenKind::AmpEq
                    } else {
                        TokenKind::Amp
                    };
                    self.push(k, start);
                }
                b'|' => {
                    let k = if self.eat(b'|') {
                        TokenKind::PipePipe
                    } else if self.eat(b'=') {
                        TokenKind::PipeEq
                    } else {
                        TokenKind::Pipe
                    };
                    self.push(k, start);
                }
                b'^' => {
                    let k = if self.eat(b'=') {
                        TokenKind::CaretEq
                    } else {
                        TokenKind::Caret
                    };
                    self.push(k, start);
                }
                b'!' => {
                    let k = if self.eat(b'=') {
                        TokenKind::Ne
                    } else {
                        TokenKind::Bang
                    };
                    self.push(k, start);
                }
                b'=' => {
                    let k = if self.eat(b'=') {
                        TokenKind::EqEq
                    } else {
                        TokenKind::Eq
                    };
                    self.push(k, start);
                }
                b'<' => {
                    let k = if self.eat(b'=') {
                        TokenKind::Le
                    } else if self.eat(b'<') {
                        if self.eat(b'=') {
                            TokenKind::ShlEq
                        } else {
                            TokenKind::Shl
                        }
                    } else {
                        TokenKind::Lt
                    };
                    self.push(k, start);
                }
                b'>' => {
                    let k = if self.eat(b'=') {
                        TokenKind::Ge
                    } else if self.eat(b'>') {
                        if self.eat(b'=') {
                            TokenKind::ShrEq
                        } else {
                            TokenKind::Shr
                        }
                    } else {
                        TokenKind::Gt
                    };
                    self.push(k, start);
                }
                other => {
                    return Err(self.err(start, format!("unexpected character `{}`", other as char)))
                }
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == c {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens
            .push(Token::new(kind, Span::new(start as u32, self.pos as u32)));
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.src.len() {
                            self.pos = self.src.len();
                            return Err(self.err(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // Preprocessor lines. `#define NAME tokens...` registers an
                // object-like macro; everything else (`#include`, guards)
                // is skipped wholesale.
                b'#' => {
                    let line_start = self.pos;
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                    let line = std::str::from_utf8(&self.src[line_start..self.pos])
                        .expect("source is ASCII")
                        .to_string();
                    self.register_define(&line, line_start)?;
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self, start: usize) -> Result<(), Diagnostic> {
        let first = self.src[start];
        let (radix, digits_start) = if first == b'0' && (self.peek() == b'x' || self.peek() == b'X')
        {
            self.pos += 1;
            (16, self.pos)
        } else if first == b'0' && self.peek().is_ascii_digit() {
            (8, self.pos)
        } else {
            (10, start)
        };
        while self.peek().is_ascii_alphanumeric() {
            self.pos += 1;
        }
        // Floating-point literal: digits '.' digits (decimal only).
        if radix == 10
            && self.peek() == b'.'
            && self
                .src
                .get(self.pos + 1)
                .is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ASCII");
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(start, format!("invalid float literal `{text}`")))?;
            self.push(TokenKind::FloatLit(v.to_bits()), start);
            return Ok(());
        }
        let mut text = std::str::from_utf8(&self.src[digits_start..self.pos])
            .expect("digits are ASCII")
            .to_string();
        // Strip integer suffixes (L, U, UL, ...).
        while text.ends_with(['l', 'L', 'u', 'U']) {
            text.pop();
        }
        if text.is_empty() {
            // A bare `0x` or plain `0`.
            if radix == 16 {
                return Err(self.err(start, "hex literal with no digits"));
            }
            self.push(TokenKind::IntLit(0), start);
            return Ok(());
        }
        match i64::from_str_radix(&text, radix) {
            Ok(v) => {
                self.push(TokenKind::IntLit(v), start);
                Ok(())
            }
            Err(_) => Err(self.err(start, format!("invalid integer literal `{text}`"))),
        }
    }

    fn ident(&mut self, start: usize) {
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_string();
        if let Some(expansion) = self.macros.get(&text) {
            for k in expansion.clone() {
                self.push(k, start);
            }
            return;
        }
        let kind = TokenKind::keyword(&text).unwrap_or(TokenKind::Ident(text));
        self.push(kind, start);
    }

    /// Parses `#define NAME tokens...` and registers the macro; other
    /// directives are ignored. Expansions inside the definition are
    /// resolved immediately (against earlier macros), so recursion is
    /// impossible.
    fn register_define(&mut self, line: &str, at: usize) -> Result<(), Diagnostic> {
        let rest = line.trim_start_matches('#').trim_start();
        let Some(rest) = rest.strip_prefix("define") else {
            return Ok(());
        };
        let rest = rest.trim_start();
        let name_end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        let name = &rest[..name_end];
        if name.is_empty() {
            return Err(Diagnostic::new(
                Span::new(at as u32, at as u32 + line.len() as u32),
                "malformed #define",
            ));
        }
        let body = &rest[name_end..];
        if body.starts_with('(') {
            return Err(Diagnostic::new(
                Span::new(at as u32, at as u32 + line.len() as u32),
                "function-like macros are not supported",
            ));
        }
        // Lex the body with the macros known so far.
        let mut sub = Lexer::new(body);
        sub.macros = std::mem::take(&mut self.macros);
        let lexed = sub.lex_all();
        self.macros = std::mem::take(&mut sub.macros);
        lexed.map_err(|mut d| {
            d.span = Span::new(at as u32, at as u32 + line.len() as u32);
            d
        })?;
        let kinds: Vec<TokenKind> = sub
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| !matches!(k, TokenKind::Eof))
            .collect();
        self.macros.insert(name.to_string(), kinds);
        Ok(())
    }

    fn escape(&mut self, start: usize) -> Result<u8, Diagnostic> {
        let c = self.bump();
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            other => return Err(self.err(start, format!("unknown escape `\\{}`", other as char))),
        })
    }

    fn string(&mut self, start: usize) -> Result<(), Diagnostic> {
        let mut out = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(self.err(start, "unterminated string literal"));
            }
            match self.bump() {
                b'"' => break,
                b'\\' => out.push(self.escape(start)? as char),
                b'\n' => return Err(self.err(start, "newline in string literal")),
                c => out.push(c as char),
            }
        }
        self.push(TokenKind::StrLit(out), start);
        Ok(())
    }

    fn char_lit(&mut self, start: usize) -> Result<(), Diagnostic> {
        if self.pos >= self.src.len() {
            return Err(self.err(start, "unterminated character literal"));
        }
        let v = match self.bump() {
            b'\\' => self.escape(start)?,
            b'\'' => return Err(self.err(start, "empty character literal")),
            c => c,
        };
        if self.bump() != b'\'' {
            return Err(self.err(start, "unterminated character literal"));
        }
        self.push(TokenKind::IntLit(v as i64), start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex should succeed")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![KwInt, Ident("x".into()), Eq, IntLit(42), Semi, Eof]
        );
    }

    #[test]
    fn lexes_operators_longest_match() {
        assert_eq!(
            kinds("a <<= b >> c->d ++e"),
            vec![
                Ident("a".into()),
                ShlEq,
                Ident("b".into()),
                Shr,
                Ident("c".into()),
                Arrow,
                Ident("d".into()),
                PlusPlus,
                Ident("e".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_number_radixes() {
        assert_eq!(
            kinds("0 10 0x1f 017 42L 7u"),
            vec![
                IntLit(0),
                IntLit(10),
                IntLit(31),
                IntLit(15),
                IntLit(42),
                IntLit(7),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_char_and_string_escapes() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\tthere""#),
            vec![IntLit(97), IntLit(10), StrLit("hi\tthere".into()), Eof]
        );
    }

    #[test]
    fn skips_comments_and_preprocessor() {
        assert_eq!(
            kinds("#include <stdio.h>\n// line\nint /* mid */ x;"),
            vec![KwInt, Ident("x".into()), Semi, Eof]
        );
    }

    #[test]
    fn object_macros_expand() {
        assert_eq!(
            kinds("#define N 8\n#define M (N + 1)\nint a[N]; int b[M];"),
            vec![
                KwInt,
                Ident("a".into()),
                LBracket,
                IntLit(8),
                RBracket,
                Semi,
                KwInt,
                Ident("b".into()),
                LBracket,
                LParen,
                IntLit(8),
                Plus,
                IntLit(1),
                RParen,
                RBracket,
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn function_like_macros_rejected() {
        assert!(lex("#define F(x) x\nint y;").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        assert!(lex("int x @ y;").is_err());
    }

    #[test]
    fn spans_point_at_tokens() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, crate::source::Span::new(0, 2));
        assert_eq!(toks[1].span, crate::source::Span::new(3, 5));
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(kinds("return x;")[0], KwReturn);
        assert_eq!(kinds("returned;")[0], Ident("returned".into()));
    }
}
