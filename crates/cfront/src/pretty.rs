//! Pretty-printer: renders a [`Program`] back to parseable mini-C.
//!
//! Used by the round-trip property tests (`parse ∘ print` is a fixpoint)
//! and by the random program generator in the `suite` crate.

use crate::ast::*;
use crate::types::{TypeId, TypeKind, TypeTable};
use std::fmt::Write as _;

/// Renders a full program as mini-C source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, rec) in p.types.records().iter().enumerate() {
        let _ = i;
        if !rec.defined {
            continue;
        }
        let kw = if rec.is_union { "union" } else { "struct" };
        let _ = writeln!(out, "{} {} {{", kw, rec.name);
        for f in &rec.fields {
            let _ = writeln!(out, "    {};", declare(&p.types, f.ty, &f.name));
        }
        let _ = writeln!(out, "}};");
    }
    for g in &p.globals {
        let decl = declare(&p.types, g.ty, &g.name);
        match g.init {
            Some(init) => {
                let _ = writeln!(out, "{} = {};", decl, print_expr(p, init));
            }
            None => {
                let _ = writeln!(out, "{};", decl);
            }
        }
    }
    for f in &p.funcs {
        print_func(p, f, &mut out);
    }
    out
}

/// Renders `ty` applied to `name` as a C declarator (e.g. `int (*f)(int)`).
pub fn declare(types: &TypeTable, ty: TypeId, name: &str) -> String {
    match types.kind(ty) {
        TypeKind::Void => join_base("void", name),
        TypeKind::Int => join_base("int", name),
        TypeKind::Char => join_base("char", name),
        TypeKind::Float => join_base("double", name),
        TypeKind::Record(r) => {
            let rec = types.record(*r);
            let kw = if rec.is_union { "union" } else { "struct" };
            join_base(&format!("{kw} {}", rec.name), name)
        }
        TypeKind::Ptr(inner) => {
            let needs_parens =
                matches!(types.kind(*inner), TypeKind::Array(..) | TypeKind::Func(_));
            let new_name = if needs_parens {
                format!("(*{name})")
            } else {
                format!("*{name}")
            };
            declare(types, *inner, &new_name)
        }
        TypeKind::Array(inner, n) => {
            let new_name = if *n == 0 {
                format!("{name}[]")
            } else {
                format!("{name}[{n}]")
            };
            declare(types, *inner, &new_name)
        }
        TypeKind::Func(sig) => {
            let params = if sig.params.is_empty() {
                "void".to_string()
            } else {
                sig.params
                    .iter()
                    .map(|p| declare(types, *p, ""))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let new_name = format!("{name}({params})");
            declare(types, sig.ret, &new_name)
        }
    }
}

fn join_base(base: &str, name: &str) -> String {
    if name.is_empty() {
        base.to_string()
    } else {
        format!("{base} {name}")
    }
}

fn print_func(p: &Program, f: &FuncDecl, out: &mut String) {
    let params = if f.n_params == 0 {
        "void".to_string()
    } else {
        f.params()
            .iter()
            .map(|v| declare(&p.types, v.ty, &v.name))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let header = declare(&p.types, f.ret, &format!("{}({})", f.name, params));
    match &f.body {
        Some(body) => {
            let _ = writeln!(out, "{header} {{");
            for s in &body.stmts {
                print_stmt(p, s, 1, out);
            }
            let _ = writeln!(out, "}}");
        }
        None => {
            let _ = writeln!(out, "{header};");
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(p: &Program, b: &Block, level: usize, out: &mut String) {
    out.push_str("{\n");
    for s in &b.stmts {
        print_stmt(p, s, level + 1, out);
    }
    indent(out, level);
    out.push('}');
}

fn print_stmt(p: &Program, s: &Stmt, level: usize, out: &mut String) {
    indent(out, level);
    match s {
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", print_expr(p, *e));
        }
        Stmt::Local { name, ty, init, .. } => {
            let decl = declare(&p.types, *ty, name);
            match init {
                Some(i) => {
                    let _ = writeln!(out, "{} = {};", decl, print_expr(p, *i));
                }
                None => {
                    let _ = writeln!(out, "{decl};");
                }
            }
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let _ = write!(out, "if ({}) ", print_expr(p, *cond));
            print_block(p, then_blk, level, out);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                print_block(p, e, level, out);
            }
            out.push('\n');
        }
        Stmt::While { cond, body } => {
            let _ = write!(out, "while ({}) ", print_expr(p, *cond));
            print_block(p, body, level, out);
            out.push('\n');
        }
        Stmt::DoWhile { body, cond } => {
            out.push_str("do ");
            print_block(p, body, level, out);
            let _ = writeln!(out, " while ({});", print_expr(p, *cond));
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("for (");
            match init.as_deref() {
                Some(Stmt::Expr(e)) => {
                    let _ = write!(out, "{}; ", print_expr(p, *e));
                }
                Some(Stmt::Local { name, ty, init, .. }) => {
                    let decl = declare(&p.types, *ty, name);
                    match init {
                        Some(i) => {
                            let _ = write!(out, "{} = {}; ", decl, print_expr(p, *i));
                        }
                        None => {
                            let _ = write!(out, "{decl}; ");
                        }
                    }
                }
                Some(other) => {
                    // Multi-declarator inits were folded into a block by the
                    // parser; re-render as a preceding statement is not
                    // possible inline, so print the block's declarations
                    // separated by commas is not valid C either. Fall back
                    // to an empty init (callers in this repo never build
                    // such `for` nodes programmatically).
                    debug_assert!(matches!(other, Stmt::Block(_)), "unexpected for-init");
                    out.push_str("; ");
                }
                None => out.push_str("; "),
            }
            match cond {
                Some(c) => {
                    let _ = write!(out, "{}; ", print_expr(p, *c));
                }
                None => out.push_str("; "),
            }
            if let Some(st) = step {
                let _ = write!(out, "{}", print_expr(p, *st));
            }
            out.push_str(") ");
            print_block(p, body, level, out);
            out.push('\n');
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
            ..
        } => {
            let _ = writeln!(out, "switch ({}) {{", print_expr(p, *scrutinee));
            for c in cases {
                for v in &c.values {
                    indent(out, level);
                    let _ = writeln!(out, "case {v}:");
                }
                for st in &c.body.stmts {
                    print_stmt(p, st, level + 1, out);
                }
                indent(out, level + 1);
                out.push_str("break;\n");
            }
            if let Some(d) = default {
                indent(out, level);
                out.push_str("default:\n");
                for st in &d.stmts {
                    print_stmt(p, st, level + 1, out);
                }
                indent(out, level + 1);
                out.push_str("break;\n");
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => {
                let _ = writeln!(out, "return {};", print_expr(p, *v));
            }
            None => {
                let _ = writeln!(out, "return;");
            }
        },
        Stmt::Break(_) => {
            let _ = writeln!(out, "break;");
        }
        Stmt::Continue(_) => {
            let _ = writeln!(out, "continue;");
        }
        Stmt::Block(b) => {
            print_block(p, b, level, out);
            out.push('\n');
        }
        Stmt::Spawn { call, .. } => {
            let _ = writeln!(out, "spawn {};", print_expr(p, *call));
        }
        Stmt::Join(_) => {
            let _ = writeln!(out, "join;");
        }
    }
}

/// Renders an expression (fully parenthesized where precedence could bite).
pub fn print_expr(p: &Program, e: ExprId) -> String {
    let expr = p.exprs.get(e);
    match &expr.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::FloatLit(v) => {
            let s = format!("{v}");
            if s.contains('.') {
                s
            } else {
                format!("{v}.0")
            }
        }
        ExprKind::StrLit(s) => format!("\"{}\"", escape_str(s)),
        ExprKind::Null => "NULL".to_string(),
        ExprKind::Ident { name, .. } => name.clone(),
        ExprKind::Unary { op, arg } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
                UnOp::Deref => "*",
                UnOp::Addr => "&",
            };
            format!("{}({})", sym, print_expr(p, *arg))
        }
        ExprKind::Binary { op, lhs, rhs } => format!(
            "({} {} {})",
            print_expr(p, *lhs),
            op.symbol(),
            print_expr(p, *rhs)
        ),
        ExprKind::Assign { op, lhs, rhs } => {
            let sym = match op {
                None => "=".to_string(),
                Some(o) => format!("{}=", o.symbol()),
            };
            format!("{} {} {}", print_expr(p, *lhs), sym, print_expr(p, *rhs))
        }
        ExprKind::IncDec { pre, inc, arg } => {
            let sym = if *inc { "++" } else { "--" };
            if *pre {
                format!("{}({})", sym, print_expr(p, *arg))
            } else {
                format!("({}){}", print_expr(p, *arg), sym)
            }
        }
        ExprKind::Call { callee, args } => {
            let args = args
                .iter()
                .map(|a| print_expr(p, *a))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{}({})", print_expr(p, *callee), args)
        }
        ExprKind::Member {
            base, field, arrow, ..
        } => format!(
            "({}){}{}",
            print_expr(p, *base),
            if *arrow { "->" } else { "." },
            field
        ),
        ExprKind::Index { base, index } => {
            format!("({})[{}]", print_expr(p, *base), print_expr(p, *index))
        }
        ExprKind::Cast { ty, arg } => {
            format!("({})({})", declare(&p.types, *ty, ""), print_expr(p, *arg))
        }
        ExprKind::SizeofType(ty) => format!("sizeof({})", declare(&p.types, *ty, "")),
        ExprKind::SizeofExpr(arg) => format!("sizeof({})", print_expr(p, *arg)),
        ExprKind::Cond {
            cond,
            then_e,
            else_e,
        } => format!(
            "({} ? {} : {})",
            print_expr(p, *cond),
            print_expr(p, *then_e),
            print_expr(p, *else_e)
        ),
        ExprKind::InitList(items) => {
            let items = items
                .iter()
                .map(|i| print_expr(p, *i))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{{{items}}}")
        }
        ExprKind::Comma { lhs, rhs } => {
            format!("({}, {})", print_expr(p, *lhs), print_expr(p, *rhs))
        }
    }
}

fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\0' => out.push_str("\\0"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn round_trip(src: &str) -> String {
        let p = parse(lex(src).expect("lex")).expect("parse");
        print_program(&p)
    }

    fn fixpoint(src: &str) {
        let once = round_trip(src);
        let twice = round_trip(&once);
        assert_eq!(once, twice, "printer is not a parse fixpoint for:\n{src}");
    }

    #[test]
    fn declarator_rendering() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ip = t.ptr(int);
        assert_eq!(declare(&t, ip, "p"), "int *p");
        let arr = t.array(ip, 10);
        assert_eq!(declare(&t, arr, "a"), "int *a[10]");
        let arr2 = t.array(int, 10);
        let pta = t.ptr(arr2);
        assert_eq!(declare(&t, pta, "pa"), "int (*pa)[10]");
        let sig = crate::types::FuncSig {
            params: vec![int, ip],
            ret: int,
            varargs: false,
        };
        let fty = t.intern(crate::types::TypeKind::Func(sig));
        let fp = t.ptr(fty);
        assert_eq!(declare(&t, fp, "f"), "int (*f)(int, int *)");
    }

    #[test]
    fn fixpoint_simple_program() {
        fixpoint("int g; int main(void) { g = 1 + 2 * 3; return g; }");
    }

    #[test]
    fn fixpoint_pointer_program() {
        fixpoint(
            "struct node { int v; struct node *next; };\n\
             struct node *mk(int v) { struct node *n; \
             n = (struct node*)malloc(sizeof(struct node)); n->v = v; \
             n->next = NULL; return n; }\n\
             int main(void) { struct node *h; h = mk(3); return h->v; }",
        );
    }

    #[test]
    fn fixpoint_control_flow() {
        fixpoint(
            "int main(void) { int i; int s; s = 0; \
             for (i = 0; i < 4; i++) { if (i == 2) continue; s += i; } \
             while (s > 0) { s--; if (s == 1) break; } \
             do { s++; } while (s < 2); \
             switch (s) { case 1: s = 9; break; default: s = 0; break; } \
             return s ? 1 : 0; }",
        );
    }

    #[test]
    fn fixpoint_strings_and_arrays() {
        fixpoint(
            "char buf[32] = \"hi\\n\"; int table[3] = {1, 2, 3};\n\
             int main(void) { char *p; p = buf; return (int)p[0] + table[1]; }",
        );
    }

    #[test]
    fn fixpoint_spawn_join() {
        fixpoint(
            "int g;\n\
             void worker(int x) { g = x; }\n\
             int main(void) { spawn worker(1); spawn worker(2); join; return g; }",
        );
    }
}
