//! Abstract syntax tree for mini-C.
//!
//! Expressions live in a per-program arena ([`ExprArena`]) so that semantic
//! analysis can attach types and name resolutions in side tables keyed by
//! [`ExprId`]. Statements own their children directly.

use crate::source::Span;
use crate::types::{RecordId, TypeId, TypeTable};

/// Index of an expression in the program's [`ExprArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Index of a user-defined function in [`Program::funcs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a global variable in [`Program::globals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Index of a local variable (including parameters) within its function's
/// unified local table (`FuncDecl::vars`). Parameters come first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Library functions modeled by the analysis (lowered in `vdg::build`).
///
/// Variants name their C function directly ([`Builtin::name`]).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    Malloc,
    Calloc,
    Realloc,
    Free,
    Strcpy,
    Strncpy,
    Strcat,
    Strcmp,
    Strncmp,
    Strlen,
    Strchr,
    Strdup,
    Memcpy,
    Memmove,
    Memset,
    Printf,
    Sprintf,
    Puts,
    Putchar,
    Getchar,
    Atoi,
    Exit,
    Abs,
    Rand,
    Srand,
}

impl Builtin {
    /// Resolves a builtin by its C name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        use Builtin::*;
        Some(match name {
            "malloc" => Malloc,
            "calloc" => Calloc,
            "realloc" => Realloc,
            "free" => Free,
            "strcpy" => Strcpy,
            "strncpy" => Strncpy,
            "strcat" => Strcat,
            "strcmp" => Strcmp,
            "strncmp" => Strncmp,
            "strlen" => Strlen,
            "strchr" => Strchr,
            "strdup" => Strdup,
            "memcpy" => Memcpy,
            "memmove" => Memmove,
            "memset" => Memset,
            "printf" => Printf,
            "sprintf" => Sprintf,
            "puts" => Puts,
            "putchar" => Putchar,
            "getchar" => Getchar,
            "atoi" => Atoi,
            "exit" => Exit,
            "abs" => Abs,
            "rand" => Rand,
            "srand" => Srand,
            _ => return None,
        })
    }

    /// The C-level name.
    pub fn name(self) -> &'static str {
        use Builtin::*;
        match self {
            Malloc => "malloc",
            Calloc => "calloc",
            Realloc => "realloc",
            Free => "free",
            Strcpy => "strcpy",
            Strncpy => "strncpy",
            Strcat => "strcat",
            Strcmp => "strcmp",
            Strncmp => "strncmp",
            Strlen => "strlen",
            Strchr => "strchr",
            Strdup => "strdup",
            Memcpy => "memcpy",
            Memmove => "memmove",
            Memset => "memset",
            Printf => "printf",
            Sprintf => "sprintf",
            Puts => "puts",
            Putchar => "putchar",
            Getchar => "getchar",
            Atoi => "atoi",
            Exit => "exit",
            Abs => "abs",
            Rand => "rand",
            Srand => "srand",
        }
    }

    /// Whether this builtin allocates fresh heap storage (each static call
    /// site becomes a heap base-location, per paper §2).
    pub fn allocates(self) -> bool {
        matches!(
            self,
            Builtin::Malloc | Builtin::Calloc | Builtin::Realloc | Builtin::Strdup
        )
    }
}

/// What an identifier resolved to (filled in by sema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentTarget {
    /// A global variable.
    Global(GlobalId),
    /// A local or parameter of the enclosing function.
    Local(LocalId),
    /// A user-defined function used as a value (or called directly).
    Func(FuncId),
    /// A modeled library function.
    Builtin(Builtin),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e`.
    Not,
    /// Bitwise not `~e`.
    BitNot,
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&e`.
    Addr,
}

/// Binary operators (`&&`/`||` included; they do not short-circuit in the
/// analysis but do in the interpreter). Variants spell their operator
/// ([`BinOp::symbol`]).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// Whether the operator yields a boolean-ish `int` regardless of
    /// operand types.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            And => "&&",
            Or => "||",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
        }
    }
}

/// Expression node kinds; fields mirror the surface syntax one-to-one.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    /// The `NULL` keyword or `(T*)0`.
    Null,
    Ident {
        name: String,
        /// Filled by sema.
        target: Option<IdentTarget>,
    },
    Unary {
        op: UnOp,
        arg: ExprId,
    },
    Binary {
        op: BinOp,
        lhs: ExprId,
        rhs: ExprId,
    },
    /// `lhs = rhs` or compound `lhs op= rhs`.
    Assign {
        op: Option<BinOp>,
        lhs: ExprId,
        rhs: ExprId,
    },
    /// `++e`, `e++`, `--e`, `e--`.
    IncDec {
        pre: bool,
        inc: bool,
        arg: ExprId,
    },
    Call {
        callee: ExprId,
        args: Vec<ExprId>,
    },
    /// `base.field` or `base->field` (when `arrow`).
    Member {
        base: ExprId,
        field: String,
        arrow: bool,
        /// Filled by sema: the record and field index.
        record: Option<RecordId>,
        field_index: Option<usize>,
    },
    /// `base[index]`; `base` may be an array lvalue or a pointer.
    Index {
        base: ExprId,
        index: ExprId,
    },
    Cast {
        ty: TypeId,
        arg: ExprId,
    },
    SizeofType(TypeId),
    SizeofExpr(ExprId),
    /// Ternary `cond ? then_e : else_e`.
    Cond {
        cond: ExprId,
        then_e: ExprId,
        else_e: ExprId,
    },
    /// `{a, b, c}` initializer list (only in declarations).
    InitList(Vec<ExprId>),
    /// Comma operator `lhs, rhs`: evaluates both, yields `rhs`.
    Comma {
        lhs: ExprId,
        rhs: ExprId,
    },
}

/// An expression: kind, source span, and (after sema) its type.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's syntactic form.
    pub kind: ExprKind,
    /// Source range.
    pub span: Span,
    /// Filled by sema.
    pub ty: Option<TypeId>,
}

/// Arena of all expressions in a program.
#[derive(Debug, Clone, Default)]
pub struct ExprArena {
    exprs: Vec<Expr>,
}

impl ExprArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an expression, returning its id.
    pub fn alloc(&mut self, kind: ExprKind, span: Span) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(Expr {
            kind,
            span,
            ty: None,
        });
        id
    }

    /// Immutable access.
    pub fn get(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// Mutable access (used by sema to attach types/resolutions).
    pub fn get_mut(&mut self, id: ExprId) -> &mut Expr {
        &mut self.exprs[id.0 as usize]
    }

    /// The resolved type of `id`.
    ///
    /// # Panics
    ///
    /// Panics if sema has not run.
    pub fn ty(&self, id: ExprId) -> TypeId {
        self.get(id).ty.expect("sema must assign expression types")
    }

    /// Number of expressions allocated.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// Iterates over `(id, expr)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ExprId, &Expr)> {
        self.exprs
            .iter()
            .enumerate()
            .map(|(i, e)| (ExprId(i as u32), e))
    }
}

/// A `switch` case group: one or more `case` values guarding a block.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The stacked `case` label values selecting this group.
    pub values: Vec<i64>,
    /// Statements run when any label matches (no fallthrough).
    pub body: Block,
}

/// Statement kinds; fields mirror the surface syntax one-to-one.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(ExprId),
    /// Local declaration. `slot` is assigned by sema.
    Local {
        name: String,
        ty: TypeId,
        init: Option<ExprId>,
        span: Span,
        slot: Option<LocalId>,
    },
    If {
        cond: ExprId,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    While {
        cond: ExprId,
        body: Block,
    },
    DoWhile {
        body: Block,
        cond: ExprId,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<ExprId>,
        step: Option<ExprId>,
        body: Block,
    },
    Switch {
        scrutinee: ExprId,
        cases: Vec<SwitchCase>,
        default: Option<Block>,
        span: Span,
    },
    Return {
        value: Option<ExprId>,
        span: Span,
    },
    Break(Span),
    Continue(Span),
    Block(Block),
    /// `spawn f(args);` — runs `f` on a new thread under the SC thread
    /// model. `call` is an [`ExprKind::Call`] whose callee must resolve
    /// to a named user function (enforced by sema, which also restricts
    /// `spawn` to `main`). The call result is discarded.
    Spawn {
        /// The underlying call expression, type-checked like any call.
        call: ExprId,
        /// Span of the `spawn` keyword.
        span: Span,
    },
    /// `join;` — blocks until every thread spawned so far has finished
    /// (a join-all barrier; only allowed in `main`).
    Join(Span),
}

/// A brace-delimited statement sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// A variable slot of a function: parameters first, then locals in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct VarSlot {
    /// Declared name (slots, not names, are unique per function).
    pub name: String,
    /// Declared type.
    pub ty: TypeId,
    /// Source range of the declaration.
    pub span: Span,
    /// Whether this slot is one of the function's parameters.
    pub is_param: bool,
    /// Set by sema if `&var` occurs anywhere (or the var is an aggregate,
    /// which always lives in the store).
    pub addr_taken: bool,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeId,
    /// Number of parameters; `vars[..n_params]` are the parameter slots.
    pub n_params: usize,
    /// Parameters followed by all block-scoped locals (flattened by sema;
    /// names are made unique per function).
    pub vars: Vec<VarSlot>,
    /// The body; `None` for an undefined prototype.
    pub body: Option<Block>,
    /// Source range of the declaration.
    pub span: Span,
}

impl FuncDecl {
    /// Parameter slots.
    pub fn params(&self) -> &[VarSlot] {
        &self.vars[..self.n_params]
    }

    /// Whether this is a prototype with no body.
    pub fn is_proto(&self) -> bool {
        self.body.is_none()
    }
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: TypeId,
    /// Optional initializer expression (constant, address, or list).
    pub init: Option<ExprId>,
    /// Source range of the declaration.
    pub span: Span,
}

/// A parsed (and, after [`crate::sema::check`], resolved) program.
#[derive(Debug, Clone)]
pub struct Program {
    /// All interned types and record definitions.
    pub types: TypeTable,
    /// Global variables, indexable by [`GlobalId`].
    pub globals: Vec<GlobalDecl>,
    /// Functions (definitions and prototypes), indexable by [`FuncId`].
    pub funcs: Vec<FuncDecl>,
    /// The expression arena shared by all declarations.
    pub exprs: ExprArena,
}

impl Program {
    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Accessor by id.
    pub fn func(&self, id: FuncId) -> &FuncDecl {
        &self.funcs[id.0 as usize]
    }

    /// Accessor by id.
    pub fn global(&self, id: GlobalId) -> &GlobalDecl {
        &self.globals[id.0 as usize]
    }

    /// Iterates over function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Whether any function body contains a `spawn` statement (i.e. the
    /// program uses the thread model).
    pub fn uses_threads(&self) -> bool {
        fn block_spawns(b: &Block) -> bool {
            b.stmts.iter().any(stmt_spawns)
        }
        fn stmt_spawns(s: &Stmt) -> bool {
            match s {
                Stmt::Spawn { .. } => true,
                Stmt::If {
                    then_blk, else_blk, ..
                } => block_spawns(then_blk) || else_blk.as_ref().is_some_and(block_spawns),
                Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                    block_spawns(body)
                }
                Stmt::Switch { cases, default, .. } => {
                    cases.iter().any(|c| block_spawns(&c.body))
                        || default.as_ref().is_some_and(block_spawns)
                }
                Stmt::Block(b) => block_spawns(b),
                _ => false,
            }
        }
        self.funcs
            .iter()
            .filter_map(|f| f.body.as_ref())
            .any(block_spawns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_allocates_sequential_ids() {
        let mut a = ExprArena::new();
        let e0 = a.alloc(ExprKind::IntLit(1), Span::dummy());
        let e1 = a.alloc(ExprKind::Null, Span::dummy());
        assert_eq!(e0, ExprId(0));
        assert_eq!(e1, ExprId(1));
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(e0).kind, ExprKind::IntLit(1));
    }

    #[test]
    fn builtin_name_round_trips() {
        for b in [
            Builtin::Malloc,
            Builtin::Strcpy,
            Builtin::Printf,
            Builtin::Exit,
            Builtin::Strdup,
        ] {
            assert_eq!(Builtin::by_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::by_name("open"), None);
    }

    #[test]
    fn allocating_builtins() {
        assert!(Builtin::Malloc.allocates());
        assert!(Builtin::Strdup.allocates());
        assert!(!Builtin::Free.allocates());
        assert!(!Builtin::Strcpy.allocates());
    }

    #[test]
    fn comparison_ops() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert_eq!(BinOp::Shl.symbol(), "<<");
    }
}
