//! Token definitions for the mini-C lexer.

use crate::source::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// Variant names mirror their C spelling (see [`TokenKind::describe`]),
/// so per-variant docs would only repeat the name.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An integer literal (decimal, hex `0x`, octal `0`, or character literal).
    IntLit(i64),
    /// A floating-point literal, stored as `f64` bits so the token can
    /// remain `Eq`/`Hash`.
    FloatLit(u64),
    /// A string literal with escapes already processed.
    StrLit(String),
    /// An identifier or (if it matches) a keyword; keywords are separated
    /// out by the lexer into the variants below.
    Ident(String),

    // Keywords.
    KwInt,
    KwChar,
    KwVoid,
    KwStruct,
    KwUnion,
    KwEnum,
    KwTypedef,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    KwNull,
    KwSwitch,
    KwCase,
    KwDefault,
    KwExtern,
    KwStatic,
    KwConst,
    KwUnsigned,
    KwLong,
    KwShort,
    KwFloat,
    KwDouble,
    KwSpawn,
    KwJoin,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            IntLit(v) => format!("integer literal `{v}`"),
            FloatLit(b) => format!("float literal `{}`", f64::from_bits(*b)),
            StrLit(_) => "string literal".to_string(),
            Ident(s) => format!("identifier `{s}`"),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    /// The literal spelling of a punctuation or keyword token.
    fn symbol(&self) -> &'static str {
        use TokenKind::*;
        match self {
            KwInt => "int",
            KwChar => "char",
            KwVoid => "void",
            KwStruct => "struct",
            KwUnion => "union",
            KwEnum => "enum",
            KwTypedef => "typedef",
            KwIf => "if",
            KwElse => "else",
            KwWhile => "while",
            KwFor => "for",
            KwDo => "do",
            KwReturn => "return",
            KwBreak => "break",
            KwContinue => "continue",
            KwSizeof => "sizeof",
            KwNull => "NULL",
            KwSwitch => "switch",
            KwCase => "case",
            KwDefault => "default",
            KwExtern => "extern",
            KwStatic => "static",
            KwConst => "const",
            KwUnsigned => "unsigned",
            KwLong => "long",
            KwShort => "short",
            KwFloat => "float",
            KwDouble => "double",
            KwSpawn => "spawn",
            KwJoin => "join",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Question => "?",
            Dot => ".",
            Arrow => "->",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            Eq => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            PlusPlus => "++",
            MinusMinus => "--",
            IntLit(_) | FloatLit(_) | StrLit(_) | Ident(_) | Eof => unreachable!(),
        }
    }

    /// Returns the keyword kind for `ident`, if it is a keyword.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match ident {
            "int" => KwInt,
            "char" => KwChar,
            "void" => KwVoid,
            "struct" => KwStruct,
            "union" => KwUnion,
            "enum" => KwEnum,
            "typedef" => KwTypedef,
            "if" => KwIf,
            "else" => KwElse,
            "while" => KwWhile,
            "for" => KwFor,
            "do" => KwDo,
            "return" => KwReturn,
            "break" => KwBreak,
            "continue" => KwContinue,
            "sizeof" => KwSizeof,
            "NULL" => KwNull,
            "switch" => KwSwitch,
            "case" => KwCase,
            "default" => KwDefault,
            "extern" => KwExtern,
            "static" => KwStatic,
            "const" => KwConst,
            "unsigned" => KwUnsigned,
            "long" => KwLong,
            "short" => KwShort,
            "float" => KwFloat,
            "double" => KwDouble,
            "spawn" => KwSpawn,
            "join" => KwJoin,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token: a kind plus the span it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("NULL"), Some(TokenKind::KwNull));
        assert_eq!(TokenKind::keyword("frobnicate"), None);
    }

    #[test]
    fn describe_is_never_empty() {
        for k in [
            TokenKind::Arrow,
            TokenKind::IntLit(3),
            TokenKind::Ident("x".into()),
            TokenKind::Eof,
            TokenKind::ShlEq,
        ] {
            assert!(!k.describe().is_empty());
        }
    }
}
