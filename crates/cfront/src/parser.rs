//! Recursive-descent parser for mini-C.
//!
//! The parser owns the [`TypeTable`] so it can resolve `struct`, `union`,
//! and `typedef` names while parsing (the classic C declaration/expression
//! ambiguity). Output is an unresolved [`Program`]; run
//! [`crate::sema::check`] afterwards to resolve names and types.

use crate::ast::*;
use crate::source::{Diagnostic, Span};
use crate::token::{Token, TokenKind};
use crate::types::{Field, FuncSig, TypeId, TypeKind, TypeTable};
use std::collections::HashMap;

/// Parses a token stream into a program.
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse(tokens: Vec<Token>) -> Result<Program, Diagnostic> {
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    types: TypeTable,
    typedefs: HashMap<String, TypeId>,
    /// Enumeration constants; identifiers naming them parse as integer
    /// literals (so they also work in case labels and array sizes).
    enum_consts: HashMap<String, i64>,
    exprs: ExprArena,
    globals: Vec<GlobalDecl>,
    funcs: Vec<FuncDecl>,
}

/// Parsed declarator shape, applied inside-out to a base type.
#[derive(Debug)]
enum Decl {
    Name(Option<(String, Span)>),
    Ptr(Box<Decl>),
    Arr(Box<Decl>, u32),
    Fun(Box<Decl>, Vec<(Option<String>, TypeId, Span)>),
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            types: TypeTable::new(),
            typedefs: HashMap::new(),
            enum_consts: HashMap::new(),
            exprs: ExprArena::new(),
            globals: Vec::new(),
            funcs: Vec::new(),
        }
    }

    // ----- token helpers --------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Span, Diagnostic> {
        if self.peek() == &kind {
            let s = self.span();
            self.bump();
            Ok(s)
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let s = self.span();
                self.bump();
                Ok((name, s))
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(self.span(), msg)
    }

    fn alloc(&mut self, kind: ExprKind, span: Span) -> ExprId {
        self.exprs.alloc(kind, span)
    }

    // ----- type recognition -----------------------------------------------

    fn at_type_start(&self) -> bool {
        self.kind_is_type_start(self.peek())
    }

    fn kind_is_type_start(&self, k: &TokenKind) -> bool {
        use TokenKind::*;
        match k {
            KwInt | KwChar | KwVoid | KwStruct | KwUnion | KwEnum | KwConst | KwUnsigned
            | KwLong | KwShort | KwFloat | KwDouble | KwStatic | KwExtern => true,
            Ident(n) => self.typedefs.contains_key(n),
            _ => false,
        }
    }

    /// Parses declaration specifiers (storage classes are accepted and
    /// ignored; type qualifiers likewise).
    fn declspec(&mut self) -> Result<TypeId, Diagnostic> {
        use TokenKind::*;
        // Skip storage classes / qualifiers.
        while matches!(self.peek(), KwStatic | KwExtern | KwConst) {
            self.bump();
        }
        match self.peek().clone() {
            KwEnum => {
                self.bump();
                // Optional tag name; enums are plain ints in this subset.
                if matches!(self.peek(), Ident(_)) {
                    self.bump();
                }
                if self.eat(&LBrace) {
                    let mut next = 0i64;
                    while !self.eat(&RBrace) {
                        let (name, _) = self.expect_ident()?;
                        if self.eat(&Eq) {
                            next = self.const_int_expr()?;
                        }
                        self.enum_consts.insert(name, next);
                        next += 1;
                        if !self.eat(&Comma) {
                            self.expect(RBrace)?;
                            break;
                        }
                    }
                }
                Ok(self.types.int())
            }
            KwStruct | KwUnion => {
                let is_union = matches!(self.peek(), KwUnion);
                self.bump();
                let (name, _) = self.expect_ident()?;
                let rec = self.types.declare_record(&name, is_union);
                if self.eat(&LBrace) {
                    let mut fields = Vec::new();
                    while !self.eat(&RBrace) {
                        let base = self.declspec()?;
                        loop {
                            let d = self.declarator()?;
                            let (fname, fty) = self.apply_declarator(d, base)?;
                            let (fname, fspan) =
                                fname.ok_or_else(|| self.err("struct field requires a name"))?;
                            if self.types.is_func(fty) {
                                return Err(Diagnostic::new(
                                    fspan,
                                    "struct field cannot have function type",
                                ));
                            }
                            fields.push(Field {
                                name: fname,
                                ty: fty,
                            });
                            if !self.eat(&Comma) {
                                break;
                            }
                        }
                        self.expect(Semi)?;
                    }
                    if !self.types.define_record(rec, fields) {
                        return Err(self.err(format!(
                            "redefinition of {} {}",
                            if is_union { "union" } else { "struct" },
                            name
                        )));
                    }
                }
                Ok(self.types.intern(TypeKind::Record(rec)))
            }
            Ident(n) if self.typedefs.contains_key(&n) => {
                self.bump();
                Ok(self.typedefs[&n])
            }
            KwVoid => {
                self.bump();
                Ok(self.types.void())
            }
            KwFloat | KwDouble => {
                self.bump();
                Ok(self.types.float())
            }
            KwInt | KwChar | KwUnsigned | KwLong | KwShort => {
                let mut has_char = false;
                let mut any = false;
                while matches!(self.peek(), KwInt | KwChar | KwUnsigned | KwLong | KwShort) {
                    has_char |= matches!(self.peek(), KwChar);
                    any = true;
                    self.bump();
                }
                debug_assert!(any);
                Ok(if has_char {
                    self.types.char()
                } else {
                    self.types.int()
                })
            }
            other => Err(self.err(format!("expected a type, found {}", other.describe()))),
        }
    }

    // ----- declarators ----------------------------------------------------

    fn declarator(&mut self) -> Result<Decl, Diagnostic> {
        if self.eat(&TokenKind::Star) {
            while self.eat(&TokenKind::KwConst) {}
            return Ok(Decl::Ptr(Box::new(self.declarator()?)));
        }
        self.direct_declarator()
    }

    fn direct_declarator(&mut self) -> Result<Decl, Diagnostic> {
        let mut core = match self.peek().clone() {
            TokenKind::Ident(_) => {
                let (name, span) = self.expect_ident()?;
                Decl::Name(Some((name, span)))
            }
            TokenKind::LParen if self.paren_is_nested_declarator() => {
                self.bump();
                let inner = self.declarator()?;
                self.expect(TokenKind::RParen)?;
                inner
            }
            _ => Decl::Name(None),
        };
        loop {
            if self.eat(&TokenKind::LBracket) {
                let len = if self.peek() == &TokenKind::RBracket {
                    0
                } else {
                    let v = self.const_int_expr()?;
                    u32::try_from(v).map_err(|_| self.err("array length out of range"))?
                };
                self.expect(TokenKind::RBracket)?;
                core = Decl::Arr(Box::new(core), len);
            } else if self.peek() == &TokenKind::LParen {
                self.bump();
                let params = self.param_list()?;
                core = Decl::Fun(Box::new(core), params);
            } else {
                break;
            }
        }
        Ok(core)
    }

    /// Disambiguates `(` in declarator position: it opens a nested
    /// declarator when followed by `*`, another `(`, or a non-type
    /// identifier; otherwise it is a parameter list.
    fn paren_is_nested_declarator(&self) -> bool {
        match self.peek_at(1) {
            TokenKind::Star | TokenKind::LParen => true,
            TokenKind::Ident(n) => !self.typedefs.contains_key(n),
            _ => false,
        }
    }

    fn param_list(&mut self) -> Result<Vec<(Option<String>, TypeId, Span)>, Diagnostic> {
        let mut params = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok(params);
        }
        // `(void)` means "no parameters".
        if self.peek() == &TokenKind::KwVoid && self.peek_at(1) == &TokenKind::RParen {
            self.bump();
            self.bump();
            return Ok(params);
        }
        loop {
            let span = self.span();
            let base = self.declspec()?;
            let d = self.declarator()?;
            let (name, mut ty) = self.apply_declarator(d, base)?;
            // Arrays and functions decay to pointers in parameter position.
            ty = self.types.decay(ty);
            if self.types.is_func(ty) {
                ty = self.types.ptr(ty);
            }
            let (name, span) = match name {
                Some((n, s)) => (Some(n), s),
                None => (None, span),
            };
            params.push((name, ty, span));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(params)
    }

    /// Applies a declarator tree to a base type, producing the declared
    /// name (if any) and full type.
    #[allow(clippy::only_used_in_recursion)]
    fn apply_declarator(
        &mut self,
        d: Decl,
        base: TypeId,
    ) -> Result<(Option<(String, Span)>, TypeId), Diagnostic> {
        match d {
            Decl::Name(n) => Ok((n, base)),
            Decl::Ptr(inner) => {
                let t = self.types.ptr(base);
                self.apply_declarator(*inner, t)
            }
            Decl::Arr(inner, len) => {
                let t = self.types.array(base, len);
                self.apply_declarator(*inner, t)
            }
            Decl::Fun(inner, params) => {
                let sig = FuncSig {
                    params: params.iter().map(|(_, t, _)| *t).collect(),
                    ret: base,
                    varargs: false,
                };
                let t = self.types.intern(TypeKind::Func(sig));
                self.apply_declarator(*inner, t)
            }
        }
    }

    // ----- top level --------------------------------------------------------

    fn program(mut self) -> Result<Program, Diagnostic> {
        while self.peek() != &TokenKind::Eof {
            self.top_level()?;
        }
        Ok(Program {
            types: self.types,
            globals: self.globals,
            funcs: self.funcs,
            exprs: self.exprs,
        })
    }

    fn top_level(&mut self) -> Result<(), Diagnostic> {
        if self.eat(&TokenKind::KwTypedef) {
            let base = self.declspec()?;
            let d = self.declarator()?;
            let (name, ty) = self.apply_declarator(d, base)?;
            let (name, _) = name.ok_or_else(|| self.err("typedef requires a name"))?;
            self.typedefs.insert(name, ty);
            self.expect(TokenKind::Semi)?;
            return Ok(());
        }
        let start_span = self.span();
        let base = self.declspec()?;
        // A bare `struct S { ... };` declaration.
        if self.eat(&TokenKind::Semi) {
            return Ok(());
        }
        let d = self.declarator()?;
        // A `{` after the declarator means this is a function definition.
        // The declarator then has the shape `Ptr*(Fun(Name, params))`, with
        // the pointer layers belonging to the return type.
        if self.peek() == &TokenKind::LBrace {
            let mut ret = base;
            let mut cur = d;
            while let Decl::Ptr(inner) = cur {
                ret = self.types.ptr(ret);
                cur = *inner;
            }
            if let Decl::Fun(inner, params) = cur {
                if let Decl::Name(Some((name, name_span))) = *inner {
                    return self.function_def(name, name_span.to(start_span), ret, params);
                }
            }
            return Err(self.err("expected a function declarator before `{`"));
        }
        let (name, ty) = self.apply_declarator(d, base)?;
        let (name, span) = name.ok_or_else(|| self.err("declaration requires a name"))?;
        if self.types.is_func(ty) {
            // Prototype: recorded so sema can match calls before definition.
            self.funcs.push(FuncDecl {
                name,
                ret: match self.types.kind(ty) {
                    TypeKind::Func(sig) => sig.ret,
                    _ => unreachable!(),
                },
                n_params: 0,
                vars: Vec::new(),
                body: None,
                span,
            });
            self.expect(TokenKind::Semi)?;
            return Ok(());
        }
        self.global_tail(name, ty, span)?;
        Ok(())
    }

    fn global_tail(&mut self, name: String, ty: TypeId, span: Span) -> Result<(), Diagnostic> {
        let mut pending = vec![(name, ty, span)];
        loop {
            let (name, ty, span) = pending.pop().expect("one pending declarator");
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.initializer()?)
            } else {
                None
            };
            self.globals.push(GlobalDecl {
                name,
                ty,
                init,
                span,
            });
            if self.eat(&TokenKind::Comma) {
                // Re-parse: same base type, new declarator. The base type of
                // the previous declarator is not directly recoverable from
                // its full type, so multi-declarator globals share the first
                // declarator's *base*; we approximate by requiring the next
                // declarator to start from the same declspec result. To keep
                // the grammar honest we re-derive the base from the first
                // global's innermost type.
                let base = self.strip_to_base(self.globals.last().expect("just pushed").ty);
                let d = self.declarator()?;
                let (n2, t2) = self.apply_declarator(d, base)?;
                let (n2, s2) = n2.ok_or_else(|| self.err("declaration requires a name"))?;
                pending.push((n2, t2, s2));
                continue;
            }
            self.expect(TokenKind::Semi)?;
            return Ok(());
        }
    }

    /// Recovers the declspec base type from a fully derived type by
    /// stripping pointer/array/function layers.
    fn strip_to_base(&self, mut ty: TypeId) -> TypeId {
        loop {
            match self.types.kind(ty) {
                TypeKind::Ptr(t) => ty = *t,
                TypeKind::Array(t, _) => ty = *t,
                TypeKind::Func(sig) => ty = sig.ret,
                _ => return ty,
            }
        }
    }

    fn function_def(
        &mut self,
        name: String,
        span: Span,
        ret: TypeId,
        params: Vec<(Option<String>, TypeId, Span)>,
    ) -> Result<(), Diagnostic> {
        let mut vars = Vec::new();
        for (pname, pty, pspan) in &params {
            let pname = pname
                .clone()
                .ok_or_else(|| Diagnostic::new(*pspan, "parameter requires a name"))?;
            vars.push(VarSlot {
                name: pname,
                ty: *pty,
                span: *pspan,
                is_param: true,
                addr_taken: false,
            });
        }
        let body = self.block()?;
        // Replace a matching prototype in place so FuncIds are stable.
        if let Some(existing) = self.funcs.iter_mut().find(|f| f.name == name) {
            if existing.body.is_some() {
                return Err(Diagnostic::new(span, format!("redefinition of `{name}`")));
            }
            *existing = FuncDecl {
                name,
                ret,
                n_params: vars.len(),
                vars,
                body: Some(body),
                span,
            };
        } else {
            self.funcs.push(FuncDecl {
                name,
                ret,
                n_params: vars.len(),
                vars,
                body: Some(body),
                span,
            });
        }
        Ok(())
    }

    // ----- statements -------------------------------------------------------

    fn block(&mut self) -> Result<Block, Diagnostic> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            self.stmt_into(&mut stmts)?;
        }
        Ok(Block { stmts })
    }

    /// Parses one statement; declarations may expand to several `Local`s.
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), Diagnostic> {
        if self.at_type_start() {
            let base = self.declspec()?;
            loop {
                let span = self.span();
                let d = self.declarator()?;
                let (name, ty) = self.apply_declarator(d, base)?;
                let (name, span) =
                    name.ok_or_else(|| Diagnostic::new(span, "declaration requires a name"))?;
                let init = if self.eat(&TokenKind::Eq) {
                    Some(self.initializer()?)
                } else {
                    None
                };
                out.push(Stmt::Local {
                    name,
                    ty,
                    init,
                    span,
                    slot: None,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::Semi)?;
            return Ok(());
        }
        out.push(self.stmt()?);
        Ok(())
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        use TokenKind::*;
        match self.peek().clone() {
            LBrace => Ok(Stmt::Block(self.block()?)),
            Semi => {
                self.bump();
                Ok(Stmt::Block(Block::default()))
            }
            KwIf => {
                self.bump();
                self.expect(LParen)?;
                let cond = self.expr()?;
                self.expect(RParen)?;
                let then_blk = self.stmt_as_block()?;
                let else_blk = if self.eat(&KwElse) {
                    Some(self.stmt_as_block()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            KwWhile => {
                self.bump();
                self.expect(LParen)?;
                let cond = self.expr()?;
                self.expect(RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            KwDo => {
                self.bump();
                let body = self.stmt_as_block()?;
                self.expect(KwWhile)?;
                self.expect(LParen)?;
                let cond = self.expr()?;
                self.expect(RParen)?;
                self.expect(Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            KwFor => {
                self.bump();
                self.expect(LParen)?;
                let init = if self.eat(&Semi) {
                    None
                } else if self.at_type_start() {
                    let mut decls = Vec::new();
                    self.stmt_into(&mut decls)?;
                    // `stmt_into` consumed the `;`. Multiple declarators fold
                    // into a block.
                    Some(Box::new(if decls.len() == 1 {
                        decls.pop().expect("one declaration")
                    } else {
                        Stmt::Block(Block { stmts: decls })
                    }))
                } else {
                    let e = self.expr()?;
                    self.expect(Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Semi)?;
                let step = if self.peek() == &RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            KwReturn => {
                let span = self.span();
                self.bump();
                let value = if self.peek() == &Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Semi)?;
                Ok(Stmt::Return { value, span })
            }
            KwBreak => {
                let span = self.span();
                self.bump();
                self.expect(Semi)?;
                Ok(Stmt::Break(span))
            }
            KwContinue => {
                let span = self.span();
                self.bump();
                self.expect(Semi)?;
                Ok(Stmt::Continue(span))
            }
            KwSwitch => self.switch_stmt(),
            KwSpawn => {
                let span = self.span();
                self.bump();
                let call = self.expr()?;
                if !matches!(self.exprs.get(call).kind, ExprKind::Call { .. }) {
                    return Err(Diagnostic::new(
                        self.exprs.get(call).span,
                        "`spawn` requires a function call",
                    ));
                }
                self.expect(Semi)?;
                Ok(Stmt::Spawn { call, span })
            }
            KwJoin => {
                let span = self.span();
                self.bump();
                self.expect(Semi)?;
                Ok(Stmt::Join(span))
            }
            _ => {
                let e = self.expr()?;
                self.expect(Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn stmt_as_block(&mut self) -> Result<Block, Diagnostic> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            let mut stmts = Vec::new();
            self.stmt_into(&mut stmts)?;
            Ok(Block { stmts })
        }
    }

    /// Parses a structured `switch`. Each case group must end with `break`
    /// or `return` (fallthrough between non-empty bodies is rejected); the
    /// terminating `break` is stripped, since cases are modeled as an
    /// if-else chain downstream.
    fn switch_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        use TokenKind::*;
        let span = self.span();
        self.bump();
        self.expect(LParen)?;
        let scrutinee = self.expr()?;
        self.expect(RParen)?;
        self.expect(LBrace)?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        let mut default: Option<Block> = None;
        while !self.eat(&RBrace) {
            let mut values = Vec::new();
            let mut is_default = false;
            loop {
                match self.peek().clone() {
                    KwCase => {
                        self.bump();
                        let v = self.const_int_expr()?;
                        self.expect(Colon)?;
                        values.push(v);
                    }
                    KwDefault => {
                        self.bump();
                        self.expect(Colon)?;
                        is_default = true;
                    }
                    _ => break,
                }
            }
            if values.is_empty() && !is_default {
                return Err(self.err("expected `case` or `default` label"));
            }
            let mut stmts = Vec::new();
            let mut terminated = false;
            while !matches!(self.peek(), KwCase | KwDefault | RBrace) {
                if self.peek() == &KwBreak {
                    self.bump();
                    self.expect(Semi)?;
                    terminated = true;
                    break;
                }
                let before = stmts.len();
                self.stmt_into(&mut stmts)?;
                if stmts[before..]
                    .iter()
                    .any(|s| matches!(s, Stmt::Return { .. }))
                {
                    terminated = true;
                    break;
                }
            }
            if !terminated && !stmts.is_empty() && !matches!(self.peek(), RBrace) {
                return Err(self.err(
                    "switch fallthrough between non-empty cases is not supported; \
                     end the case with `break` or `return`",
                ));
            }
            let body = Block { stmts };
            if is_default {
                if default.is_some() {
                    return Err(self.err("duplicate `default` label"));
                }
                default = Some(body);
            } else {
                cases.push(SwitchCase { values, body });
            }
        }
        Ok(Stmt::Switch {
            scrutinee,
            cases,
            default,
            span,
        })
    }

    /// Constant integer expressions (case labels, array lengths, macro
    /// bodies): literals, parentheses, unary minus, and `+ - * / % << >>`.
    fn const_int_expr(&mut self) -> Result<i64, Diagnostic> {
        let mut v = self.const_term()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    v += self.const_term()?;
                }
                TokenKind::Minus => {
                    self.bump();
                    v -= self.const_term()?;
                }
                TokenKind::Shl => {
                    self.bump();
                    v <<= self.const_term()?;
                }
                TokenKind::Shr => {
                    self.bump();
                    v >>= self.const_term()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn const_term(&mut self) -> Result<i64, Diagnostic> {
        let mut v = self.const_factor()?;
        loop {
            match self.peek() {
                TokenKind::Star => {
                    self.bump();
                    v *= self.const_factor()?;
                }
                TokenKind::Slash => {
                    self.bump();
                    let d = self.const_factor()?;
                    if d == 0 {
                        return Err(self.err("division by zero in constant"));
                    }
                    v /= d;
                }
                TokenKind::Percent => {
                    self.bump();
                    let d = self.const_factor()?;
                    if d == 0 {
                        return Err(self.err("remainder by zero in constant"));
                    }
                    v %= d;
                }
                _ => return Ok(v),
            }
        }
    }

    fn const_factor(&mut self) -> Result<i64, Diagnostic> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                Ok(-self.const_factor()?)
            }
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(v)
            }
            TokenKind::Ident(n) if self.enum_consts.contains_key(&n) => {
                self.bump();
                Ok(self.enum_consts[&n])
            }
            TokenKind::LParen => {
                self.bump();
                let v = self.const_int_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(v)
            }
            other => Err(self.err(format!(
                "expected constant integer, found {}",
                other.describe()
            ))),
        }
    }

    // ----- expressions ------------------------------------------------------

    fn initializer(&mut self) -> Result<ExprId, Diagnostic> {
        if self.peek() == &TokenKind::LBrace {
            let span = self.span();
            self.bump();
            let mut items = Vec::new();
            while !self.eat(&TokenKind::RBrace) {
                items.push(self.initializer()?);
                if !self.eat(&TokenKind::Comma) {
                    self.expect(TokenKind::RBrace)?;
                    break;
                }
            }
            let end = self.prev_span();
            Ok(self.alloc(ExprKind::InitList(items), span.to(end)))
        } else {
            self.assign_expr()
        }
    }

    fn expr(&mut self) -> Result<ExprId, Diagnostic> {
        let mut e = self.assign_expr()?;
        while self.eat(&TokenKind::Comma) {
            let rhs = self.assign_expr()?;
            let span = self.exprs.get(e).span.to(self.exprs.get(rhs).span);
            e = self.alloc(ExprKind::Comma { lhs: e, rhs }, span);
        }
        Ok(e)
    }

    fn assign_expr(&mut self) -> Result<ExprId, Diagnostic> {
        let lhs = self.cond_expr()?;
        use TokenKind::*;
        let op = match self.peek() {
            Eq => None,
            PlusEq => Some(BinOp::Add),
            MinusEq => Some(BinOp::Sub),
            StarEq => Some(BinOp::Mul),
            SlashEq => Some(BinOp::Div),
            PercentEq => Some(BinOp::Rem),
            AmpEq => Some(BinOp::BitAnd),
            PipeEq => Some(BinOp::BitOr),
            CaretEq => Some(BinOp::BitXor),
            ShlEq => Some(BinOp::Shl),
            ShrEq => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assign_expr()?;
        let span = self.exprs.get(lhs).span.to(self.exprs.get(rhs).span);
        Ok(self.alloc(ExprKind::Assign { op, lhs, rhs }, span))
    }

    fn cond_expr(&mut self) -> Result<ExprId, Diagnostic> {
        let cond = self.binary_expr(0)?;
        if !self.eat(&TokenKind::Question) {
            return Ok(cond);
        }
        let then_e = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let else_e = self.cond_expr()?;
        let span = self.exprs.get(cond).span.to(self.exprs.get(else_e).span);
        Ok(self.alloc(
            ExprKind::Cond {
                cond,
                then_e,
                else_e,
            },
            span,
        ))
    }

    fn binop_at(&self, level: u8) -> Option<BinOp> {
        use TokenKind as T;
        let (op, lvl) = match self.peek() {
            T::PipePipe => (BinOp::Or, 0),
            T::AmpAmp => (BinOp::And, 1),
            T::Pipe => (BinOp::BitOr, 2),
            T::Caret => (BinOp::BitXor, 3),
            T::Amp => (BinOp::BitAnd, 4),
            T::EqEq => (BinOp::Eq, 5),
            T::Ne => (BinOp::Ne, 5),
            T::Lt => (BinOp::Lt, 6),
            T::Gt => (BinOp::Gt, 6),
            T::Le => (BinOp::Le, 6),
            T::Ge => (BinOp::Ge, 6),
            T::Shl => (BinOp::Shl, 7),
            T::Shr => (BinOp::Shr, 7),
            T::Plus => (BinOp::Add, 8),
            T::Minus => (BinOp::Sub, 8),
            T::Star => (BinOp::Mul, 9),
            T::Slash => (BinOp::Div, 9),
            T::Percent => (BinOp::Rem, 9),
            _ => return None,
        };
        (lvl == level).then_some(op)
    }

    fn binary_expr(&mut self, level: u8) -> Result<ExprId, Diagnostic> {
        if level > 9 {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            let span = self.exprs.get(lhs).span.to(self.exprs.get(rhs).span);
            lhs = self.alloc(ExprKind::Binary { op, lhs, rhs }, span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<ExprId, Diagnostic> {
        use TokenKind::*;
        let span = self.span();
        match self.peek().clone() {
            PlusPlus | MinusMinus => {
                let inc = self.peek() == &PlusPlus;
                self.bump();
                let arg = self.unary_expr()?;
                let span = span.to(self.exprs.get(arg).span);
                Ok(self.alloc(
                    ExprKind::IncDec {
                        pre: true,
                        inc,
                        arg,
                    },
                    span,
                ))
            }
            Plus => {
                self.bump();
                self.unary_expr()
            }
            Minus => {
                self.bump();
                let arg = self.unary_expr()?;
                let span = span.to(self.exprs.get(arg).span);
                Ok(self.alloc(ExprKind::Unary { op: UnOp::Neg, arg }, span))
            }
            Bang => {
                self.bump();
                let arg = self.unary_expr()?;
                let span = span.to(self.exprs.get(arg).span);
                Ok(self.alloc(ExprKind::Unary { op: UnOp::Not, arg }, span))
            }
            Tilde => {
                self.bump();
                let arg = self.unary_expr()?;
                let span = span.to(self.exprs.get(arg).span);
                Ok(self.alloc(
                    ExprKind::Unary {
                        op: UnOp::BitNot,
                        arg,
                    },
                    span,
                ))
            }
            Star => {
                self.bump();
                let arg = self.unary_expr()?;
                let span = span.to(self.exprs.get(arg).span);
                Ok(self.alloc(
                    ExprKind::Unary {
                        op: UnOp::Deref,
                        arg,
                    },
                    span,
                ))
            }
            Amp => {
                self.bump();
                let arg = self.unary_expr()?;
                let span = span.to(self.exprs.get(arg).span);
                Ok(self.alloc(
                    ExprKind::Unary {
                        op: UnOp::Addr,
                        arg,
                    },
                    span,
                ))
            }
            KwSizeof => {
                self.bump();
                if self.peek() == &LParen && self.kind_is_type_start(self.peek_at(1)) {
                    self.bump();
                    let base = self.declspec()?;
                    let d = self.declarator()?;
                    let (name, ty) = self.apply_declarator(d, base)?;
                    if name.is_some() {
                        return Err(self.err("sizeof type must be abstract"));
                    }
                    let end = self.expect(RParen)?;
                    Ok(self.alloc(ExprKind::SizeofType(ty), span.to(end)))
                } else {
                    let arg = self.unary_expr()?;
                    let span = span.to(self.exprs.get(arg).span);
                    Ok(self.alloc(ExprKind::SizeofExpr(arg), span))
                }
            }
            LParen if self.kind_is_type_start(self.peek_at(1)) => {
                self.bump();
                let base = self.declspec()?;
                let d = self.declarator()?;
                let (name, ty) = self.apply_declarator(d, base)?;
                if name.is_some() {
                    return Err(self.err("cast type must be abstract"));
                }
                self.expect(RParen)?;
                let arg = self.unary_expr()?;
                let span = span.to(self.exprs.get(arg).span);
                // `(T*)0` is NULL.
                if self.types.is_ptr(ty) {
                    if let ExprKind::IntLit(0) = self.exprs.get(arg).kind {
                        return Ok(self.alloc(ExprKind::Null, span));
                    }
                }
                Ok(self.alloc(ExprKind::Cast { ty, arg }, span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<ExprId, Diagnostic> {
        use TokenKind::*;
        let mut e = self.primary_expr()?;
        loop {
            let span = self.exprs.get(e).span;
            match self.peek().clone() {
                LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat(&Comma) {
                                break;
                            }
                        }
                        self.expect(RParen)?;
                    }
                    let end = self.prev_span();
                    e = self.alloc(ExprKind::Call { callee: e, args }, span.to(end));
                }
                LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    let end = self.expect(RBracket)?;
                    e = self.alloc(ExprKind::Index { base: e, index }, span.to(end));
                }
                Dot | Arrow => {
                    let arrow = self.peek() == &Arrow;
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    e = self.alloc(
                        ExprKind::Member {
                            base: e,
                            field,
                            arrow,
                            record: None,
                            field_index: None,
                        },
                        span.to(fspan),
                    );
                }
                PlusPlus | MinusMinus => {
                    let inc = self.peek() == &PlusPlus;
                    let end = self.span();
                    self.bump();
                    e = self.alloc(
                        ExprKind::IncDec {
                            pre: false,
                            inc,
                            arg: e,
                        },
                        span.to(end),
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<ExprId, Diagnostic> {
        use TokenKind::*;
        let span = self.span();
        match self.peek().clone() {
            IntLit(v) => {
                self.bump();
                Ok(self.alloc(ExprKind::IntLit(v), span))
            }
            FloatLit(bits) => {
                self.bump();
                Ok(self.alloc(ExprKind::FloatLit(f64::from_bits(bits)), span))
            }
            StrLit(s) => {
                self.bump();
                // Adjacent string literals concatenate.
                let mut s = s;
                let mut end = span;
                while let StrLit(next) = self.peek().clone() {
                    end = self.span();
                    self.bump();
                    s.push_str(&next);
                }
                Ok(self.alloc(ExprKind::StrLit(s), span.to(end)))
            }
            KwNull => {
                self.bump();
                Ok(self.alloc(ExprKind::Null, span))
            }
            Ident(name) => {
                self.bump();
                if let Some(&v) = self.enum_consts.get(&name) {
                    return Ok(self.alloc(ExprKind::IntLit(v), span));
                }
                Ok(self.alloc(ExprKind::Ident { name, target: None }, span))
            }
            LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Program {
        parse(lex(src).expect("lex")).expect("parse")
    }

    fn parse_err(src: &str) -> Diagnostic {
        parse(lex(src).expect("lex")).expect_err("expected parse error")
    }

    #[test]
    fn parses_globals_and_functions() {
        let p = parse_ok("int g; int main(void) { return g; }");
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].n_params, 0);
    }

    #[test]
    fn parses_pointer_declarators() {
        let p = parse_ok("int **pp; int *arr_of_ptr[10]; int (*ptr_to_arr)[10];");
        let t = &p.types;
        let pp = p.globals[0].ty;
        assert!(t.is_ptr(pp) && t.is_ptr(t.pointee(pp).unwrap()));
        let aop = p.globals[1].ty;
        assert!(t.is_array(aop) && t.is_ptr(t.element(aop).unwrap()));
        let pta = p.globals[2].ty;
        assert!(t.is_ptr(pta) && t.is_array(t.pointee(pta).unwrap()));
    }

    #[test]
    fn parses_function_pointer_declarators() {
        let p = parse_ok("int (*handler)(int, char*); void go(int (*f)(int)) { f(1); }");
        assert!(p.types.is_func_ptr(p.globals[0].ty));
        let go = &p.funcs[0];
        assert_eq!(go.n_params, 1);
        assert!(p.types.is_func_ptr(go.vars[0].ty));
    }

    #[test]
    fn parses_struct_with_self_pointer() {
        let p = parse_ok(
            "struct node { int v; struct node *next; };\n\
             struct node *head;",
        );
        assert!(p.types.is_ptr(p.globals[0].ty));
        let rec = p.types.records().first().expect("one record");
        assert_eq!(rec.fields.len(), 2);
        assert!(rec.defined);
    }

    #[test]
    fn parses_enums() {
        let p = parse_ok(
            "enum color { RED, GREEN = 5, BLUE };\n\
             enum color paint;\n\
             int pick(int c) { switch (c) { case RED: return 1; \
             case BLUE: return 2; default: return 0; } }\n\
             int table[BLUE];",
        );
        // `paint` is a plain int; BLUE = 6 sizes the array.
        assert!(matches!(
            p.types.kind(p.globals[0].ty),
            crate::types::TypeKind::Int
        ));
        assert!(matches!(
            p.types.kind(p.globals[1].ty),
            crate::types::TypeKind::Array(_, 6)
        ));
        // The enum constants fold into the case labels.
        let Stmt::Switch { cases, .. } = &p.funcs[0].body.as_ref().unwrap().stmts[0] else {
            panic!("expected a switch");
        };
        assert_eq!(cases[0].values, vec![0]);
        assert_eq!(cases[1].values, vec![6]);
    }

    #[test]
    fn parses_typedef() {
        let p = parse_ok("typedef struct pt { int x; } pt_t; pt_t *origin;");
        assert!(p.types.is_ptr(p.globals[0].ty));
    }

    #[test]
    fn prototype_then_definition_share_one_func() {
        let p = parse_ok("int f(int x); int f(int x) { return x; }");
        assert_eq!(p.funcs.len(), 1);
        assert!(p.funcs[0].body.is_some());
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_ok(
            "int main(void) {\n\
               int i; int n;\n\
               n = 0;\n\
               for (i = 0; i < 10; i++) { if (i % 2) continue; n += i; }\n\
               while (n > 0) n--;\n\
               do { n++; } while (n < 3);\n\
               return n;\n\
             }",
        );
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn parses_switch_without_fallthrough() {
        let p = parse_ok(
            "int f(int c) { switch (c) { case 1: case 2: return 1; \
             case 3: c = 9; break; default: c = 0; break; } return c; }",
        );
        let Stmt::Switch { cases, default, .. } = &p.funcs[0].body.as_ref().unwrap().stmts[0]
        else {
            panic!("expected switch");
        };
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].values, vec![1, 2]);
        assert!(default.is_some());
    }

    #[test]
    fn rejects_switch_fallthrough() {
        let d =
            parse_err("int f(int c) { switch (c) { case 1: c = 2; case 2: break; } return c; }");
        assert!(d.message.contains("fallthrough"), "{}", d.message);
    }

    #[test]
    fn parses_casts_and_null() {
        let p = parse_ok("int main(void) { int *p; p = (int*)0; p = NULL; return 0; }");
        let body = p.funcs[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 4);
    }

    #[test]
    fn parses_sizeof_forms() {
        parse_ok(
            "struct s { int a; }; int main(void) { int n; n = sizeof(struct s); \
             n = sizeof(int*); n = sizeof n; return n; }",
        );
    }

    #[test]
    fn parses_ternary_and_comma() {
        parse_ok("int main(void) { int a; int b; a = 1, b = a ? 2 : 3; return b; }");
    }

    #[test]
    fn parses_init_lists() {
        let p = parse_ok("int a[3] = {1, 2, 3}; struct p { int x; int y; }; struct p o = {4, 5};");
        assert!(matches!(
            p.exprs.get(p.globals[0].init.unwrap()).kind,
            ExprKind::InitList(_)
        ));
    }

    #[test]
    fn parses_string_concatenation() {
        let p = parse_ok("char *s = \"ab\" \"cd\";");
        let ExprKind::StrLit(ref s) = p.exprs.get(p.globals[0].init.unwrap()).kind else {
            panic!("expected string literal");
        };
        assert_eq!(s, "abcd");
    }

    #[test]
    fn rejects_missing_semicolon() {
        let d = parse_err("int x");
        assert!(d.message.contains("expected"), "{}", d.message);
    }

    #[test]
    fn rejects_struct_redefinition() {
        let d = parse_err("struct s { int a; }; struct s { int b; };");
        assert!(d.message.contains("redefinition"), "{}", d.message);
    }

    #[test]
    fn parses_pointer_returning_function() {
        let p = parse_ok("int g; int *addr(void) { return &g; }");
        let f = &p.funcs[0];
        assert_eq!(f.name, "addr");
        assert!(p.types.is_ptr(f.ret));
    }

    #[test]
    fn multi_declarator_globals() {
        let p = parse_ok("int a, *b, c[4];");
        assert_eq!(p.globals.len(), 3);
        assert!(p.types.is_ptr(p.globals[1].ty));
        assert!(p.types.is_array(p.globals[2].ty));
    }
}
