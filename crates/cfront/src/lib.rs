//! # cfront — a mini-C frontend
//!
//! This crate implements the C-subset frontend for the reproduction of
//! Erik Ruf's *Context-Insensitive Alias Analysis Reconsidered* (PLDI
//! 1995). It covers the language features the paper's analysis observes:
//! multi-level pointers, structs/unions, arrays, function pointers,
//! address-of, heap allocation via modeled `malloc`-family builtins,
//! string literals, recursion, and the usual statement forms.
//!
//! Deliberately outside the subset — matching the paper's own caveats
//! (§2) — are pointer/integer casts, `setjmp`/`longjmp`, signal handlers,
//! bitfields, and varargs definitions.
//!
//! ## Pipeline
//!
//! ```
//! use cfront::compile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = compile("int g; int main(void) { int *p; p = &g; *p = 4; return g; }")?;
//! assert_eq!(program.funcs.len(), 1);
//! assert!(program.func_by_name("main").is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod source;
pub mod token;
pub mod types;

pub use ast::Program;
pub use source::{Diagnostic, FrontendError, SourceFile, Span};

/// Lexes, parses, and semantically checks `src`, returning a fully
/// resolved [`Program`] ready for lowering to the VDG.
///
/// # Errors
///
/// Returns every diagnostic produced by the lexer (first error only),
/// parser (first error only), or semantic checker (all errors).
pub fn compile(src: &str) -> Result<Program, FrontendError> {
    let tokens = lexer::lex(src).map_err(FrontendError::single)?;
    let mut program = parser::parse(tokens).map_err(FrontendError::single)?;
    sema::check(&mut program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_end_to_end() {
        let p = compile(
            "struct list { int v; struct list *next; };\n\
             struct list *cons(int v, struct list *tail) {\n\
                 struct list *n;\n\
                 n = (struct list*)malloc(sizeof(struct list));\n\
                 n->v = v; n->next = tail;\n\
                 return n;\n\
             }\n\
             int sum(struct list *l) {\n\
                 int s; s = 0;\n\
                 while (l != NULL) { s += l->v; l = l->next; }\n\
                 return s;\n\
             }\n\
             int main(void) { return sum(cons(1, cons(2, NULL))); }",
        )
        .expect("compiles");
        assert_eq!(p.funcs.len(), 3);
    }

    #[test]
    fn compile_reports_sema_errors() {
        let err = compile("int main(void) { return undefined_var; }").unwrap_err();
        assert_eq!(err.diagnostics.len(), 1);
    }

    #[test]
    fn compile_reports_parse_errors() {
        assert!(compile("int main(void) { return 0 }").is_err());
    }
}
