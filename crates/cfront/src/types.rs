//! Interned types for the mini-C language.
//!
//! The subset mirrors what Ruf's analysis observes: scalars (`int`, `char`,
//! `float`/`double` collapse to [`TypeKind::Float`]), pointers, arrays,
//! structs/unions, and function types (which appear only behind pointers or
//! as the type of a function declaration).

use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Identifier of a struct or union definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

/// Structural kind of a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// The `void` type.
    Void,
    /// All integer flavors (`int`, `char`, `short`, `long`, `unsigned`).
    /// `char` is kept distinct so array-of-char can host string literals.
    Int,
    /// The character type (an integer in this model).
    Char,
    /// `float` and `double`.
    Float,
    /// Pointer to the payload type.
    Ptr(TypeId),
    /// Fixed-size array. A length of 0 means "unsized" (e.g. `int a[]`).
    Array(TypeId, u32),
    /// Struct or union; fields live in the [`Record`] table.
    Record(RecordId),
    /// Function type; only meaningful behind a pointer or on declarations.
    Func(FuncSig),
}

/// Signature of a function type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncSig {
    /// Parameter types, in order.
    pub params: Vec<TypeId>,
    /// Return type.
    pub ret: TypeId,
    /// `true` for printf-style builtins; user functions are never varargs.
    pub varargs: bool,
}

/// A struct/union field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeId,
}

/// A struct or union definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The `struct`/`union` tag.
    pub name: String,
    /// Whether this is a `union` (members share storage).
    pub is_union: bool,
    /// Fields, in declaration order.
    pub fields: Vec<Field>,
    /// `false` while only forward-declared.
    pub defined: bool,
}

impl Record {
    /// Finds a field index by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// Interning table for types and records.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    kinds: Vec<TypeKind>,
    interned: HashMap<TypeKind, TypeId>,
    records: Vec<Record>,
    record_names: HashMap<(String, bool), RecordId>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `kind`, returning a stable [`TypeId`].
    pub fn intern(&mut self, kind: TypeKind) -> TypeId {
        if let Some(&id) = self.interned.get(&kind) {
            return id;
        }
        let id = TypeId(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        self.interned.insert(kind, id);
        id
    }

    /// Interns `void`.
    pub fn void(&mut self) -> TypeId {
        self.intern(TypeKind::Void)
    }
    /// Interns `int`.
    pub fn int(&mut self) -> TypeId {
        self.intern(TypeKind::Int)
    }
    /// Interns `char`.
    pub fn char(&mut self) -> TypeId {
        self.intern(TypeKind::Char)
    }
    /// Interns the floating-point type.
    pub fn float(&mut self) -> TypeId {
        self.intern(TypeKind::Float)
    }
    /// Interns pointer-to-`inner`.
    pub fn ptr(&mut self, inner: TypeId) -> TypeId {
        self.intern(TypeKind::Ptr(inner))
    }
    /// Interns `inner[len]`.
    pub fn array(&mut self, inner: TypeId, len: u32) -> TypeId {
        self.intern(TypeKind::Array(inner, len))
    }
    /// Interns `void*`.
    pub fn void_ptr(&mut self) -> TypeId {
        let v = self.void();
        self.ptr(v)
    }
    /// Interns `char*`.
    pub fn char_ptr(&mut self) -> TypeId {
        let c = self.char();
        self.ptr(c)
    }

    /// The kind of `id`.
    pub fn kind(&self, id: TypeId) -> &TypeKind {
        &self.kinds[id.0 as usize]
    }

    /// Declares (or retrieves) a record by name, initially undefined.
    pub fn declare_record(&mut self, name: &str, is_union: bool) -> RecordId {
        if let Some(&id) = self.record_names.get(&(name.to_string(), is_union)) {
            return id;
        }
        let id = RecordId(self.records.len() as u32);
        self.records.push(Record {
            name: name.to_string(),
            is_union,
            fields: Vec::new(),
            defined: false,
        });
        self.record_names.insert((name.to_string(), is_union), id);
        id
    }

    /// Fills in the fields of a previously declared record.
    ///
    /// Returns `false` if the record was already defined (a redefinition).
    pub fn define_record(&mut self, id: RecordId, fields: Vec<Field>) -> bool {
        let r = &mut self.records[id.0 as usize];
        if r.defined {
            return false;
        }
        r.fields = fields;
        r.defined = true;
        true
    }

    /// Accessor for a record definition.
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id.0 as usize]
    }

    /// All records in declaration order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether no types have been interned.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    // ----- predicates ---------------------------------------------------

    /// `int`, `char`, or `float`: arithmetic scalar.
    pub fn is_arith(&self, id: TypeId) -> bool {
        matches!(
            self.kind(id),
            TypeKind::Int | TypeKind::Char | TypeKind::Float
        )
    }

    /// Any pointer type.
    pub fn is_ptr(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Ptr(_))
    }

    /// Pointer to a function type.
    pub fn is_func_ptr(&self, id: TypeId) -> bool {
        match self.kind(id) {
            TypeKind::Ptr(inner) => matches!(self.kind(*inner), TypeKind::Func(_)),
            _ => false,
        }
    }

    /// Array type.
    pub fn is_array(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Array(..))
    }

    /// Struct, union, or array: a value with internal structure.
    pub fn is_aggregate(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Record(_) | TypeKind::Array(..))
    }

    /// Struct or union.
    pub fn is_record(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Record(_))
    }

    /// Function (not function pointer).
    pub fn is_func(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Func(_))
    }

    /// Pointee of a pointer type.
    pub fn pointee(&self, id: TypeId) -> Option<TypeId> {
        match self.kind(id) {
            TypeKind::Ptr(t) => Some(*t),
            _ => None,
        }
    }

    /// Element type of an array.
    pub fn element(&self, id: TypeId) -> Option<TypeId> {
        match self.kind(id) {
            TypeKind::Array(t, _) => Some(*t),
            _ => None,
        }
    }

    /// Array-to-pointer decay; other types pass through unchanged.
    pub fn decay(&mut self, id: TypeId) -> TypeId {
        match self.kind(id) {
            TypeKind::Array(t, _) => {
                let t = *t;
                self.ptr(t)
            }
            _ => id,
        }
    }

    /// Whether a value of this type can transitively hold a pointer or
    /// function value. Drives the "alias-related output" statistic of
    /// Figure 2 and the aggregate column of Figure 3.
    pub fn contains_pointer(&self, id: TypeId) -> bool {
        match self.kind(id) {
            TypeKind::Ptr(_) | TypeKind::Func(_) => true,
            TypeKind::Array(t, _) => self.contains_pointer(*t),
            TypeKind::Record(r) => {
                let r = self.record(*r);
                r.fields.iter().any(|f| self.contains_pointer(f.ty))
            }
            _ => false,
        }
    }

    /// A deterministic byte size used to fold `sizeof`. Padding-free and
    /// not ABI-accurate; only the analysis-irrelevant constant matters.
    pub fn size_of(&self, id: TypeId) -> u64 {
        match self.kind(id) {
            TypeKind::Void => 1,
            TypeKind::Char => 1,
            TypeKind::Int => 4,
            TypeKind::Float => 8,
            TypeKind::Ptr(_) | TypeKind::Func(_) => 8,
            TypeKind::Array(t, n) => self.size_of(*t) * (*n as u64).max(1),
            TypeKind::Record(r) => {
                let r = self.record(*r);
                if r.is_union {
                    r.fields
                        .iter()
                        .map(|f| self.size_of(f.ty))
                        .max()
                        .unwrap_or(1)
                } else {
                    r.fields
                        .iter()
                        .map(|f| self.size_of(f.ty))
                        .sum::<u64>()
                        .max(1)
                }
            }
        }
    }

    /// Whether a value of type `src` may be assigned to a location of type
    /// `dst` without an explicit cast. Mini-C is permissive in the ways C
    /// compilers of the era were: `void*` converts freely, integer types
    /// interconvert, and the integer literal 0 (handled by the caller)
    /// converts to any pointer.
    pub fn assignable(&self, dst: TypeId, src: TypeId) -> bool {
        if dst == src {
            return true;
        }
        match (self.kind(dst), self.kind(src)) {
            (TypeKind::Int | TypeKind::Char | TypeKind::Float, _) if self.is_arith(src) => true,
            (TypeKind::Ptr(a), TypeKind::Ptr(b)) => {
                matches!(self.kind(*a), TypeKind::Void)
                    || matches!(self.kind(*b), TypeKind::Void)
                    // Era-typical laxity: char* and other pointers interconvert
                    // only through void* or casts; identical pointees needed here.
                    || a == b
            }
            _ => false,
        }
    }

    /// Renders `id` as C-ish syntax (for diagnostics and the pretty-printer).
    pub fn display(&self, id: TypeId) -> String {
        match self.kind(id) {
            TypeKind::Void => "void".into(),
            TypeKind::Int => "int".into(),
            TypeKind::Char => "char".into(),
            TypeKind::Float => "double".into(),
            TypeKind::Ptr(t) => format!("{}*", self.display(*t)),
            TypeKind::Array(t, n) => format!("{}[{}]", self.display(*t), n),
            TypeKind::Record(r) => {
                let r = self.record(*r);
                format!("{} {}", if r.is_union { "union" } else { "struct" }, r.name)
            }
            TypeKind::Func(sig) => {
                let params = sig
                    .params
                    .iter()
                    .map(|p| self.display(*p))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{}({})", self.display(sig.ret), params)
            }
        }
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = TypeTable::new();
        let i1 = t.int();
        let i2 = t.int();
        assert_eq!(i1, i2);
        let p1 = t.ptr(i1);
        let p2 = t.ptr(i2);
        assert_eq!(p1, p2);
        assert_ne!(i1, p1);
    }

    #[test]
    fn decay_turns_arrays_into_pointers() {
        let mut t = TypeTable::new();
        let int = t.int();
        let arr = t.array(int, 10);
        let decayed = t.decay(arr);
        assert_eq!(t.kind(decayed), &TypeKind::Ptr(int));
        assert_eq!(t.decay(int), int);
    }

    #[test]
    fn contains_pointer_walks_aggregates() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ip = t.ptr(int);
        let r = t.declare_record("node", false);
        let rec_ty = t.intern(TypeKind::Record(r));
        let self_ptr = t.ptr(rec_ty);
        t.define_record(
            r,
            vec![
                Field {
                    name: "v".into(),
                    ty: int,
                },
                Field {
                    name: "next".into(),
                    ty: self_ptr,
                },
            ],
        );
        assert!(t.contains_pointer(rec_ty));
        assert!(t.contains_pointer(ip));
        assert!(!t.contains_pointer(int));
        let arr = t.array(int, 4);
        assert!(!t.contains_pointer(arr));
        let parr = t.array(ip, 4);
        assert!(t.contains_pointer(parr));
    }

    #[test]
    fn record_redefinition_rejected() {
        let mut t = TypeTable::new();
        let r = t.declare_record("s", false);
        assert!(t.define_record(r, vec![]));
        assert!(!t.define_record(r, vec![]));
    }

    #[test]
    fn struct_and_union_names_are_distinct_namespaces() {
        let mut t = TypeTable::new();
        let s = t.declare_record("u", false);
        let u = t.declare_record("u", true);
        assert_ne!(s, u);
    }

    #[test]
    fn assignability_rules() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ch = t.char();
        let vp = t.void_ptr();
        let ip = t.ptr(int);
        let cp = t.char_ptr();
        assert!(t.assignable(int, ch));
        assert!(t.assignable(vp, ip));
        assert!(t.assignable(ip, vp));
        assert!(t.assignable(ip, ip));
        assert!(!t.assignable(ip, cp));
        assert!(!t.assignable(ip, int));
    }

    #[test]
    fn sizeof_is_deterministic() {
        let mut t = TypeTable::new();
        let int = t.int();
        let arr = t.array(int, 10);
        assert_eq!(t.size_of(arr), 40);
        let r = t.declare_record("pair", false);
        t.define_record(
            r,
            vec![
                Field {
                    name: "a".into(),
                    ty: int,
                },
                Field {
                    name: "b".into(),
                    ty: int,
                },
            ],
        );
        let rt = t.intern(TypeKind::Record(r));
        assert_eq!(t.size_of(rt), 8);
    }

    #[test]
    fn display_renders_nested_types() {
        let mut t = TypeTable::new();
        let int = t.int();
        let ipp = {
            let ip = t.ptr(int);
            t.ptr(ip)
        };
        assert_eq!(t.display(ipp), "int**");
    }
}
