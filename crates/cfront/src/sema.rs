//! Name resolution and type checking for mini-C.
//!
//! [`check`] resolves every identifier, assigns a type to every expression,
//! flattens block-scoped locals into their function's variable table, and
//! marks address-taken variables. The checked program is what `vdg` lowers.

use crate::ast::*;
use crate::source::{Diagnostic, FrontendError, Span};
use crate::types::{FuncSig, TypeId, TypeKind, TypeTable};
use std::collections::HashMap;

/// Runs semantic analysis over a freshly parsed program, mutating it in
/// place (expression types, identifier targets, local slots).
///
/// # Errors
///
/// Returns all diagnostics discovered (the checker recovers per function).
pub fn check(program: &mut Program) -> Result<(), FrontendError> {
    let mut diags = Vec::new();

    // Global maps, computed up front so function bodies can reference
    // later definitions.
    let mut global_map = HashMap::new();
    for (i, g) in program.globals.iter().enumerate() {
        if global_map
            .insert(g.name.clone(), GlobalId(i as u32))
            .is_some()
        {
            diags.push(Diagnostic::new(
                g.span,
                format!("redefinition of global `{}`", g.name),
            ));
        }
    }
    let mut func_map = HashMap::new();
    for (i, f) in program.funcs.iter().enumerate() {
        func_map.insert(f.name.clone(), FuncId(i as u32));
        if global_map.contains_key(&f.name) {
            diags.push(Diagnostic::new(
                f.span,
                format!("`{}` defined as both global and function", f.name),
            ));
        }
    }
    let func_sigs: Vec<FnInfo> = program
        .funcs
        .iter()
        .map(|f| FnInfo {
            ret: f.ret,
            params: f.params().iter().map(|p| p.ty).collect(),
            defined: f.body.is_some(),
        })
        .collect();

    let Program {
        ref mut types,
        ref mut globals,
        ref mut funcs,
        ref mut exprs,
    } = *program;

    // Check global initializers in a scope with no locals.
    for gi in 0..globals.len() {
        let (ty, init, span) = {
            let g = &globals[gi];
            (g.ty, g.init, g.span)
        };
        if types.is_func(ty) {
            diags.push(Diagnostic::new(span, "global cannot have function type"));
            continue;
        }
        if let Some(init) = init {
            let mut ck = Checker {
                types,
                exprs,
                globals,
                global_map: &global_map,
                func_map: &func_map,
                func_sigs: &func_sigs,
                scopes: Vec::new(),
                vars: &mut Vec::new(),
                ret: None,
                in_main: false,
                diags: &mut diags,
            };
            ck.check_initializer(init, ty);
        }
    }

    #[allow(clippy::needless_range_loop)] // split borrows of `funcs[fi]` fields
    for fi in 0..funcs.len() {
        let Some(mut body) = funcs[fi].body.take() else {
            continue;
        };
        let mut vars = std::mem::take(&mut funcs[fi].vars);
        let ret = funcs[fi].ret;
        let in_main = funcs[fi].name == "main";
        {
            let mut ck = Checker {
                types,
                exprs,
                globals,
                global_map: &global_map,
                func_map: &func_map,
                func_sigs: &func_sigs,
                scopes: vec![HashMap::new()],
                vars: &mut vars,
                ret: Some(ret),
                in_main,
                diags: &mut diags,
            };
            // Parameters populate the outermost scope.
            for (i, v) in ck.vars.iter().enumerate() {
                ck.scopes[0].insert(v.name.clone(), LocalId(i as u32));
            }
            ck.check_block(&mut body);
        }
        funcs[fi].vars = vars;
        funcs[fi].body = Some(body);
    }

    if diags.is_empty() {
        Ok(())
    } else {
        Err(FrontendError { diagnostics: diags })
    }
}

#[derive(Debug, Clone)]
struct FnInfo {
    ret: TypeId,
    params: Vec<TypeId>,
    defined: bool,
}

struct Checker<'a> {
    types: &'a mut TypeTable,
    exprs: &'a mut ExprArena,
    globals: &'a [GlobalDecl],
    global_map: &'a HashMap<String, GlobalId>,
    func_map: &'a HashMap<String, FuncId>,
    func_sigs: &'a [FnInfo],
    /// Innermost scope last; maps names to slots in `vars`.
    scopes: Vec<HashMap<String, LocalId>>,
    vars: &'a mut Vec<VarSlot>,
    /// Return type; `None` when checking global initializers.
    ret: Option<TypeId>,
    /// Whether the enclosing function is `main` (gates `spawn`/`join`).
    in_main: bool,
    diags: &'a mut Vec<Diagnostic>,
}

impl<'a> Checker<'a> {
    fn error(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.push(Diagnostic::new(span, msg));
    }

    fn lookup(&self, name: &str) -> Option<IdentTarget> {
        for scope in self.scopes.iter().rev() {
            if let Some(&slot) = scope.get(name) {
                return Some(IdentTarget::Local(slot));
            }
        }
        if let Some(&g) = self.global_map.get(name) {
            return Some(IdentTarget::Global(g));
        }
        if let Some(&f) = self.func_map.get(name) {
            return Some(IdentTarget::Func(f));
        }
        Builtin::by_name(name).map(IdentTarget::Builtin)
    }

    // ----- statements -----------------------------------------------------

    fn check_block(&mut self, block: &mut Block) {
        self.scopes.push(HashMap::new());
        for stmt in &mut block.stmts {
            self.check_stmt(stmt);
        }
        self.scopes.pop();
    }

    fn check_stmt(&mut self, stmt: &mut Stmt) {
        match stmt {
            Stmt::Expr(e) => {
                self.check_expr(*e);
            }
            Stmt::Local {
                name,
                ty,
                init,
                span,
                slot,
            } => {
                if self.types.is_func(*ty) {
                    self.error(*span, "local cannot have function type");
                }
                let id = LocalId(self.vars.len() as u32);
                self.vars.push(VarSlot {
                    name: name.clone(),
                    ty: *ty,
                    span: *span,
                    is_param: false,
                    addr_taken: false,
                });
                self.scopes
                    .last_mut()
                    .expect("at least one scope")
                    .insert(name.clone(), id);
                *slot = Some(id);
                if let Some(init) = *init {
                    self.check_initializer(init, *ty);
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.check_scalar_cond(*cond);
                self.check_block(then_blk);
                if let Some(e) = else_blk {
                    self.check_block(e);
                }
            }
            Stmt::While { cond, body } => {
                self.check_scalar_cond(*cond);
                self.check_block(body);
            }
            Stmt::DoWhile { body, cond } => {
                self.check_block(body);
                self.check_scalar_cond(*cond);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // `for` introduces a scope for its init declaration.
                self.scopes.push(HashMap::new());
                if let Some(s) = init {
                    self.check_stmt(s);
                }
                if let Some(c) = *cond {
                    self.check_scalar_cond(c);
                }
                if let Some(s) = *step {
                    self.check_expr(s);
                }
                self.check_block(body);
                self.scopes.pop();
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                span,
            } => {
                let t = self.check_expr(*scrutinee);
                if let Some(t) = t {
                    if !self.types.is_arith(t) {
                        self.error(*span, "switch scrutinee must be integral");
                    }
                }
                for c in cases {
                    self.check_block(&mut c.body);
                }
                if let Some(d) = default {
                    self.check_block(d);
                }
            }
            Stmt::Return { value, span } => {
                let ret = self.ret.expect("return outside function");
                match (*value, self.types.kind(ret).clone()) {
                    (None, TypeKind::Void) => {}
                    (None, _) => self.error(*span, "non-void function must return a value"),
                    (Some(v), TypeKind::Void) => self.error(
                        self.exprs.get(v).span,
                        "void function cannot return a value",
                    ),
                    (Some(v), _) => {
                        if let Some(vt) = self.check_expr(v) {
                            self.require_assignable(ret, vt, v);
                        }
                    }
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::Block(b) => self.check_block(b),
            Stmt::Spawn { call, span } => {
                let (call, span) = (*call, *span);
                if !self.in_main {
                    self.error(span, "`spawn` is only allowed in `main`");
                }
                self.check_expr(call);
                // The thread entry must be a statically named user
                // function: spawn sites are call-graph roots, so an
                // indirect entry would leave the thread's code unknown.
                let callee = match self.exprs.get(call).kind {
                    ExprKind::Call { callee, .. } => callee,
                    _ => unreachable!("parser only builds Spawn over calls"),
                };
                match self.exprs.get(callee).kind {
                    ExprKind::Ident {
                        target: Some(IdentTarget::Func(f)),
                        ref name,
                        ..
                    } => {
                        if name == "main" {
                            self.error(span, "cannot `spawn` `main`");
                        }
                        let _ = f;
                    }
                    ExprKind::Ident {
                        target: Some(IdentTarget::Builtin(_)),
                        ..
                    } => {
                        self.error(span, "cannot `spawn` a library builtin");
                    }
                    _ => self.error(span, "`spawn` requires a direct call to a named function"),
                }
            }
            Stmt::Join(span) => {
                if !self.in_main {
                    self.error(*span, "`join` is only allowed in `main`");
                }
            }
        }
    }

    fn check_scalar_cond(&mut self, e: ExprId) {
        if let Some(t) = self.check_expr(e) {
            if !(self.types.is_arith(t) || self.types.is_ptr(t) || self.types.is_array(t)) {
                let span = self.exprs.get(e).span;
                let d = self.types.display(t);
                self.error(span, format!("condition must be scalar, found `{d}`"));
            }
        }
    }

    // ----- initializers -----------------------------------------------------

    fn check_initializer(&mut self, init: ExprId, target: TypeId) {
        let span = self.exprs.get(init).span;
        if let ExprKind::InitList(items) = self.exprs.get(init).kind.clone() {
            match self.types.kind(target).clone() {
                TypeKind::Array(elem, len) => {
                    if len != 0 && items.len() as u32 > len {
                        self.error(span, "too many array initializer elements");
                    }
                    for item in items {
                        self.check_initializer(item, elem);
                    }
                }
                TypeKind::Record(r) => {
                    let fields: Vec<TypeId> =
                        self.types.record(r).fields.iter().map(|f| f.ty).collect();
                    if items.len() > fields.len() {
                        self.error(span, "too many struct initializer elements");
                    }
                    for (item, fty) in items.into_iter().zip(fields) {
                        self.check_initializer(item, fty);
                    }
                }
                _ => self.error(span, "initializer list requires an aggregate target"),
            }
            self.exprs.get_mut(init).ty = Some(target);
            return;
        }
        // `char buf[] = "text"` and `char buf[N] = "text"`.
        if let (ExprKind::StrLit(_), TypeKind::Array(elem, _)) =
            (&self.exprs.get(init).kind, self.types.kind(target).clone())
        {
            if matches!(self.types.kind(elem), TypeKind::Char) {
                self.exprs.get_mut(init).ty = Some(target);
                return;
            }
        }
        if let Some(t) = self.check_expr(init) {
            self.require_assignable(target, t, init);
        }
    }

    // ----- expressions ------------------------------------------------------

    fn set_ty(&mut self, e: ExprId, ty: TypeId) -> Option<TypeId> {
        self.exprs.get_mut(e).ty = Some(ty);
        Some(ty)
    }

    /// Decayed type: arrays become pointers, functions become function
    /// pointers (for use in value position).
    fn decayed(&mut self, t: TypeId) -> TypeId {
        if self.types.is_array(t) {
            self.types.decay(t)
        } else if self.types.is_func(t) {
            self.types.ptr(t)
        } else {
            t
        }
    }

    fn require_assignable(&mut self, dst: TypeId, src: TypeId, at: ExprId) {
        let src = self.decayed(src);
        if !self.types.assignable(dst, src) {
            let span = self.exprs.get(at).span;
            let (d, s) = (self.types.display(dst), self.types.display(src));
            self.error(span, format!("cannot assign `{s}` to `{d}`"));
        }
    }

    fn is_lvalue(&self, e: ExprId) -> bool {
        match &self.exprs.get(e).kind {
            ExprKind::Ident { target, .. } => !matches!(
                target,
                Some(IdentTarget::Func(_)) | Some(IdentTarget::Builtin(_))
            ),
            ExprKind::Unary {
                op: UnOp::Deref, ..
            } => true,
            ExprKind::Member { base, arrow, .. } => *arrow || self.is_lvalue(*base),
            ExprKind::Index { .. } => true,
            ExprKind::StrLit(_) => true,
            _ => false,
        }
    }

    /// Marks the root variable of an lvalue expression as address-taken.
    fn mark_addr_taken(&mut self, e: ExprId) {
        match self.exprs.get(e).kind.clone() {
            // Globals are always store-resident; nothing to record for them.
            ExprKind::Ident {
                target: Some(IdentTarget::Local(slot)),
                ..
            } => {
                self.vars[slot.0 as usize].addr_taken = true;
            }
            ExprKind::Ident { .. } => {}
            ExprKind::Member { base, arrow, .. } if !arrow => {
                self.mark_addr_taken(base);
            }
            // `p->f` addresses the pointee, not a named variable.
            ExprKind::Index { base, .. } => {
                // Only array lvalues root into a variable; pointer indexing
                // addresses the pointee.
                let bt = self.exprs.get(base).ty;
                if let Some(bt) = bt {
                    if self.types.is_array(bt) {
                        self.mark_addr_taken(base);
                    }
                }
            }
            _ => {}
        }
    }

    fn check_expr(&mut self, e: ExprId) -> Option<TypeId> {
        let kind = self.exprs.get(e).kind.clone();
        let span = self.exprs.get(e).span;
        match kind {
            ExprKind::IntLit(_) => {
                let t = self.types.int();
                self.set_ty(e, t)
            }
            ExprKind::FloatLit(_) => {
                let t = self.types.float();
                self.set_ty(e, t)
            }
            ExprKind::StrLit(s) => {
                let ch = self.types.char();
                let t = self.types.array(ch, s.len() as u32 + 1);
                self.set_ty(e, t)
            }
            ExprKind::Null => {
                let t = self.types.void_ptr();
                self.set_ty(e, t)
            }
            ExprKind::Ident { name, .. } => {
                let Some(target) = self.lookup(&name) else {
                    self.error(span, format!("undeclared identifier `{name}`"));
                    return None;
                };
                let ty = match target {
                    IdentTarget::Global(g) => self.globals[g.0 as usize].ty,
                    IdentTarget::Local(l) => self.vars[l.0 as usize].ty,
                    IdentTarget::Func(f) => {
                        let info = &self.func_sigs[f.0 as usize];
                        let sig = FuncSig {
                            params: info.params.clone(),
                            ret: info.ret,
                            varargs: false,
                        };
                        self.types.intern(TypeKind::Func(sig))
                    }
                    IdentTarget::Builtin(b) => {
                        let sig = builtin_sig(b, self.types);
                        self.types.intern(TypeKind::Func(sig))
                    }
                };
                if let ExprKind::Ident { target: t, .. } = &mut self.exprs.get_mut(e).kind {
                    *t = Some(target);
                }
                self.set_ty(e, ty)
            }
            ExprKind::Unary { op, arg } => {
                let at = self.check_expr(arg)?;
                match op {
                    UnOp::Neg | UnOp::BitNot => {
                        if !self.types.is_arith(at) {
                            self.error(span, "operand must be arithmetic");
                        }
                        self.set_ty(e, at)
                    }
                    UnOp::Not => {
                        let t = self.types.int();
                        self.set_ty(e, t)
                    }
                    UnOp::Deref => {
                        let at = self.decayed(at);
                        match self.types.pointee(at) {
                            Some(p) => self.set_ty(e, p),
                            None => {
                                let d = self.types.display(at);
                                self.error(span, format!("cannot dereference `{d}`"));
                                None
                            }
                        }
                    }
                    UnOp::Addr => {
                        // `&func` yields a function pointer.
                        if self.types.is_func(at) {
                            let t = self.types.ptr(at);
                            return self.set_ty(e, t);
                        }
                        if !self.is_lvalue(arg) {
                            self.error(span, "`&` requires an lvalue");
                            return None;
                        }
                        self.mark_addr_taken(arg);
                        let t = self.types.ptr(at);
                        self.set_ty(e, t)
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs);
                let rt = self.check_expr(rhs);
                let (lt, rt) = (lt?, rt?);
                let ld = self.decayed(lt);
                let rd = self.decayed(rt);
                let int = self.types.int();
                use BinOp::*;
                let ty = match op {
                    Add => {
                        if self.types.is_ptr(ld) && self.types.is_arith(rd) {
                            ld
                        } else if self.types.is_arith(ld) && self.types.is_ptr(rd) {
                            rd
                        } else if self.types.is_arith(ld) && self.types.is_arith(rd) {
                            self.arith_common(ld, rd)
                        } else {
                            self.error(span, "invalid operands to `+`");
                            return None;
                        }
                    }
                    Sub => {
                        if self.types.is_ptr(ld) && self.types.is_ptr(rd) {
                            int
                        } else if self.types.is_ptr(ld) && self.types.is_arith(rd) {
                            ld
                        } else if self.types.is_arith(ld) && self.types.is_arith(rd) {
                            self.arith_common(ld, rd)
                        } else {
                            self.error(span, "invalid operands to `-`");
                            return None;
                        }
                    }
                    Mul | Div | Rem => {
                        if self.types.is_arith(ld) && self.types.is_arith(rd) {
                            self.arith_common(ld, rd)
                        } else {
                            self.error(span, format!("invalid operands to `{}`", op.symbol()));
                            return None;
                        }
                    }
                    Lt | Gt | Le | Ge | Eq | Ne => {
                        let ok = (self.types.is_arith(ld) && self.types.is_arith(rd))
                            || (self.types.is_ptr(ld) && self.types.is_ptr(rd));
                        if !ok {
                            self.error(span, format!("invalid comparison `{}`", op.symbol()));
                        }
                        int
                    }
                    And | Or => int,
                    BitAnd | BitOr | BitXor | Shl | Shr => {
                        if !(self.types.is_arith(ld) && self.types.is_arith(rd)) {
                            self.error(span, format!("invalid operands to `{}`", op.symbol()));
                        }
                        int
                    }
                };
                self.set_ty(e, ty)
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let lt = self.check_expr(lhs);
                let rt = self.check_expr(rhs);
                let (lt, rt) = (lt?, rt?);
                if !self.is_lvalue(lhs) {
                    self.error(span, "left side of assignment is not an lvalue");
                }
                if self.types.is_array(lt) {
                    self.error(span, "cannot assign to an array");
                }
                let rd = self.decayed(rt);
                match op {
                    None => self.require_assignable(lt, rt, rhs),
                    Some(BinOp::Add | BinOp::Sub) if self.types.is_ptr(lt) => {
                        if !self.types.is_arith(rd) {
                            self.error(span, "pointer compound assignment needs integer");
                        }
                    }
                    Some(_) => {
                        if !(self.types.is_arith(lt) && self.types.is_arith(rd)) {
                            self.error(span, "invalid compound assignment operands");
                        }
                    }
                }
                self.set_ty(e, lt)
            }
            ExprKind::IncDec { arg, .. } => {
                let at = self.check_expr(arg)?;
                if !self.is_lvalue(arg) {
                    self.error(span, "`++`/`--` requires an lvalue");
                }
                if !(self.types.is_arith(at) || self.types.is_ptr(at)) {
                    self.error(span, "`++`/`--` requires a scalar");
                }
                self.set_ty(e, at)
            }
            ExprKind::Call { callee, args } => self.check_call(e, callee, args, span),
            ExprKind::Member {
                base, field, arrow, ..
            } => {
                let bt = self.check_expr(base)?;
                let rec_ty = if arrow {
                    let bd = self.decayed(bt);
                    match self.types.pointee(bd) {
                        Some(p) => p,
                        None => {
                            self.error(span, "`->` requires a pointer to struct/union");
                            return None;
                        }
                    }
                } else {
                    bt
                };
                let TypeKind::Record(rid) = *self.types.kind(rec_ty) else {
                    let d = self.types.display(rec_ty);
                    self.error(span, format!("member access on non-struct `{d}`"));
                    return None;
                };
                let rec = self.types.record(rid);
                if !rec.defined {
                    let n = rec.name.clone();
                    self.error(span, format!("use of undefined struct/union `{n}`"));
                    return None;
                }
                let Some(idx) = rec.field_index(&field) else {
                    let n = rec.name.clone();
                    self.error(span, format!("no field `{field}` in `{n}`"));
                    return None;
                };
                let fty = rec.fields[idx].ty;
                if let ExprKind::Member {
                    record,
                    field_index,
                    ..
                } = &mut self.exprs.get_mut(e).kind
                {
                    *record = Some(rid);
                    *field_index = Some(idx);
                }
                self.set_ty(e, fty)
            }
            ExprKind::Index { base, index } => {
                let bt = self.check_expr(base);
                let it = self.check_expr(index);
                let bt = bt?;
                if let Some(it) = it {
                    if !self.types.is_arith(it) {
                        self.error(span, "array index must be integral");
                    }
                }
                let elem = if let Some(elem) = self.types.element(bt) {
                    Some(elem)
                } else {
                    let bd = self.decayed(bt);
                    self.types.pointee(bd)
                };
                match elem {
                    Some(t) => self.set_ty(e, t),
                    None => {
                        let d = self.types.display(bt);
                        self.error(span, format!("cannot index `{d}`"));
                        None
                    }
                }
            }
            ExprKind::Cast { ty, arg } => {
                let at = self.check_expr(arg)?;
                let ad = self.decayed(at);
                let ok = match (self.types.kind(ty).clone(), self.types.kind(ad).clone()) {
                    (TypeKind::Void, _) => true,
                    (TypeKind::Ptr(_), TypeKind::Ptr(_)) => true,
                    (a, b) if !matches!(a, TypeKind::Ptr(_)) && !matches!(b, TypeKind::Ptr(_)) => {
                        self.types.is_arith(ty) && self.types.is_arith(ad)
                    }
                    _ => false,
                };
                if !ok {
                    let (f, t) = (self.types.display(ad), self.types.display(ty));
                    self.error(
                        span,
                        format!("unsupported cast from `{f}` to `{t}` (pointer/integer casts are outside the modeled subset)"),
                    );
                }
                self.set_ty(e, ty)
            }
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => {
                if let ExprKind::SizeofExpr(inner) = kind {
                    self.check_expr(inner);
                }
                let t = self.types.int();
                self.set_ty(e, t)
            }
            ExprKind::Cond {
                cond,
                then_e,
                else_e,
            } => {
                self.check_scalar_cond(cond);
                let tt = self.check_expr(then_e);
                let et = self.check_expr(else_e);
                let (tt, et) = (tt?, et?);
                let td = self.decayed(tt);
                let ed = self.decayed(et);
                let ty = if td == ed {
                    td
                } else if self.types.is_arith(td) && self.types.is_arith(ed) {
                    self.arith_common(td, ed)
                } else if self.types.is_ptr(td) && self.types.is_ptr(ed) {
                    // One side void* (e.g. NULL): the other side wins.
                    if self.types.pointee(td).map(|p| self.types.kind(p).clone())
                        == Some(TypeKind::Void)
                    {
                        ed
                    } else {
                        td
                    }
                } else {
                    self.error(span, "incompatible ternary branch types");
                    return None;
                };
                self.set_ty(e, ty)
            }
            ExprKind::InitList(_) => {
                self.error(span, "initializer list is only allowed in declarations");
                None
            }
            ExprKind::Comma { lhs, rhs } => {
                self.check_expr(lhs);
                let rt = self.check_expr(rhs)?;
                self.set_ty(e, rt)
            }
        }
    }

    fn arith_common(&mut self, a: TypeId, b: TypeId) -> TypeId {
        let float = self.types.float();
        if a == float || b == float {
            float
        } else {
            self.types.int()
        }
    }

    fn check_call(
        &mut self,
        e: ExprId,
        callee: ExprId,
        args: Vec<ExprId>,
        span: Span,
    ) -> Option<TypeId> {
        let ct = self.check_expr(callee)?;
        // Peel `*fp` / decay to reach a function signature.
        let sig = match self.types.kind(ct).clone() {
            TypeKind::Func(sig) => sig,
            TypeKind::Ptr(p) => match self.types.kind(p).clone() {
                TypeKind::Func(sig) => sig,
                _ => {
                    self.error(span, "called object is not a function");
                    return None;
                }
            },
            _ => {
                self.error(span, "called object is not a function");
                return None;
            }
        };
        // Direct calls to user functions must have a definition somewhere.
        if let ExprKind::Ident {
            target: Some(IdentTarget::Func(f)),
            ..
        } = self.exprs.get(callee).kind
        {
            if !self.func_sigs[f.0 as usize].defined {
                self.error(span, "call to function that is declared but never defined");
            }
        }
        let arg_tys: Vec<Option<TypeId>> = args.iter().map(|a| self.check_expr(*a)).collect();
        if sig.varargs {
            if args.len() < sig.params.len() {
                self.error(span, "too few arguments");
            }
        } else if args.len() != sig.params.len() {
            self.error(
                span,
                format!(
                    "expected {} argument(s), found {}",
                    sig.params.len(),
                    args.len()
                ),
            );
        }
        for (i, (&arg, pty)) in args.iter().zip(sig.params.iter()).enumerate() {
            if let Some(at) = arg_tys[i] {
                self.require_assignable(*pty, at, arg);
            }
        }
        self.set_ty(e, sig.ret)
    }
}

/// The modeled signature of a builtin.
pub fn builtin_sig(b: Builtin, types: &mut TypeTable) -> FuncSig {
    use Builtin::*;
    let int = types.int();
    let void = types.void();
    let vp = types.void_ptr();
    let cp = types.char_ptr();
    let (params, ret, varargs) = match b {
        Malloc => (vec![int], vp, false),
        Calloc => (vec![int, int], vp, false),
        Realloc => (vec![vp, int], vp, false),
        Free => (vec![vp], void, false),
        Strcpy => (vec![cp, cp], cp, false),
        Strncpy => (vec![cp, cp, int], cp, false),
        Strcat => (vec![cp, cp], cp, false),
        Strcmp => (vec![cp, cp], int, false),
        Strncmp => (vec![cp, cp, int], int, false),
        Strlen => (vec![cp], int, false),
        Strchr => (vec![cp, int], cp, false),
        Strdup => (vec![cp], cp, false),
        Memcpy => (vec![vp, vp, int], vp, false),
        Memmove => (vec![vp, vp, int], vp, false),
        Memset => (vec![vp, int, int], vp, false),
        Printf => (vec![cp], int, true),
        Sprintf => (vec![cp, cp], int, true),
        Puts => (vec![cp], int, false),
        Putchar => (vec![int], int, false),
        Getchar => (vec![], int, false),
        Atoi => (vec![cp], int, false),
        Exit => (vec![int], void, false),
        Abs => (vec![int], int, false),
        Rand => (vec![], int, false),
        Srand => (vec![int], void, false),
    };
    FuncSig {
        params,
        ret,
        varargs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_ok(src: &str) -> Program {
        let mut p = parse(lex(src).expect("lex")).expect("parse");
        check(&mut p).expect("sema");
        p
    }

    fn check_err(src: &str) -> FrontendError {
        let mut p = parse(lex(src).expect("lex")).expect("parse");
        check(&mut p).expect_err("expected sema error")
    }

    #[test]
    fn resolves_locals_params_globals() {
        let p = check_ok(
            "int g;\n\
             int add(int a, int b) { int c; c = a + b + g; return c; }",
        );
        let f = &p.funcs[0];
        assert_eq!(f.vars.len(), 3);
        assert!(f.vars[0].is_param && f.vars[1].is_param && !f.vars[2].is_param);
    }

    #[test]
    fn shadowing_resolves_innermost() {
        let p = check_ok("int f(int x) { { int x; x = 1; } return x; }");
        assert_eq!(p.funcs[0].vars.len(), 2);
    }

    #[test]
    fn marks_addr_taken() {
        let p = check_ok("void f(void) { int a; int b; int *p; p = &a; *p = b; }");
        let vars = &p.funcs[0].vars;
        assert!(vars.iter().find(|v| v.name == "a").unwrap().addr_taken);
        assert!(!vars.iter().find(|v| v.name == "b").unwrap().addr_taken);
        assert!(!vars.iter().find(|v| v.name == "p").unwrap().addr_taken);
    }

    #[test]
    fn addr_of_member_marks_root() {
        let p = check_ok(
            "struct s { int x; };\n\
             void f(void) { struct s v; int *p; p = &v.x; *p = 1; }",
        );
        let vars = &p.funcs[0].vars;
        assert!(vars.iter().find(|v| v.name == "v").unwrap().addr_taken);
    }

    #[test]
    fn types_flow_through_exprs() {
        let p = check_ok("int *f(int *p) { return p + 1; }");
        let body = p.funcs[0].body.as_ref().unwrap();
        let Stmt::Return { value: Some(v), .. } = &body.stmts[0] else {
            panic!()
        };
        assert!(p.types.is_ptr(p.exprs.ty(*v)));
    }

    #[test]
    fn rejects_undeclared() {
        let e = check_err("int f(void) { return missing; }");
        assert!(e.diagnostics[0].message.contains("undeclared"));
    }

    #[test]
    fn rejects_bad_assignment() {
        let e = check_err("void f(void) { int *p; int q; p = q; }");
        assert!(e.diagnostics[0].message.contains("cannot assign"));
    }

    #[test]
    fn void_star_interconverts() {
        check_ok("void f(void) { int *p; void *v; p = malloc(4); v = p; p = v; free(v); }");
    }

    #[test]
    fn null_assigns_to_pointers() {
        check_ok(
            "void f(void) { char *c; int *i; c = NULL; i = (int*)0; if (c == NULL) i = NULL; }",
        );
    }

    #[test]
    fn rejects_int_to_pointer_cast() {
        let e = check_err("void f(int x) { int *p; p = (int*)x; }");
        assert!(e.diagnostics[0].message.contains("cast"));
    }

    #[test]
    fn member_resolution() {
        let p = check_ok(
            "struct node { int v; struct node *next; };\n\
             int f(struct node *n) { return n->next->v; }",
        );
        let mut member_count = 0;
        for (_, ex) in p.exprs.iter() {
            if let ExprKind::Member {
                record,
                field_index,
                ..
            } = &ex.kind
            {
                assert!(record.is_some() && field_index.is_some());
                member_count += 1;
            }
        }
        assert_eq!(member_count, 2);
    }

    #[test]
    fn rejects_unknown_field() {
        let e = check_err("struct s { int a; }; int f(struct s *p) { return p->b; }");
        assert!(e.diagnostics[0].message.contains("no field"));
    }

    #[test]
    fn function_pointers_check() {
        check_ok(
            "int add(int a, int b) { return a + b; }\n\
             int apply(int (*op)(int, int), int x) { return op(x, x); }\n\
             int main(void) { return apply(add, 3) + apply(&add, 4); }",
        );
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let e = check_err("int f(int a) { return a; } int g(void) { return f(1, 2); }");
        assert!(e.diagnostics[0].message.contains("argument"));
    }

    #[test]
    fn rejects_call_to_undefined() {
        let e = check_err("int f(int a); int g(void) { return f(1); }");
        assert!(e.diagnostics[0].message.contains("never defined"));
    }

    #[test]
    fn return_type_checked() {
        let e = check_err("int *f(void) { int x; return x; }");
        assert!(e.diagnostics[0].message.contains("cannot assign"));
    }

    #[test]
    fn array_decays_in_calls_and_arith() {
        check_ok(
            "int sum(int *p, int n) { int s; int i; s = 0; \
             for (i = 0; i < n; i++) s += p[i]; return s; }\n\
             int main(void) { int a[8]; return sum(a, 8) + sum(a + 2, 4); }",
        );
    }

    #[test]
    fn string_literal_initializes_char_array() {
        check_ok("char buf[16] = \"hello\"; char *msg = \"world\";");
    }

    #[test]
    fn init_lists_check_recursively() {
        check_ok(
            "struct pt { int x; int y; };\n\
             struct pt grid[2] = {{1, 2}, {3, 4}};\n\
             int bad_free[3] = {1, 2, 3};",
        );
        let e = check_err("int a[2] = {1, 2, 3};");
        assert!(e.diagnostics[0].message.contains("too many"));
    }

    #[test]
    fn global_init_with_address() {
        check_ok("int x; int *px = &x; int (*fp)(void);");
    }

    #[test]
    fn aggregates_are_not_conditions() {
        let e = check_err("struct s { int a; }; void f(struct s v) { if (v) return; }");
        assert!(e.diagnostics[0].message.contains("scalar"));
    }

    #[test]
    fn spawn_and_join_accepted_in_main() {
        let p = check_ok(
            "int g;\n\
             void worker(int x) { g = x; }\n\
             int main(void) { spawn worker(1); join; return g; }",
        );
        assert!(p.uses_threads());
    }

    #[test]
    fn spawn_outside_main_is_rejected() {
        let e = check_err(
            "void worker(void) { }\n\
             void outer(void) { spawn worker(); }\n\
             int main(void) { outer(); return 0; }",
        );
        assert!(e.diagnostics[0].message.contains("main"));
    }

    #[test]
    fn join_outside_main_is_rejected() {
        let e = check_err(
            "void outer(void) { join; }\n\
             int main(void) { outer(); return 0; }",
        );
        assert!(e.diagnostics[0].message.contains("main"));
    }

    #[test]
    fn spawn_of_builtin_is_rejected() {
        let e = check_err("int main(void) { spawn printf(\"x\"); join; return 0; }");
        assert!(!e.diagnostics.is_empty());
    }

    #[test]
    fn spawn_of_main_is_rejected() {
        let e = check_err("int main(void) { spawn main(); join; return 0; }");
        assert!(!e.diagnostics.is_empty());
    }

    #[test]
    fn program_without_spawn_does_not_use_threads() {
        let p = check_ok("int main(void) { return 0; }");
        assert!(!p.uses_threads());
    }
}
