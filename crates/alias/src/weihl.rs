//! The Weihl-style *program-wide* flow-insensitive baseline.
//!
//! The paper's introduction recalls that early pointer analyses
//! (\[Wei80\], \[Cou86\]) computed "a single, global mapping between
//! pointers and their potential referents", and that later work found
//! those approximations overly large. This module implements that
//! baseline over the VDG so the claim is measurable: one store set for
//! the whole program — every `update` feeds it, every `lookup` reads it,
//! and program-point distinctions vanish.
//!
//! Against this baseline the published context-sensitive comparisons
//! were made before Ruf's paper; reproducing it closes the loop on the
//! paper's "how much of the precision is program-point-specificity?"
//! question.

use crate::fingerprint::GraphIndex;
use crate::fxhash::{HashMap, HashSet};
use crate::pairset::{PairId, PairInterner, PairSet, Propagation};
use crate::path::{AccessOp, Pair, PathId, PathTable};
use crate::summary::{FuncFacts, FunctionSummary, ResumeStats, SolverSummaries, Vocab};
use std::collections::VecDeque;
use vdg::graph::{Graph, InputId, NodeId, NodeKind, OutputId, VFuncId, ValueKind};

/// Result of the program-wide analysis.
#[derive(Debug, Clone)]
pub struct WeihlResult {
    /// The interned path universe.
    pub paths: PathTable,
    /// Per-output value pairs (for non-store outputs).
    values: Vec<Vec<Pair>>,
    /// The single global store relation.
    store: Vec<Pair>,
    /// Outputs of store kind (their pairs live in `store`).
    store_outputs: std::collections::HashSet<u32>,
    /// Discovered call edges, sorted per call site (for summaries).
    pub(crate) callees: HashMap<NodeId, Vec<VFuncId>>,
    /// Transfer-function applications.
    pub flow_ins: u64,
    /// Successful meets (emissions that grew a set); redundant attempts
    /// are counted in [`WeihlResult::dedup_hits`].
    pub flow_outs: u64,
    /// Emission attempts deduplicated by the committed sets.
    pub dedup_hits: u64,
    /// Batched delta deliveries (`None` under [`Propagation::Naive`]).
    pub delta_batches: Option<u64>,
}

impl WeihlResult {
    /// Value pairs on a (non-store) output.
    pub fn value_pairs(&self, o: OutputId) -> &[Pair] {
        &self.values[o.0 as usize]
    }

    /// The global store relation.
    pub fn store_pairs(&self) -> &[Pair] {
        &self.store
    }

    /// Distinct referents at a memory operation's location input —
    /// comparable with [`crate::ci::CiResult::loc_referents`].
    pub fn loc_referents(&self, graph: &Graph, node: NodeId) -> Vec<PathId> {
        let loc_out = graph.input_src(node, 0);
        let mut refs: Vec<PathId> = self
            .value_pairs(loc_out)
            .iter()
            .map(|p| p.referent)
            .collect();
        refs.sort_unstable();
        refs.dedup();
        refs
    }

    /// Total pairs: global store plus all value sets (for table output).
    pub fn total_pairs(&self) -> usize {
        self.store.len() + self.values.iter().map(|v| v.len()).sum::<usize>()
    }
}

/// Runs the program-wide analysis: flow-insensitive in the store, so no
/// strong updates are possible, and every store-typed output denotes the
/// same relation.
pub fn analyze_weihl(graph: &Graph) -> WeihlResult {
    analyze_weihl_from(graph, PathTable::for_graph(graph))
}

/// Like [`analyze_weihl_from`], with an explicit propagation discipline.
pub fn analyze_weihl_with(
    graph: &Graph,
    paths: PathTable,
    propagation: Propagation,
) -> WeihlResult {
    let mut s = Weihl {
        g: graph,
        paths,
        propagation,
        interner: PairInterner::new(),
        values: vec![PairSet::new(); graph.output_count()],
        store: PairSet::new(),
        naive_wl: VecDeque::new(),
        out_wl: VecDeque::new(),
        queued: vec![false; graph.output_count()],
        store_queued: false,
        store_consumers: Vec::new(),
        callees: HashMap::default(),
        callers: HashMap::default(),
        flow_ins: 0,
        flow_outs: 0,
        dedup_hits: 0,
        delta_batches: 0,
    };
    s.collect_store_consumers();
    s.seed();
    s.run();
    s.finish()
}

/// Like [`analyze_weihl`], but starting from an existing path table so
/// that the resulting [`Pair`]s are id-comparable with another solver's
/// (e.g. pass a clone of [`crate::ci::CiResult::paths`]).
pub fn analyze_weihl_from(graph: &Graph, paths: PathTable) -> WeihlResult {
    analyze_weihl_with(graph, paths, Propagation::default())
}

enum Item {
    Value(InputId, PairId),
    Store(PairId),
}

/// Delta-worklist sentinel for "the global store has a pending delta".
const STORE_SLOT: u32 = u32::MAX;

struct Weihl<'g> {
    g: &'g Graph,
    paths: PathTable,
    propagation: Propagation,
    interner: PairInterner,
    values: Vec<PairSet>,
    store: PairSet,
    /// Naive-mode worklist: single-pair deliveries.
    naive_wl: VecDeque<Item>,
    /// Delta-mode worklist: outputs (or [`STORE_SLOT`]) with a delta.
    out_wl: VecDeque<u32>,
    queued: Vec<bool>,
    store_queued: bool,
    /// Nodes that react to new global-store pairs (lookups and copymem).
    store_consumers: Vec<NodeId>,
    callees: HashMap<NodeId, Vec<VFuncId>>,
    callers: HashMap<VFuncId, Vec<NodeId>>,
    flow_ins: u64,
    flow_outs: u64,
    dedup_hits: u64,
    delta_batches: u64,
}

impl<'g> Weihl<'g> {
    fn collect_store_consumers(&mut self) {
        for (id, n) in self.g.nodes() {
            if matches!(n.kind, NodeKind::Lookup { .. } | NodeKind::CopyMem) {
                self.store_consumers.push(id);
            }
        }
    }

    fn seed(&mut self) {
        let mut seeds = Vec::new();
        for (id, n) in self.g.nodes() {
            let base = match n.kind {
                NodeKind::Base(b) | NodeKind::Alloc(b) | NodeKind::FuncConst(b) => b,
                _ => continue,
            };
            let root = self.paths.base_root(base);
            seeds.push((
                self.g.node(id).outputs[0],
                Pair::new(PathTable::EMPTY, root),
            ));
        }
        for (o, p) in seeds {
            self.emit_value(o, p);
        }
    }

    fn emit_value(&mut self, out: OutputId, pair: Pair) {
        // Store-typed outputs all denote the global store.
        if matches!(self.g.output(out).kind, vdg::graph::ValueKind::Store) {
            self.emit_store(pair);
            return;
        }
        let id = self.interner.intern(pair);
        let o = out.0 as usize;
        if self.values[o].insert(id) {
            self.flow_outs += 1;
            match self.propagation {
                Propagation::Naive => {
                    self.values[o].take_delta();
                    for &i in self.g.consumers(out) {
                        self.naive_wl.push_back(Item::Value(i, id));
                    }
                }
                Propagation::Delta => {
                    if !self.queued[o] && !self.g.consumers(out).is_empty() {
                        self.queued[o] = true;
                        self.out_wl.push_back(out.0);
                    }
                }
            }
        } else {
            self.dedup_hits += 1;
        }
    }

    fn emit_store(&mut self, pair: Pair) {
        let id = self.interner.intern(pair);
        if self.store.insert(id) {
            self.flow_outs += 1;
            match self.propagation {
                Propagation::Naive => {
                    self.store.take_delta();
                    self.naive_wl.push_back(Item::Store(id));
                }
                Propagation::Delta => {
                    if !self.store_queued {
                        self.store_queued = true;
                        self.out_wl.push_back(STORE_SLOT);
                    }
                }
            }
        } else {
            self.dedup_hits += 1;
        }
    }

    fn run(&mut self) {
        match self.propagation {
            Propagation::Naive => self.run_naive(),
            Propagation::Delta => self.run_delta(),
        }
    }

    fn run_naive(&mut self) {
        while let Some(item) = self.naive_wl.pop_front() {
            self.flow_ins += 1;
            match item {
                Item::Value(input, id) => {
                    let pair = self.interner.resolve(id);
                    let info = self.g.input(input);
                    self.transfer_value(info.node, info.port as usize, pair);
                }
                Item::Store(id) => {
                    let pair = self.interner.resolve(id);
                    // Every lookup/copymem in the program may observe it.
                    for i in 0..self.store_consumers.len() {
                        self.flow_ins += 1;
                        self.transfer_store(self.store_consumers[i], pair);
                    }
                }
            }
        }
    }

    fn run_delta(&mut self) {
        while let Some(slot) = self.out_wl.pop_front() {
            if slot == STORE_SLOT {
                self.store_queued = false;
                let batch = self.store.take_delta();
                // One flow-in per pair pop, as in the naive discipline...
                self.flow_ins += batch.len() as u64;
                for i in 0..self.store_consumers.len() {
                    // ...plus one per (pair, store consumer) re-examination.
                    self.delta_batches += 1;
                    for &id in &batch {
                        self.flow_ins += 1;
                        let pair = self.interner.resolve(PairId(id));
                        self.transfer_store(self.store_consumers[i], pair);
                    }
                }
                self.store.recycle(batch);
            } else {
                let o = slot as usize;
                self.queued[o] = false;
                let batch = self.values[o].take_delta();
                let g = self.g;
                for &input in g.consumers(OutputId(slot)) {
                    self.delta_batches += 1;
                    let info = g.input(input);
                    let (node, port) = (info.node, info.port as usize);
                    for &id in &batch {
                        self.flow_ins += 1;
                        let pair = self.interner.resolve(PairId(id));
                        self.transfer_value(node, port, pair);
                    }
                }
                self.values[o].recycle(batch);
            }
        }
    }

    fn values_at(&self, node: NodeId, port: usize) -> Vec<Pair> {
        let src = self.g.input_src(node, port);
        self.values[src.0 as usize]
            .iter()
            .map(|id| self.interner.resolve(id))
            .collect()
    }

    fn store_snapshot(&self) -> Vec<Pair> {
        self.store
            .iter()
            .map(|id| self.interner.resolve(id))
            .collect()
    }

    fn transfer_value(&mut self, node: NodeId, port: usize, pair: Pair) {
        let g = self.g;
        let n = g.node(node);
        let outs = &n.outputs;
        let mut em: Vec<(OutputId, Pair)> = Vec::new();
        let mut st: Vec<Pair> = Vec::new();
        match &n.kind {
            NodeKind::Member(f) => {
                let r = self.paths.child(pair.referent, AccessOp::Field(*f));
                em.push((outs[0], Pair::new(pair.path, r)));
            }
            NodeKind::IndexElem => {
                let r = self.paths.child(pair.referent, AccessOp::Index);
                em.push((outs[0], Pair::new(pair.path, r)));
            }
            NodeKind::ExtractField(f) => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Field(*f)) {
                    em.push((outs[0], Pair::new(p, pair.referent)));
                }
            }
            NodeKind::ExtractElem => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Index) {
                    em.push((outs[0], Pair::new(p, pair.referent)));
                }
            }
            NodeKind::PassThrough if port == 0 => {
                em.push((outs[0], pair));
            }
            NodeKind::Gamma => em.push((outs[0], pair)),
            NodeKind::Lookup { .. } if port == 0 => {
                // New location: read the global store.
                let store = self.store_snapshot();
                for sp in store {
                    if self.paths.dom(pair.referent, sp.path) {
                        let off = self.paths.subtract(sp.path, pair.referent);
                        let p = self.paths.append(pair.path, off);
                        em.push((outs[0], Pair::new(p, sp.referent)));
                    }
                }
            }
            // Store arrivals are handled by `transfer_store`.
            NodeKind::Update { .. } => match port {
                0 => {
                    for vp in self.values_at(node, 2) {
                        let path = self.paths.append(pair.referent, vp.path);
                        st.push(Pair::new(path, vp.referent));
                    }
                }
                2 => {
                    for lp in self.values_at(node, 0) {
                        let path = self.paths.append(lp.referent, pair.path);
                        st.push(Pair::new(path, pair.referent));
                    }
                }
                _ => {}
            },
            NodeKind::CopyMem if (port == 1 || port == 2) => {
                let dsts = self.values_at(node, 1);
                let srcs = self.values_at(node, 2);
                let store = self.store_snapshot();
                for sp in store {
                    for s in &srcs {
                        if self.paths.dom(s.referent, sp.path) {
                            let off = self.paths.subtract(sp.path, s.referent);
                            for d in &dsts {
                                let path = self.paths.append(d.referent, off);
                                st.push(Pair::new(path, sp.referent));
                            }
                        }
                    }
                }
            }
            NodeKind::Call => {
                if port == 0 {
                    if let Some(f) = self.paths.func_of(pair.referent) {
                        self.register_callee(node, f, &mut em);
                    }
                } else if port >= 2 {
                    if let Some(callees) = self.callees.get(&node) {
                        for &f in callees {
                            forward_to_formal(g, port, pair, f, &mut em);
                        }
                    }
                }
            }
            NodeKind::Return { func } if port == 1 => {
                if let Some(callers) = self.callers.get(func) {
                    for &call in callers {
                        let outs = &g.node(call).outputs;
                        if outs.len() > 1 {
                            em.push((outs[1], pair));
                        }
                    }
                }
            }
            _ => {}
        }
        for (o, p) in em {
            self.emit_value(o, p);
        }
        for p in st {
            self.emit_store(p);
        }
    }

    /// A new pair entered the global store: rerun the store side of every
    /// lookup/copymem. (The caller counts the flow-in.)
    fn transfer_store(&mut self, node: NodeId, pair: Pair) {
        let n = self.g.node(node);
        let outs = &n.outputs;
        let mut em: Vec<(OutputId, Pair)> = Vec::new();
        let mut st: Vec<Pair> = Vec::new();
        match &n.kind {
            NodeKind::Lookup { .. } => {
                for lp in self.values_at(node, 0) {
                    if self.paths.dom(lp.referent, pair.path) {
                        let off = self.paths.subtract(pair.path, lp.referent);
                        let p = self.paths.append(lp.path, off);
                        em.push((outs[0], Pair::new(p, pair.referent)));
                    }
                }
            }
            NodeKind::CopyMem => {
                let dsts = self.values_at(node, 1);
                for s in self.values_at(node, 2) {
                    if self.paths.dom(s.referent, pair.path) {
                        let off = self.paths.subtract(pair.path, s.referent);
                        for d in &dsts {
                            let path = self.paths.append(d.referent, off);
                            st.push(Pair::new(path, pair.referent));
                        }
                    }
                }
            }
            _ => {}
        }
        for (o, p) in em {
            self.emit_value(o, p);
        }
        for p in st {
            self.emit_store(p);
        }
    }

    fn register_callee(&mut self, call: NodeId, f: VFuncId, em: &mut Vec<(OutputId, Pair)>) {
        let list = self.callees.entry(call).or_default();
        if list.contains(&f) {
            return;
        }
        list.push(f);
        self.callers.entry(f).or_default().push(call);
        let g = self.g;
        let n_inputs = g.node(call).inputs.len();
        for port in 2..n_inputs {
            for pair in self.values_at(call, port) {
                forward_to_formal(g, port, pair, f, em);
            }
        }
        for &ret in &g.func(f).returns {
            if g.has_input(ret, 1) {
                for pair in self.values_at(ret, 1) {
                    let outs = &g.node(call).outputs;
                    if outs.len() > 1 {
                        em.push((outs[1], pair));
                    }
                }
            }
        }
    }

    /// Resume boundary delivery: re-runs the transfer function of
    /// `node`'s `port` for every committed (seeded) pair at the feeding
    /// output, skipping in-cone sources (their pairs arrive through the
    /// live worklist when recomputed).
    fn deliver_committed(&mut self, node: NodeId, port: usize, in_cone: &[bool]) {
        if port >= self.g.node(node).inputs.len() {
            return;
        }
        let src = self.g.input_src(node, port);
        if in_cone[src.0 as usize] {
            return;
        }
        let pairs: Vec<Pair> = self.values[src.0 as usize]
            .iter()
            .map(|id| self.interner.resolve(id))
            .collect();
        for p in pairs {
            self.flow_ins += 1;
            self.transfer_value(node, port, p);
        }
    }

    fn finish(self) -> WeihlResult {
        let store_outputs = self
            .g
            .output_ids()
            .filter(|o| matches!(self.g.output(*o).kind, vdg::graph::ValueKind::Store))
            .map(|o| o.0)
            .collect();
        let it = &self.interner;
        let values = self
            .values
            .iter()
            .map(|s| {
                let mut v: Vec<Pair> = s.iter().map(|id| it.resolve(id)).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let mut store: Vec<Pair> = self.store.iter().map(|id| it.resolve(id)).collect();
        store.sort_unstable();
        let mut callees = self.callees;
        for v in callees.values_mut() {
            v.sort_unstable_by_key(|f| f.0);
        }
        WeihlResult {
            paths: self.paths,
            values,
            store,
            store_outputs,
            callees,
            flow_ins: self.flow_ins,
            flow_outs: self.flow_outs,
            dedup_hits: self.dedup_hits,
            delta_batches: match self.propagation {
                Propagation::Naive => None,
                Propagation::Delta => Some(self.delta_batches),
            },
        }
    }
}

/// Pairs arriving at a call's actual-argument port flow to the matching
/// formal of callee `f`.
fn forward_to_formal(
    g: &Graph,
    port: usize,
    pair: Pair,
    f: VFuncId,
    em: &mut Vec<(OutputId, Pair)>,
) {
    let entry = g.func(f).entry;
    let formals = &g.node(entry).outputs;
    let idx = port - 1;
    if idx < formals.len() {
        em.push((formals[idx], pair));
    }
}

impl crate::stats::PointsToSolution for WeihlResult {
    fn pairs_at(&self, o: OutputId) -> &[Pair] {
        if self.store_kind_probe(o) {
            &self.store
        } else {
            self.value_pairs(o)
        }
    }
    fn path_table(&self) -> &PathTable {
        &self.paths
    }
}

impl WeihlResult {
    /// Whether `o` was treated as a store output (its per-output value
    /// set stayed empty and pairs were routed to the global store).
    /// Recorded at solve time to keep the trait impl graph-free.
    fn store_kind_probe(&self, o: OutputId) -> bool {
        self.store_outputs.contains(&o.0)
    }
}

/// Checks per-output containment: the program-point-specific CI solution
/// must be within the program-wide one (on value outputs; the global
/// store must contain every CI store pair).
pub fn ci_subset_of_weihl(graph: &Graph, ci: &crate::ci::CiResult, w: &WeihlResult) -> bool {
    let store: HashSet<Pair> = w.store_pairs().iter().copied().collect();
    for o in graph.output_ids() {
        if matches!(graph.output(o).kind, vdg::graph::ValueKind::Store) {
            for p in ci.pairs(o) {
                if !store.contains(p) {
                    return false;
                }
            }
        } else {
            let ws: HashSet<Pair> = w.value_pairs(o).iter().copied().collect();
            for p in ci.pairs(o) {
                if !ws.contains(p) {
                    return false;
                }
            }
        }
    }
    true
}

/// Extracts function `f`'s Weihl summary: committed value pairs per
/// output offset (store-typed outputs get an empty row — their facts
/// live in the program-wide store relation on the container) plus the
/// discovered call edges.
pub(crate) fn extract_func(
    w: &WeihlResult,
    graph: &Graph,
    index: &GraphIndex,
    f: VFuncId,
) -> Option<FunctionSummary> {
    let fi = f.0 as usize;
    let (os, oe) = (index.out_start[fi], index.out_end[fi]);
    let mut outputs = Vec::with_capacity((oe - os) as usize);
    for o in os..oe {
        let o = OutputId(o);
        if matches!(graph.output(o).kind, ValueKind::Store) {
            outputs.push(Vec::new());
            continue;
        }
        let mut pairs = Vec::new();
        for &pr in w.value_pairs(o) {
            pairs.push(crate::fingerprint::stable_pair(&w.paths, graph, index, pr)?);
        }
        outputs.push(pairs);
    }
    Some(FunctionSummary {
        fingerprint: index.func_fps[fi],
        calls: crate::fingerprint::stable_calls(graph, index, f, &w.callees),
        facts: FuncFacts::Weihl(outputs),
    })
}

/// Renders the program-wide store relation in stable vocabulary.
pub(crate) fn extract_store(
    w: &WeihlResult,
    graph: &Graph,
    index: &GraphIndex,
) -> Option<Vec<crate::fingerprint::StablePair>> {
    w.store_pairs()
        .iter()
        .map(|&pr| crate::fingerprint::stable_pair(&w.paths, graph, index, pr))
        .collect()
}

/// Seeded resume of the program-wide analysis.
///
/// Two regimes. When every function replays clean and none was deleted,
/// the store relation is provably unchanged: install every value set,
/// the store, and all call edges as silent seeds — the worklist starts
/// and stays empty (pure replay). Otherwise the single global store is
/// *dirty* — flow-insensitivity means any edit can grow or shrink it —
/// so it is rebuilt from scratch: every `Lookup` result joins the dirty
/// cone as a root (its value reads the store), value facts outside the
/// cone are seeded, and boundary deliveries re-fire the transfer
/// functions that feed the store (`Update` contributions cross seeded
/// location and value sets; `Lookup`/`CopyMem` re-derive through the
/// store-consumer rule as every store pair re-enters). Iterating from
/// this subset of the previous fixpoint converges to exactly the fresh
/// fixpoint: Weihl's per-node emissions are monotone in the committed
/// sets and a subset of the CI closure's, so the value-space cone
/// computed under the CI rules over-approximates every path a change
/// can take.
pub(crate) fn analyze_weihl_resume(
    graph: &Graph,
    index: &GraphIndex,
    prev: &SolverSummaries,
    paths: PathTable,
    propagation: Propagation,
) -> Option<(WeihlResult, ResumeStats)> {
    use crate::fingerprint::{compute_cone_for, intern_stable, plan_base, ConeVocab, PlanBase};
    if prev.vocab != Vocab::Weihl {
        return None;
    }
    let mut paths = paths;
    let base = plan_base(graph, index, prev, |f, summary| {
        let fi = f.0 as usize;
        let want = (index.out_end[fi] - index.out_start[fi]) as usize;
        let FuncFacts::Weihl(rows) = &summary.facts else {
            return None;
        };
        if rows.len() != want {
            return None;
        }
        let mut outs = Vec::with_capacity(want);
        for pairs in rows {
            let mut v = Vec::with_capacity(pairs.len());
            for sp in pairs {
                let a = intern_stable(graph, index, &mut paths, &sp.path)?;
                let b = intern_stable(graph, index, &mut paths, &sp.referent)?;
                v.push(Pair::new(a, b));
            }
            outs.push(v);
        }
        Some(outs)
    })?;
    let PlanBase {
        translated,
        dirty,
        prev_edges,
        lost_callees,
    } = base;

    let deleted = prev
        .funcs
        .keys()
        .any(|n| !index.func_by_name.contains_key(n));
    let mut store_dirty = !dirty.is_empty() || deleted;
    let mut store_seed: Vec<Pair> = Vec::new();
    if !store_dirty {
        for sp in &prev.store {
            match (
                intern_stable(graph, index, &mut paths, &sp.path),
                intern_stable(graph, index, &mut paths, &sp.referent),
            ) {
                (Some(a), Some(b)) => store_seed.push(Pair::new(a, b)),
                _ => {
                    store_dirty = true;
                    store_seed.clear();
                    break;
                }
            }
        }
    }

    // Value-space cone; a dirty store additionally invalidates every
    // Lookup result, which reads the store.
    let mut extra: Vec<OutputId> = Vec::new();
    if store_dirty {
        for (_, n) in graph.nodes() {
            if matches!(n.kind, NodeKind::Lookup { .. }) {
                extra.push(n.outputs[0]);
            }
        }
    }
    let in_cone = compute_cone_for(
        graph,
        index,
        &dirty,
        &prev_edges,
        &lost_callees,
        ConeVocab::Ci,
        &extra,
    );

    let mut s = Weihl {
        g: graph,
        paths,
        propagation,
        interner: PairInterner::new(),
        values: vec![PairSet::new(); graph.output_count()],
        store: PairSet::new(),
        naive_wl: VecDeque::new(),
        out_wl: VecDeque::new(),
        queued: vec![false; graph.output_count()],
        store_queued: false,
        store_consumers: Vec::new(),
        callees: HashMap::default(),
        callers: HashMap::default(),
        flow_ins: 0,
        flow_outs: 0,
        dedup_hits: 0,
        delta_batches: 0,
    };
    s.collect_store_consumers();

    // 1. Install out-of-cone value facts as silent seeds.
    let mut seeded_outputs = 0;
    for (&f, outs) in &translated {
        let os = index.out_start[f.0 as usize];
        for (i, pairs) in outs.iter().enumerate() {
            let o = (os + i as u32) as usize;
            if in_cone[o] {
                continue;
            }
            for &p in pairs {
                let id = s.interner.intern(p);
                s.values[o].insert(id);
            }
            let d = s.values[o].take_delta();
            s.values[o].recycle(d);
            seeded_outputs += 1;
        }
    }
    if !store_dirty {
        for p in store_seed {
            let id = s.interner.intern(p);
            s.store.insert(id);
        }
        let d = s.store.take_delta();
        s.store.recycle(d);
    }

    // 2. Install call edges whose function input is out-of-cone.
    let mut call_edges: HashMap<NodeId, Vec<VFuncId>> = HashMap::default();
    for (n, callees) in &prev_edges {
        let src = graph.input_src(*n, 0);
        if !in_cone[src.0 as usize] {
            call_edges.insert(*n, callees.clone());
        }
    }
    for (&call, callees) in &call_edges {
        for &f in callees {
            s.callees.entry(call).or_default().push(f);
            s.callers.entry(f).or_default().push(call);
        }
    }

    // 3. Constants dedup against the seeds; in-cone ones queue.
    s.seed();

    // 4. Boundary deliveries (only the dirty-store regime has a
    //    non-empty cone to feed).
    if store_dirty {
        for (id, n) in graph.nodes() {
            match &n.kind {
                NodeKind::Member(_)
                | NodeKind::IndexElem
                | NodeKind::ExtractField(_)
                | NodeKind::ExtractElem
                | NodeKind::Gamma
                    if n.outputs.iter().any(|o| in_cone[o.0 as usize]) =>
                {
                    for port in 0..n.inputs.len() {
                        s.deliver_committed(id, port, &in_cone);
                    }
                }
                NodeKind::PassThrough if n.outputs.iter().any(|o| in_cone[o.0 as usize]) => {
                    s.deliver_committed(id, 0, &in_cone);
                }
                // The store is rebuilt from scratch: every Update
                // re-derives its contribution from the committed
                // location and value sets. Lookup and CopyMem need no
                // value-side deliveries — each store pair re-enters the
                // empty store and re-fires the store-consumer rule
                // against the committed sets.
                NodeKind::Update { .. } => {
                    s.deliver_committed(id, 0, &in_cone);
                    s.deliver_committed(id, 2, &in_cone);
                }
                _ => {}
            }
        }
        let mut ret_needed: HashSet<VFuncId> = HashSet::default();
        for (&call, callees) in &call_edges {
            let n = graph.node(call);
            let formals_in_cone = callees.iter().any(|&f| {
                graph
                    .node(graph.func(f).entry)
                    .outputs
                    .iter()
                    .any(|o| in_cone[o.0 as usize])
            });
            if formals_in_cone {
                for port in 2..n.inputs.len() {
                    s.deliver_committed(call, port, &in_cone);
                }
            }
            if n.outputs.len() > 1 && in_cone[n.outputs[1].0 as usize] {
                for &f in callees {
                    ret_needed.insert(f);
                }
            }
        }
        for f in ret_needed {
            for &ret in &graph.func(f).returns {
                if graph.has_input(ret, 1) {
                    s.deliver_committed(ret, 1, &in_cone);
                }
            }
        }
    }

    s.run();
    let mut dirty_names: Vec<String> = dirty.iter().map(|f| graph.func(*f).name.clone()).collect();
    dirty_names.sort_unstable();
    let stats = ResumeStats {
        clean: graph.func_count() - dirty.len(),
        dirty: dirty_names,
        cone_outputs: in_cone.iter().filter(|&&b| b).count(),
        seeded_outputs,
        total_outputs: graph.output_count(),
    };
    Some((s.finish(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{analyze_ci, CiConfig};
    use vdg::build::{lower, BuildOptions};

    fn pipeline(src: &str) -> (Graph, crate::ci::CiResult, WeihlResult) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = analyze_ci(&g, &CiConfig::default());
        // Share the CI path table so pairs are id-comparable.
        let w = analyze_weihl_from(&g, ci.paths.clone());
        (g, ci, w)
    }

    #[test]
    fn simple_pointer_resolves() {
        let (g, _, w) = pipeline("int g; int main(void) { int *p; p = &g; return *p; }");
        let (node, _) = g.indirect_mem_ops()[0];
        let refs = w.loc_referents(&g, node);
        assert_eq!(refs.len(), 1);
        assert_eq!(w.paths.display(refs[0], &g), "g");
    }

    #[test]
    fn ci_is_contained_in_weihl() {
        let (g, ci, w) = pipeline(
            "int a; int b; int *p;\n\
             int main(void) { int **q; q = &p; p = &a; *q = &b; return *p; }",
        );
        assert!(ci_subset_of_weihl(&g, &ci, &w));
    }

    #[test]
    fn program_wide_store_loses_point_specificity() {
        // Two phases through a strongly-updateable global: CI separates
        // them; the program-wide store cannot.
        let (g, ci, w) = pipeline(
            "int a; int b; int *p;\n\
             int main(void) { int x; p = &a; x = *p; p = &b; return *p + x; }",
        );
        let reads: Vec<_> = g
            .indirect_mem_ops()
            .into_iter()
            .filter(|&(_, wr)| !wr)
            .collect();
        assert_eq!(reads.len(), 2);
        for (node, _) in reads {
            assert_eq!(ci.loc_referents(&g, node).len(), 1, "CI separates phases");
            assert_eq!(w.loc_referents(&g, node).len(), 2, "Weihl merges phases");
        }
    }

    #[test]
    fn interprocedural_flow_works() {
        let (g, _, w) = pipeline(
            "int g;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *q; q = id(&g); return *q; }",
        );
        let (node, _) = g.indirect_mem_ops()[0];
        assert_eq!(w.loc_referents(&g, node).len(), 1);
    }

    #[test]
    fn heap_and_fields_still_distinct() {
        // Program-wideness removes point-specificity, not path precision.
        let (g, _, w) = pipeline(
            "struct s { int *x; int *y; };\n\
             int a; int b;\n\
             int main(void) { struct s v; int *r; v.x = &a; v.y = &b; \
             r = v.x; return *r; }",
        );
        let reads: Vec<_> = g
            .indirect_mem_ops()
            .into_iter()
            .filter(|&(_, wr)| !wr)
            .collect();
        let refs = w.loc_referents(&g, reads[0].0);
        assert_eq!(refs.len(), 1);
        assert_eq!(w.paths.display(refs[0], &g), "a");
    }

    #[test]
    fn counters_and_totals_populate() {
        // `gp` is a global, so the assignment is a real store write.
        let (g, _, w) = pipeline("int g; int *gp; int main(void) { gp = &g; return *gp; }");
        assert!(w.flow_ins > 0);
        assert!(w.total_pairs() > 0);
        assert_eq!(w.store_pairs().len(), 1);
        let pair = w.store_pairs()[0];
        assert_eq!(w.paths.display(pair.path, &g), "gp");
        assert_eq!(w.paths.display(pair.referent, &g), "g");
    }
}
