//! Def/use analysis — the paper's other motivating client (§3.2: "Such
//! applications are concerned only with the memory locations referenced
//! by each memory read or write").
//!
//! For every `lookup` (a *use*) this module computes the set of `update`
//! nodes (*defs*) whose written locations it may observe, by walking the
//! store dataflow backwards — through gammas, into callees at calls, and
//! out to call sites at entries — pruning along the way:
//!
//! - an update is a *may-def* for a use referent if one of its written
//!   paths overlaps the referent (either is a prefix of the other);
//! - the walk past an update stops for a referent the update *definitely*
//!   overwrites (the strong-update condition), mirroring how the solvers
//!   kill store pairs.
//!
//! Because both ends are driven by points-to sets, def/use edge counts
//! are a client-level measure of analysis precision; the headline
//! experiment shows up here as identical edge sets under CI and CS.

use crate::fxhash::{HashMap, HashSet};
use crate::path::{PathId, PathTable};
use crate::solver::Solution;
use crate::stats::PointsToSolution;
use std::collections::BTreeSet;
use vdg::graph::{BaseId, Graph, NodeId, NodeKind, OutputId, ValueKind};

/// Def/use edges: for each lookup node, the update nodes it may observe.
#[derive(Debug, Clone, Default)]
pub struct DefUse {
    /// use (lookup) -> defs (updates), sorted.
    pub uses: HashMap<NodeId, Vec<NodeId>>,
}

impl DefUse {
    /// Total number of def/use edges.
    pub fn edge_count(&self) -> usize {
        self.uses.values().map(|v| v.len()).sum()
    }

    /// Defs of one use.
    pub fn defs_of(&self, lookup: NodeId) -> &[NodeId] {
        self.uses.get(&lookup).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Whether a read of `a` may observe a write to `b`: overlap in either
/// prefix direction.
fn overlaps(paths: &PathTable, a: PathId, b: PathId) -> bool {
    paths.dom(a, b) || paths.dom(b, a)
}

/// Computes def/use edges for every lookup, using `sol` for the location
/// sets and `callees` (from the CI solver) for the interprocedural store
/// graph.
pub fn def_use(
    graph: &Graph,
    sol: &dyn PointsToSolution,
    callees: &HashMap<NodeId, Vec<vdg::graph::VFuncId>>,
) -> DefUse {
    let paths = sol.path_table();
    let mut out = DefUse::default();
    for (node, is_write) in graph.all_mem_ops() {
        if is_write {
            continue;
        }
        let loc_out = graph.input_src(node, 0);
        let referents: Vec<PathId> = {
            let mut v: Vec<PathId> = sol.pairs_at(loc_out).iter().map(|p| p.referent).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut defs = BTreeSet::new();
        for r in referents {
            walk_defs(
                graph,
                sol,
                paths,
                callees,
                graph.input_src(node, 1),
                r,
                &mut defs,
            );
        }
        out.uses.insert(node, defs.into_iter().collect());
    }
    out
}

/// Computes def/use edges at the *base* granularity any [`Solution`]
/// supports — including the unification baseline, which has no
/// per-program-point pair sets and so cannot drive [`def_use`].
///
/// Two deliberate differences from the path-granular walk keep this
/// variant sound and uniform across all five solvers:
///
/// - overlap is whole-base (a write anywhere in a base may define a
///   read anywhere in it), and
/// - no strong kills: walks never terminate early at an update, since
///   base-level "definitely overwrites" is not a sound kill for
///   interior paths.
///
/// With the kill rule gone, edge sets are monotone in the points-to
/// sets: a coarser solution (larger base sets at every op, in the
/// [`Solution::covers`] sense) can only add def/use edges — the
/// property the cross-solver monotonicity tests check.
pub fn def_use_bases(
    graph: &Graph,
    sol: &dyn Solution,
    callees: &HashMap<NodeId, Vec<vdg::graph::VFuncId>>,
) -> DefUse {
    let mut out = DefUse::default();
    for (node, is_write) in graph.all_mem_ops() {
        if is_write {
            continue;
        }
        let referents = sol.loc_referent_bases(graph, node);
        let mut defs = BTreeSet::new();
        if !referents.is_empty() {
            walk_defs_bases(
                graph,
                sol,
                callees,
                graph.input_src(node, 1),
                &referents,
                &mut defs,
            );
        }
        out.uses.insert(node, defs.into_iter().collect());
    }
    out
}

/// Whether two sorted base sets intersect.
fn bases_intersect(a: &[BaseId], b: &[BaseId]) -> bool {
    a.iter().any(|x| b.binary_search(x).is_ok())
}

/// Backward walk over the store dataflow from `store_out`, collecting
/// stores whose written bases intersect `referents`. No strong kills.
fn walk_defs_bases(
    graph: &Graph,
    sol: &dyn Solution,
    callees: &HashMap<NodeId, Vec<vdg::graph::VFuncId>>,
    store_out: OutputId,
    referents: &[BaseId],
    defs: &mut BTreeSet<NodeId>,
) {
    let mut visited: HashSet<OutputId> = HashSet::default();
    let mut stack = vec![store_out];
    while let Some(o) = stack.pop() {
        if !visited.insert(o) {
            continue;
        }
        debug_assert!(matches!(graph.output(o).kind, ValueKind::Store));
        let node = graph.output(o).node;
        match &graph.node(node).kind {
            NodeKind::Update { .. } => {
                if bases_intersect(referents, &sol.loc_referent_bases(graph, node)) {
                    defs.insert(node);
                }
                stack.push(graph.input_src(node, 1));
            }
            NodeKind::Gamma => {
                for port in 0..graph.node(node).inputs.len() {
                    stack.push(graph.input_src(node, port));
                }
            }
            NodeKind::CopyMem => {
                let dsts = sol.output_referent_bases(graph, graph.input_src(node, 1));
                if bases_intersect(referents, &dsts) {
                    defs.insert(node);
                }
                stack.push(graph.input_src(node, 0));
            }
            NodeKind::Call => {
                if let Some(fs) = callees.get(&node) {
                    for f in fs {
                        for &ret in &graph.func(*f).returns {
                            stack.push(graph.input_src(ret, 0));
                        }
                    }
                }
            }
            NodeKind::Entry { func } => {
                for (call, fs) in callees {
                    if fs.contains(func) && graph.has_input(*call, 1) {
                        stack.push(graph.input_src(*call, 1));
                    }
                }
            }
            NodeKind::Free => {
                // Deallocation defines nothing; keep walking the store.
                stack.push(graph.input_src(node, 1));
            }
            NodeKind::InitStore => {}
            other => {
                debug_assert!(
                    false,
                    "unexpected store producer {other:?} during def/use walk"
                );
            }
        }
    }
}

/// Backward walk over the store dataflow from `store_out`, collecting
/// updates that may define `referent`.
fn walk_defs(
    graph: &Graph,
    sol: &dyn PointsToSolution,
    paths: &PathTable,
    callees: &HashMap<NodeId, Vec<vdg::graph::VFuncId>>,
    store_out: OutputId,
    referent: PathId,
    defs: &mut BTreeSet<NodeId>,
) {
    let mut visited: HashSet<OutputId> = HashSet::default();
    let mut stack = vec![store_out];
    while let Some(o) = stack.pop() {
        if !visited.insert(o) {
            continue;
        }
        debug_assert!(matches!(graph.output(o).kind, ValueKind::Store));
        let node = graph.output(o).node;
        match &graph.node(node).kind {
            NodeKind::Update { .. } => {
                // Written paths of this update.
                let loc_refs: Vec<PathId> = sol
                    .pairs_at(graph.input_src(node, 0))
                    .iter()
                    .map(|p| p.referent)
                    .collect();
                let val_offsets: Vec<PathId> = {
                    let mut v: Vec<PathId> = sol
                        .pairs_at(graph.input_src(node, 2))
                        .iter()
                        .map(|p| p.path)
                        .collect();
                    // Scalar writes still define the location itself.
                    v.push(PathTable::EMPTY);
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                let mut may_def = false;
                for &lr in &loc_refs {
                    // The update writes lr (scalar view) and lr+offset for
                    // each pointer offset of the value; the whole-location
                    // overlap check covers both.
                    let _ = &val_offsets;
                    if overlaps(paths, referent, lr) {
                        may_def = true;
                    }
                }
                if may_def {
                    defs.insert(node);
                }
                // Strong kill: a definite overwrite of the referent ends
                // the walk on this path.
                let killed = loc_refs.len() == 1 && paths.strong_dom(loc_refs[0], referent);
                if !killed {
                    stack.push(graph.input_src(node, 1));
                }
            }
            NodeKind::Gamma => {
                for port in 0..graph.node(node).inputs.len() {
                    stack.push(graph.input_src(node, port));
                }
            }
            NodeKind::CopyMem => {
                // Conservative: treat as a weak def of everything under
                // its destinations and keep walking.
                let dsts: Vec<PathId> = sol
                    .pairs_at(graph.input_src(node, 1))
                    .iter()
                    .map(|p| p.referent)
                    .collect();
                if dsts.iter().any(|&d| overlaps(paths, referent, d)) {
                    defs.insert(node);
                }
                stack.push(graph.input_src(node, 0));
            }
            NodeKind::Call => {
                // The call's store output comes from its callees' returns.
                if let Some(fs) = callees.get(&node) {
                    for f in fs {
                        for &ret in &graph.func(*f).returns {
                            stack.push(graph.input_src(ret, 0));
                        }
                    }
                }
            }
            NodeKind::Entry { func } => {
                // The entry store comes from every call site of `func`.
                for (call, fs) in callees {
                    if fs.contains(func) && graph.has_input(*call, 1) {
                        stack.push(graph.input_src(*call, 1));
                    }
                }
            }
            NodeKind::Free => {
                // Deallocation defines nothing; keep walking the store.
                stack.push(graph.input_src(node, 1));
            }
            NodeKind::InitStore => {}
            other => {
                debug_assert!(
                    false,
                    "unexpected store producer {other:?} during def/use walk"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{analyze_ci, CiConfig};
    use vdg::build::{lower, BuildOptions};

    fn pipeline(src: &str) -> (Graph, crate::ci::CiResult, DefUse) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = analyze_ci(&g, &CiConfig::default());
        let du = def_use(&g, &ci, &ci.callees);
        (g, ci, du)
    }

    /// The lookup reading through `*p`-style derefs (first indirect read).
    fn first_indirect_read(g: &Graph) -> NodeId {
        g.indirect_mem_ops()
            .into_iter()
            .find(|&(_, w)| !w)
            .map(|(n, _)| n)
            .expect("an indirect read exists")
    }

    #[test]
    fn direct_def_reaches_use() {
        let (g, _, du) = pipeline("int g; int main(void) { int *p; p = &g; g = 5; return *p; }");
        let read = first_indirect_read(&g);
        assert_eq!(du.defs_of(read).len(), 1);
    }

    #[test]
    fn strong_update_kills_earlier_def() {
        let (g, _, du) =
            pipeline("int g; int main(void) { int *p; p = &g; g = 1; g = 2; return *p; }");
        let read = first_indirect_read(&g);
        // Only the second `g = ...` reaches the read.
        assert_eq!(du.defs_of(read).len(), 1);
        let def = du.defs_of(read)[0];
        // It must be the later update (higher node id than the killed one).
        let updates: Vec<NodeId> = g
            .all_mem_ops()
            .into_iter()
            .filter(|&(_, w)| w)
            .map(|(n, _)| n)
            .collect();
        assert_eq!(updates.len(), 2);
        assert_eq!(def, *updates.iter().max().unwrap());
    }

    #[test]
    fn weak_updates_accumulate_defs() {
        let (g, _, du) = pipeline(
            "int arr[4];\n\
             int main(void) { int *p; p = &arr[1]; arr[0] = 1; arr[1] = 2; \
             return *p; }",
        );
        let read = first_indirect_read(&g);
        // Array writes are weak; both may define arr[*].
        assert_eq!(du.defs_of(read).len(), 2);
    }

    #[test]
    fn interprocedural_defs_found() {
        let (g, _, du) = pipeline(
            "int g;\n\
             void set(void) { g = 3; }\n\
             int main(void) { int *p; p = &g; set(); return *p; }",
        );
        let read = first_indirect_read(&g);
        assert_eq!(du.defs_of(read).len(), 1);
    }

    #[test]
    fn unrelated_defs_excluded() {
        let (g, _, du) = pipeline(
            "int a; int b;\n\
             int main(void) { int *p; p = &a; a = 1; b = 2; return *p; }",
        );
        let read = first_indirect_read(&g);
        assert_eq!(du.defs_of(read).len(), 1, "write to b must not reach");
    }

    #[test]
    fn field_writes_overlap_whole_struct_reads() {
        let (g, _, du) = pipeline(
            "struct s { int x; int y; };\n\
             struct s v;\n\
             int take(struct s w) { return w.x; }\n\
             int main(void) { v.x = 1; v.y = 2; return take(v); }",
        );
        // The whole-struct read (aggregate lookup for the by-value arg)
        // observes both field writes.
        let agg_read = g
            .all_mem_ops()
            .into_iter()
            .find(|&(n, w)| {
                !w && matches!(g.output(g.node(n).outputs[0]).kind, ValueKind::Agg { .. })
            })
            .map(|(n, _)| n)
            .expect("aggregate read");
        assert_eq!(du.defs_of(agg_read).len(), 2);
    }

    #[test]
    fn headline_at_the_defuse_level() {
        // CS and CI produce the same def/use edges on a suite-style
        // program (the client-level restatement of §4.3).
        let src = "int buf;\n\
             void put(int **slot) { *slot = &buf; }\n\
             int use_a(void) { int *a; put(&a); buf = 1; return *a; }\n\
             int use_b(void) { int *b; put(&b); buf = 2; return *b; }\n\
             int main(void) { return use_a() + use_b(); }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&g, &CiConfig::default());
        let cs = crate::cs::analyze_cs(&g, &ci, &crate::cs::CsConfig::default()).unwrap();
        let du_ci = def_use(&g, &ci, &ci.callees);
        let du_cs = def_use(&g, &cs, &ci.callees);
        assert_eq!(du_ci.edge_count(), du_cs.edge_count());
        for (u, defs) in &du_ci.uses {
            assert_eq!(defs, du_cs.uses.get(u).unwrap());
        }
    }
}
