//! Demand-driven point queries over the context-insensitive analysis.
//!
//! The five exhaustive solvers answer "what are `p`'s referents at
//! node n?" only after computing every pair of the whole program. This
//! module answers individual queries by solving just the part of the
//! VDG the query can observe:
//!
//! 1. **Slice.** From the queried output, chase value dependencies
//!    *backwards* — matched load/store parentheses ride the existing
//!    transfer functions, assignment edges are epsilon — using a
//!    conservative may-call relation ([`crate::fingerprint::call_targets`]
//!    style) for call/return boundaries. The result is a set of outputs
//!    closed under "my committed pairs can influence yours".
//! 2. **Restricted fixpoint.** Run the ordinary CI solver with an
//!    *emission mask*: pairs flowing to outputs outside the slice are
//!    dropped before they commit. Because the slice is
//!    dependency-closed, the equations for in-slice outputs mention
//!    only in-slice outputs, so the restricted least fixpoint equals
//!    the exhaustive least fixpoint on every sliced output — demand
//!    answers are *identical* to [`analyze_ci`]'s, not approximations.
//! 3. **Memoize.** The slice's committed sets, interner, path table,
//!    and discovered call edges persist in a [`DemandState`]; the next
//!    query extends the solved region instead of starting over, with
//!    boundary deliveries hand-carrying already-final sets into the
//!    newly activated cone (the same discipline as
//!    [`analyze_ci_resume`](crate::ci::analyze_ci_resume)).
//!
//! Per-query budgets bound both the slice size and the number of
//! worklist deliveries. On exhaustion the state falls back to the
//! exhaustive CI solution — the fallback *is* the oracle, so soundness
//! and exactness are never at risk; only latency degrades to the
//! exhaustive cost. [`DemandState::materialize`] completes the partial
//! state to a genuine [`CiResult`] for clients that need
//! exhaustiveness; canonical path numbering makes the materialized
//! result byte-identical to a fresh exhaustive solve.

use crate::ci::{analyze_ci, deliver_committed, CiConfig, CiResult, Solver, SolverParts};
use crate::fxhash::{HashMap, HashSet};
use crate::pairset::Propagation;
use crate::solver::{Solution, SolutionBox, Solver as SolverTrait};
use crate::AnalysisError;
use std::cell::RefCell;
use vdg::graph::{BaseId, Graph, NodeId, NodeKind, OutputId, VFuncId};

/// Budgets and solver knobs for the demand-driven solver.
#[derive(Debug, Clone)]
pub struct DemandConfig {
    /// Knobs of the underlying CI system. Propagation is forced to
    /// [`Propagation::Delta`] (the fixpoint is discipline-independent;
    /// delta batching is simply the faster schedule).
    pub ci: CiConfig,
    /// Per-query bound on newly activated outputs. A query whose
    /// backward slice is larger falls back to the exhaustive solution.
    pub max_slice_outputs: usize,
    /// Per-query bound on worklist deliveries (`flow_ins`). A query
    /// whose restricted fixpoint needs more falls back.
    pub max_steps: u64,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            ci: CiConfig::default(),
            max_slice_outputs: 1 << 16,
            max_steps: 2_000_000,
        }
    }
}

/// Work and outcome counters of a [`DemandState`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemandStats {
    /// Point queries answered (either kind).
    pub queries: u64,
    /// Queries answered from the demand-solved region.
    pub demand_hits: u64,
    /// Queries answered from the exhaustive fallback solution.
    pub fallbacks: u64,
    /// Budget exhaustions (at most one: the state is poisoned and every
    /// later query is a fallback).
    pub budget_exhausted: u64,
    /// Whether [`DemandState::materialize`] completed this state.
    pub materialized: bool,
    /// Outputs in the demand-solved region.
    pub outputs_active: u64,
    /// Worklist deliveries consumed by demand runs.
    pub steps: u64,
}

/// The growing partial solution behind demand queries. See the module
/// docs for the algorithm; all methods take the graph the state was
/// built for (passing a different graph is a logic error, as
/// everywhere else in the [`Solution`] API).
#[derive(Debug, Clone)]
pub struct DemandState {
    cfg: DemandConfig,
    /// Carry-over solver state; `None` once poisoned or materialized
    /// (then `fallback` answers everything).
    parts: Option<SolverParts>,
    /// The demand-solved (dependency-closed) region.
    active: Vec<bool>,
    /// Conservative may-callees per call node, for slicing only —
    /// propagation still uses the dynamically discovered call graph.
    may_targets: HashMap<NodeId, Vec<VFuncId>>,
    /// Inverse of `may_targets`.
    may_callers: HashMap<VFuncId, Vec<NodeId>>,
    fallback: Option<CiResult>,
    stats: DemandStats,
}

impl DemandState {
    /// An empty state for `graph`: nothing solved, no fallback.
    pub fn new(graph: &Graph, cfg: DemandConfig) -> DemandState {
        let mut cfg = cfg;
        cfg.ci.propagation = Propagation::Delta;
        let mut may_targets: HashMap<NodeId, Vec<VFuncId>> = HashMap::default();
        let mut may_callers: HashMap<VFuncId, Vec<NodeId>> = HashMap::default();
        for (id, n) in graph.nodes() {
            if matches!(n.kind, NodeKind::Call) {
                let targets = crate::fingerprint::call_targets(graph, id);
                for &f in &targets {
                    may_callers.entry(f).or_default().push(id);
                }
                may_targets.insert(id, targets);
            }
        }
        DemandState {
            parts: Some(Solver::new(graph, cfg.ci.clone()).into_parts()),
            active: vec![false; graph.output_count()],
            may_targets,
            may_callers,
            fallback: None,
            cfg,
            stats: DemandStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> DemandStats {
        self.stats
    }

    /// The exhaustive fallback solution, if this state has one (budget
    /// exhaustion or materialization).
    pub fn fallback(&self) -> Option<&CiResult> {
        self.fallback.as_ref()
    }

    /// Path-granular referents of the location input of memory op
    /// `node`, rendered against `graph` and sorted — string-identical
    /// to rendering [`CiResult::loc_referents`] of the exhaustive
    /// solution.
    pub fn loc_referents_rendered(&mut self, graph: &Graph, node: NodeId) -> Vec<String> {
        let out = graph.input_src(node, 0);
        let fb = self.ensure_solved(graph, &[out]);
        self.count_query(fb);
        let mut refs: Vec<String> = match (&self.fallback, fb) {
            (Some(r), true) => {
                let mut ids = r.loc_referents(graph, node);
                ids.sort_unstable();
                ids.dedup();
                ids.iter().map(|&p| r.paths.display(p, graph)).collect()
            }
            _ => {
                let parts = self.parts.as_ref().expect("live state");
                let mut ids: Vec<_> = parts.sets[out.0 as usize]
                    .iter()
                    .map(|id| parts.interner.resolve(id).referent)
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids.iter().map(|&p| parts.paths.display(p, graph)).collect()
            }
        };
        refs.sort();
        refs
    }

    /// Distinct base-locations the location input of memory op `node`
    /// may reference, sorted — the [`Solution::loc_referent_bases`]
    /// contract.
    pub fn loc_referent_bases(&mut self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        let out = graph.input_src(node, 0);
        let fb = self.ensure_solved(graph, &[out]);
        self.count_query(fb);
        self.bases_of(graph, out, fb)
    }

    /// Distinct base-locations the value on `out` may reference,
    /// sorted — the [`Solution::output_referent_bases`] contract.
    pub fn output_referent_bases(&mut self, graph: &Graph, out: OutputId) -> Vec<BaseId> {
        let fb = self.ensure_solved(graph, &[out]);
        self.count_query(fb);
        self.bases_of(graph, out, fb)
    }

    /// May the location inputs of memory ops `a` and `b` reference a
    /// common base-location? Returns the sorted witness bases — the
    /// serve-layer `MayAlias` semantics. Counts as one query.
    pub fn may_alias(&mut self, graph: &Graph, a: NodeId, b: NodeId) -> (bool, Vec<BaseId>) {
        let oa = graph.input_src(a, 0);
        let ob = graph.input_src(b, 0);
        let fb = self.ensure_solved(graph, &[oa, ob]);
        self.count_query(fb);
        let ba = self.bases_of(graph, oa, fb);
        let bb = self.bases_of(graph, ob, fb);
        let witnesses: Vec<BaseId> = ba
            .iter()
            .copied()
            .filter(|x| bb.binary_search(x).is_ok())
            .collect();
        (!witnesses.is_empty(), witnesses)
    }

    /// Completes the partial state to the full exhaustive solution and
    /// returns it. Thanks to canonical path numbering the result is
    /// numerically identical to a fresh [`analyze_ci`] of the same
    /// graph (flow counters aside); later queries answer from it.
    pub fn materialize(&mut self, graph: &Graph) -> CiResult {
        if let Some(r) = &self.fallback {
            return r.clone();
        }
        let prev = std::mem::replace(&mut self.active, vec![true; graph.output_count()]);
        let parts = self.parts.take().expect("live state");
        let mut s = Solver::from_parts(graph, self.cfg.ci.clone(), parts, self.active.clone());
        s.seed();
        install_boundary(graph, &mut s, &prev, &self.active);
        s.run();
        let result = s.finish();
        self.stats.materialized = true;
        self.stats.outputs_active = graph.output_count() as u64;
        self.fallback = Some(result.clone());
        result
    }

    fn count_query(&mut self, fallback: bool) {
        self.stats.queries += 1;
        if fallback {
            self.stats.fallbacks += 1;
        } else {
            self.stats.demand_hits += 1;
        }
    }

    /// Sorted distinct referent bases of `out`, from whichever store
    /// holds the answer.
    fn bases_of(&self, graph: &Graph, out: OutputId, fb: bool) -> Vec<BaseId> {
        let mut b: Vec<BaseId> = match (&self.fallback, fb) {
            (Some(r), true) => r
                .pairs(out)
                .iter()
                .filter_map(|p| r.paths.base_of(p.referent))
                .collect(),
            _ => {
                let parts = self.parts.as_ref().expect("live state");
                parts.sets[out.0 as usize]
                    .iter()
                    .filter_map(|id| parts.paths.base_of(parts.interner.resolve(id).referent))
                    .collect()
            }
        };
        let _ = graph;
        b.sort_unstable();
        b.dedup();
        b
    }

    /// Ensures every target output's committed set is final. Returns
    /// `true` when answers must come from the fallback solution.
    fn ensure_solved(&mut self, graph: &Graph, targets: &[OutputId]) -> bool {
        if self.fallback.is_some() {
            return true;
        }
        debug_assert_eq!(
            self.active.len(),
            graph.output_count(),
            "state/graph mismatch"
        );
        let before = self.active.clone();
        let mut stack: Vec<OutputId> = Vec::new();
        let mut newly = 0usize;
        for &o in targets {
            if !self.active[o.0 as usize] {
                self.active[o.0 as usize] = true;
                stack.push(o);
                newly += 1;
            }
        }
        if stack.is_empty() {
            return false; // already solved
        }
        // Backward dependency closure (module docs step 1).
        while let Some(o) = stack.pop() {
            if newly > self.cfg.max_slice_outputs {
                self.active = before;
                self.stats.budget_exhausted += 1;
                self.fall_back(graph);
                return true;
            }
            self.push_deps(graph, o, &mut stack, &mut newly);
        }
        // Restricted fixpoint over the enlarged region (step 2).
        let parts = self.parts.take().expect("live state");
        let steps_before = parts.flow_ins;
        let mut s = Solver::from_parts(graph, self.cfg.ci.clone(), parts, self.active.clone());
        s.step_limit = s.flow_ins.saturating_add(self.cfg.max_steps);
        s.seed();
        install_boundary(graph, &mut s, &before, &self.active);
        s.run();
        if s.exhausted() {
            // Poisoned: the region is mid-fixpoint. Abandon it and
            // compute the oracle once; every later query is a fallback.
            self.stats.budget_exhausted += 1;
            self.stats.steps += s.flow_ins - steps_before;
            self.fall_back(graph);
            return true;
        }
        self.stats.steps += s.flow_ins - steps_before;
        self.stats.outputs_active = self.active.iter().filter(|&&a| a).count() as u64;
        self.parts = Some(s.into_parts());
        false
    }

    /// Pushes the dependencies of `o` — outputs whose committed pairs
    /// can influence `o`'s — activating each unseen one.
    fn push_deps(&mut self, g: &Graph, o: OutputId, stack: &mut Vec<OutputId>, newly: &mut usize) {
        let node = g.output(o).node;
        let n = g.node(node);
        let mut add = |active: &mut Vec<bool>, src: OutputId| {
            if !active[src.0 as usize] {
                active[src.0 as usize] = true;
                stack.push(src);
                *newly += 1;
            }
        };
        match &n.kind {
            // A formal's pairs come from every may-caller's actuals
            // (and port 0 discovers the edge).
            NodeKind::Entry { func } => {
                if let Some(calls) = self.may_callers.get(func) {
                    for &call in calls {
                        for port in 0..g.node(call).inputs.len() {
                            add(&mut self.active, g.input_src(call, port));
                        }
                    }
                }
            }
            // A call result's pairs come from the function input (edge
            // discovery) and every may-callee's return inputs.
            NodeKind::Call => {
                add(&mut self.active, g.input_src(node, 0));
                if let Some(targets) = self.may_targets.get(&node) {
                    for &f in targets {
                        for &ret in &g.func(f).returns {
                            for port in 0..g.node(ret).inputs.len() {
                                add(&mut self.active, g.input_src(ret, port));
                            }
                        }
                    }
                }
            }
            // Only port 0 is forwarded.
            NodeKind::PassThrough => add(&mut self.active, g.input_src(node, 0)),
            // Only the store (port 1) passes through.
            NodeKind::Free => add(&mut self.active, g.input_src(node, 1)),
            NodeKind::Member(_)
            | NodeKind::IndexElem
            | NodeKind::ExtractField(_)
            | NodeKind::ExtractElem => add(&mut self.active, g.input_src(node, 0)),
            // Constants and scalar ops emit from seeds or nothing.
            NodeKind::Primop
            | NodeKind::Base(_)
            | NodeKind::Alloc(_)
            | NodeKind::FuncConst(_)
            | NodeKind::InitStore
            | NodeKind::ScalarConst
            | NodeKind::NullConst => {}
            // Gamma/Lookup/Update/CopyMem read every input (transfer
            // functions cross-read sibling committed sets). Return has
            // no outputs and cannot appear.
            _ => {
                for port in 0..n.inputs.len() {
                    add(&mut self.active, g.input_src(node, port));
                }
            }
        }
    }

    fn fall_back(&mut self, graph: &Graph) {
        if self.fallback.is_none() {
            self.parts = None;
            self.fallback = Some(analyze_ci(graph, &self.cfg.ci));
        }
    }
}

/// Hand-delivers already-final committed sets across the boundary into
/// the newly activated region, exactly once — the demand counterpart
/// of [`analyze_ci_resume`](crate::ci::analyze_ci_resume)'s step 4.
/// `prev` is the solved region before this query, `now` after; a
/// source in `prev` is final and will never deliver again on its own.
fn install_boundary(g: &Graph, s: &mut Solver, prev: &[bool], now: &[bool]) {
    let fresh = |o: OutputId| now[o.0 as usize] && !prev[o.0 as usize];
    let was = |o: OutputId| prev[o.0 as usize];
    // Plain nodes: deliver final inputs of any node with a fresh
    // output. Calls and returns route across function boundaries and
    // follow below; Primop emits nothing; PassThrough forwards port 0.
    for (id, n) in g.nodes() {
        match n.kind {
            NodeKind::Call | NodeKind::Return { .. } | NodeKind::Primop => continue,
            _ => {}
        }
        if !n.outputs.iter().any(|&o| fresh(o)) {
            continue;
        }
        for (port, &inp) in n.inputs.iter().enumerate() {
            if matches!(n.kind, NodeKind::PassThrough) && port != 0 {
                continue;
            }
            let src = g.input(inp).src;
            if was(src) {
                deliver_committed(s, id, port, src);
            }
        }
    }
    // Known call edges. An edge is registered the moment its call's
    // function input delivers, which happens in the run that finalizes
    // that input — so every call with a final function input already
    // has its exact callee set here. Fresh-input calls register their
    // edges during the coming run, which pushes/pulls committed sets
    // itself.
    let edges: Vec<(NodeId, Vec<VFuncId>)> =
        s.callees.iter().map(|(&c, fs)| (c, fs.clone())).collect();
    // Actuals: a callee with fresh formals needs every final actual.
    for (call, fs) in &edges {
        let needed = fs
            .iter()
            .any(|&f| g.node(g.func(f).entry).outputs.iter().any(|&o| fresh(o)));
        if !needed {
            continue;
        }
        for port in 1..g.node(*call).inputs.len() {
            let src = g.input_src(*call, port);
            if was(src) {
                deliver_committed(s, *call, port, src);
            }
        }
    }
    // Returns: a call with fresh outputs needs its callees' final
    // return inputs forwarded (duplicates to other callers dedup).
    let mut ret_needed: HashSet<VFuncId> = HashSet::default();
    for (call, fs) in &edges {
        if g.node(*call).outputs.iter().any(|&o| fresh(o)) {
            ret_needed.extend(fs.iter().copied());
        }
    }
    for &f in &ret_needed {
        for &ret in &g.func(f).returns {
            for port in 0..g.node(ret).inputs.len() {
                let src = g.input_src(ret, port);
                if was(src) {
                    deliver_committed(s, ret, port, src);
                }
            }
        }
    }
}

/// The demand-driven solver as a [`SolverTrait`]: "solving" just
/// builds an empty [`DemandState`]; queries drive the work.
#[derive(Debug, Clone, Default)]
pub struct DemandSolver {
    /// Budgets and CI knobs.
    pub config: DemandConfig,
}

impl SolverTrait for DemandSolver {
    fn name(&self) -> &str {
        "demand"
    }

    fn solve(&self, graph: &Graph, _ci: Option<&CiResult>) -> Result<SolutionBox, AnalysisError> {
        Ok(Box::new(DemandSolution::new(graph, self.config.clone())))
    }
}

/// A [`DemandState`] behind the uniform [`Solution`] view. Queries
/// extend the solved region, so the interior is mutable; the `RefCell`
/// keeps the shared `&self` query API of the other solutions (the same
/// pattern as [`crate::solver::SteensSolution`]).
pub struct DemandSolution {
    state: RefCell<DemandState>,
}

impl DemandSolution {
    /// An unsolved demand view of `graph`.
    pub fn new(graph: &Graph, config: DemandConfig) -> DemandSolution {
        DemandSolution {
            state: RefCell::new(DemandState::new(graph, config)),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> DemandStats {
        self.state.borrow().stats()
    }

    /// See [`DemandState::loc_referents_rendered`].
    pub fn loc_referents_rendered(&self, graph: &Graph, node: NodeId) -> Vec<String> {
        self.state.borrow_mut().loc_referents_rendered(graph, node)
    }

    /// See [`DemandState::may_alias`].
    pub fn may_alias(&self, graph: &Graph, a: NodeId, b: NodeId) -> (bool, Vec<BaseId>) {
        self.state.borrow_mut().may_alias(graph, a, b)
    }

    /// See [`DemandState::materialize`].
    pub fn materialize(&self, graph: &Graph) -> CiResult {
        self.state.borrow_mut().materialize(graph)
    }
}

impl Solution for DemandSolution {
    fn analysis(&self) -> &'static str {
        "demand"
    }
    /// Total pairs, known only once exhaustive (fallback/materialized);
    /// a partial count would misread as the program's total.
    fn pairs(&self) -> Option<usize> {
        self.state
            .borrow()
            .fallback
            .as_ref()
            .map(CiResult::total_pairs)
    }
    fn flow_ins(&self) -> Option<u64> {
        Some(self.state.borrow().stats.steps)
    }
    fn flow_outs(&self) -> Option<u64> {
        None
    }
    fn loc_referent_bases(&self, graph: &Graph, node: NodeId) -> Vec<BaseId> {
        self.state.borrow_mut().loc_referent_bases(graph, node)
    }
    fn output_referent_bases(&self, graph: &Graph, out: OutputId) -> Vec<BaseId> {
        self.state.borrow_mut().output_referent_bases(graph, out)
    }
    fn clone_box(&self) -> SolutionBox {
        Box::new(DemandSolution {
            state: RefCell::new(self.state.borrow().clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdg::build::{lower, BuildOptions};

    fn graph_of(src: &str) -> Graph {
        let p = cfront::compile(src).expect("compiles");
        lower(&p, &BuildOptions::default()).expect("lowers")
    }

    fn ci_of(g: &Graph) -> CiResult {
        analyze_ci(g, &CiConfig::default())
    }

    fn rendered_ci(r: &CiResult, g: &Graph, node: NodeId) -> Vec<String> {
        let mut v: Vec<String> = r
            .loc_referents(g, node)
            .iter()
            .map(|&p| r.paths.display(p, g))
            .collect();
        v.sort();
        v
    }

    const INTERPROC: &str = "int a; int b; int *gp;\n\
         int *id(int *p) { return p; }\n\
         void setg(int c) { if (c) { gp = &a; } else { gp = &b; } }\n\
         int main(void) { int *q; q = id(&a); setg(getchar()); return *q + *gp; }";

    #[test]
    fn demand_matches_exhaustive_at_every_site() {
        let g = graph_of(INTERPROC);
        let ci = ci_of(&g);
        let mut st = DemandState::new(&g, DemandConfig::default());
        for (node, _) in g.indirect_mem_ops() {
            assert_eq!(
                st.loc_referents_rendered(&g, node),
                rendered_ci(&ci, &g, node),
                "site {node:?}"
            );
        }
        let stats = st.stats();
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.demand_hits > 0);
        assert!(stats.outputs_active > 0);
        assert!(
            (stats.outputs_active as usize) < g.output_count(),
            "slice should not cover the whole graph"
        );
    }

    #[test]
    fn repeated_queries_reuse_the_solved_region() {
        let g = graph_of(INTERPROC);
        let mut st = DemandState::new(&g, DemandConfig::default());
        let sites = g.indirect_mem_ops();
        let first = st.loc_referents_rendered(&g, sites[0].0);
        let steps_after_first = st.stats().steps;
        let second = st.loc_referents_rendered(&g, sites[0].0);
        assert_eq!(first, second);
        assert_eq!(
            st.stats().steps,
            steps_after_first,
            "a repeated query must not re-solve"
        );
    }

    #[test]
    fn may_alias_agrees_with_base_intersection() {
        let g = graph_of(INTERPROC);
        let ci = ci_of(&g);
        let mut st = DemandState::new(&g, DemandConfig::default());
        let sites = g.indirect_mem_ops();
        for i in 0..sites.len() {
            for j in 0..sites.len() {
                let (hit, witnesses) = st.may_alias(&g, sites[i].0, sites[j].0);
                let ba = Solution::loc_referent_bases(&ci, &g, sites[i].0);
                let bb = Solution::loc_referent_bases(&ci, &g, sites[j].0);
                let want: Vec<BaseId> = ba
                    .iter()
                    .copied()
                    .filter(|x| bb.binary_search(x).is_ok())
                    .collect();
                assert_eq!(witnesses, want, "sites {i}/{j}");
                assert_eq!(hit, !want.is_empty());
            }
        }
    }

    #[test]
    fn materialized_state_is_numerically_identical_to_fresh_ci() {
        let g = graph_of(INTERPROC);
        let fresh = ci_of(&g);
        let mut st = DemandState::new(&g, DemandConfig::default());
        // Partially solve first, then complete.
        let sites = g.indirect_mem_ops();
        let _ = st.loc_referents_rendered(&g, sites[0].0);
        let mat = st.materialize(&g);
        for o in g.output_ids() {
            assert_eq!(fresh.pairs(o), mat.pairs(o), "pairs at {o}");
        }
        assert_eq!(fresh.callees, mat.callees);
        use crate::solver::solution_fingerprint;
        assert_eq!(
            solution_fingerprint(&fresh, &g),
            solution_fingerprint(&mat, &g)
        );
    }

    #[test]
    fn exhausted_budget_falls_back_to_the_oracle() {
        let g = graph_of(INTERPROC);
        let ci = ci_of(&g);
        let cfg = DemandConfig {
            max_steps: 1,
            ..DemandConfig::default()
        };
        let mut st = DemandState::new(&g, cfg);
        for (node, _) in g.indirect_mem_ops() {
            assert_eq!(
                st.loc_referents_rendered(&g, node),
                rendered_ci(&ci, &g, node)
            );
        }
        let stats = st.stats();
        assert_eq!(stats.budget_exhausted, 1);
        assert_eq!(stats.demand_hits, 0);
        assert!(stats.fallbacks > 0);
    }

    #[test]
    fn tiny_slice_budget_falls_back_too() {
        let g = graph_of(INTERPROC);
        let ci = ci_of(&g);
        let cfg = DemandConfig {
            max_slice_outputs: 1,
            ..DemandConfig::default()
        };
        let mut st = DemandState::new(&g, cfg);
        let sites = g.indirect_mem_ops();
        assert_eq!(
            st.loc_referents_rendered(&g, sites[0].0),
            rendered_ci(&ci, &g, sites[0].0)
        );
        assert_eq!(st.stats().budget_exhausted, 1);
    }

    #[test]
    fn function_pointer_targets_resolve_on_demand() {
        let g = graph_of(
            "int a; int b;\n\
             int *fa(void) { return &a; }\n\
             int *fb(void) { return &b; }\n\
             int main(void) { int *(*fp)(void); int c; c = getchar();\n\
               if (c) { fp = fa; } else { fp = fb; }\n\
               return *(fp()); }",
        );
        let ci = ci_of(&g);
        let mut st = DemandState::new(&g, DemandConfig::default());
        for (node, _) in g.indirect_mem_ops() {
            assert_eq!(
                st.loc_referents_rendered(&g, node),
                rendered_ci(&ci, &g, node)
            );
        }
        assert_eq!(st.stats().fallbacks, 0);
    }

    #[test]
    fn copied_func_const_call_slices_to_the_union_of_targets() {
        // Regression for the sharpened `fingerprint::call_targets`: a
        // callee reached as `fp = fa; ... fp = fb;` (a Gamma over two
        // FuncConst feeds) used to collapse the sliced may-call
        // relation to *every* function, dragging unrelated code into
        // each demand slice. It must resolve to exactly {fa, fb} —
        // `untouched` stays out — while answers remain exact.
        let g = graph_of(
            "int a; int b; int u;\n\
             int *fa(void) { return &a; }\n\
             int *fb(void) { return &b; }\n\
             void untouched(void) { u = u + 1; }\n\
             int main(void) { int *(*fp)(void); int c; c = getchar();\n\
               if (c) { fp = fa; } else { fp = fb; }\n\
               untouched();\n\
               return *(fp()); }",
        );
        let ci = ci_of(&g);
        let mut st = DemandState::new(&g, DemandConfig::default());
        let rendered = |ts: &Vec<VFuncId>| {
            let mut v: Vec<String> = ts.iter().map(|&f| g.func(f).name.clone()).collect();
            v.sort();
            v
        };
        assert!(
            st.may_targets
                .values()
                .any(|ts| rendered(ts) == ["fa", "fb"]),
            "the indirect call should slice to {{fa, fb}}: {:?}",
            st.may_targets.values().map(rendered).collect::<Vec<_>>()
        );
        assert!(
            st.may_targets.values().all(|ts| ts.len() < g.func_count()),
            "no call should fall back to the every-function set"
        );
        for (node, _) in g.indirect_mem_ops() {
            assert_eq!(
                st.loc_referents_rendered(&g, node),
                rendered_ci(&ci, &g, node),
                "site {node:?}"
            );
        }
        assert_eq!(st.stats().fallbacks, 0);
    }

    #[test]
    fn solution_view_reports_demand() {
        let g = graph_of(INTERPROC);
        let sol = DemandSolution::new(&g, DemandConfig::default());
        assert_eq!(sol.analysis(), "demand");
        assert_eq!(sol.pairs(), None, "no pair total before materialize");
        let ci = ci_of(&g);
        for (node, _) in g.indirect_mem_ops() {
            assert_eq!(
                Solution::loc_referent_bases(&sol, &g, node),
                Solution::loc_referent_bases(&ci, &g, node)
            );
        }
        let cloned = sol.clone_box();
        let _ = sol.materialize(&g);
        assert!(sol.pairs().is_some());
        assert_eq!(cloned.analysis(), "demand");
    }
}
