//! Deterministically seeded hash collections for the solvers.
//!
//! The std `HashMap` randomizes its seed per instance, so iteration
//! order — and therefore everything downstream of it: worklist
//! scheduling, `flow_ins`/`flow_outs` counters, path-table interning
//! order — varies from run to run even though the fixpoint itself is
//! order-independent. The engine's per-stage metrics are only
//! comparable across runs (and across thread counts) if those counters
//! are reproducible, so every solver-internal map uses this fixed
//! multiply-rotate hasher (the FxHash scheme from rustc) instead.
//!
//! The keys hashed here are small ids (`NodeId`, `PathId`, `Pair`),
//! which is exactly the workload FxHash is good at; DoS resistance is
//! irrelevant for analyzing trusted benchmark programs.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with a fixed, deterministic hasher.
pub type HashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with a fixed, deterministic hasher.
pub type HashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc multiply-rotate hasher: fast on word-sized keys and
/// stable across runs, platforms, and thread counts.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: HashMap<u32, u32> = HashMap::default();
            for i in 0..1000u32 {
                m.insert(i.wrapping_mul(2654435761), i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut seen = HashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
