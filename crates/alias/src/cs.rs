//! The maximally context-sensitive points-to analysis (paper §4, Fig. 5).
//!
//! Qualified points-to pairs carry *assumption sets*: each assumption is a
//! `(formal output, pair)` that must hold on entry to the enclosing
//! procedure for the pair to hold. Assumptions are introduced when actuals
//! cross into formals, chained (unioned) at lookups and updates, and
//! resolved at returns by matching them against the pairs holding at each
//! call site — the Cartesian product of the satisfying assumption sets
//! qualifies the returned pair (`propagate-return` in the paper).
//!
//! Two ingredients make the exponential algorithm feasible (paper §4.2):
//!
//! 1. **Subsumption**: `(p, B)` is discarded wherever `(p, A)` already
//!    holds with `A ⊆ B`.
//! 2. **CI pruning**: the context-insensitive result bounds each memory
//!    operation; single-target operations introduce no location
//!    assumptions, and store pairs provably unmodified by an update pass
//!    through without new assumptions.

use crate::ci::CiResult;
use crate::fingerprint::GraphIndex;
use crate::fxhash::{HashMap, HashSet};
use crate::path::{AccessOp, Pair, PathId, PathTable};
use crate::summary::{
    FuncFacts, FunctionSummary, MemOpPruning, ResumeStats, SolverSummaries, StableAssum, Vocab,
};
use std::collections::VecDeque;
use std::fmt;
use vdg::graph::{Graph, InputId, NodeId, NodeKind, OutputId, VFuncId};

/// Interned assumption-set id. Set 0 is the empty set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetId(pub u32);

/// Configuration of the CS solver.
#[derive(Debug, Clone)]
pub struct CsConfig {
    /// Heap site naming; must match the CI configuration when
    /// `ci_pruning` is on.
    pub heap_naming: crate::ci::HeapNaming,
    /// Apply the subsumption rule on assumption sets (§4.2).
    pub subsumption: bool,
    /// Use the CI result to prune assumption introduction (§4.2).
    ///
    /// Pruning preserves precision *under the paper's standard
    /// assumptions* (all intraprocedural paths execute, all dereferences
    /// are non-null). In corner cases where the maximally precise CS can
    /// prove an operation references zero locations in some context, the
    /// pruned analysis keeps the conservative CI-backed answer — the
    /// caveat of the paper's footnote 8. The pruned result is always
    /// sandwiched between the maximal CS and the CI solutions (tested in
    /// `tests/properties.rs`).
    pub ci_pruning: bool,
    /// Perform strong updates; must match the CI configuration when
    /// `ci_pruning` is on.
    pub strong_updates: bool,
    /// Abort after this many transfer-function applications; the
    /// unoptimized algorithm is exponential and this is the safety valve
    /// the paper lacked (it simply waited hours).
    pub max_steps: u64,
}

impl Default for CsConfig {
    fn default() -> Self {
        CsConfig {
            heap_naming: crate::ci::HeapNaming::Site,
            subsumption: true,
            ci_pruning: true,
            strong_updates: true,
            max_steps: 200_000_000,
        }
    }
}

/// The CS analysis exceeded its step budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepLimitExceeded {
    /// The budget that was exhausted.
    pub steps: u64,
}

impl fmt::Display for StepLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "context-sensitive analysis exceeded {} transfer applications",
            self.steps
        )
    }
}

impl std::error::Error for StepLimitExceeded {}

/// Result of the context-sensitive analysis, with assumptions stripped
/// (paper §4.1 end: duplicates removed after stripping).
#[derive(Debug, Clone)]
pub struct CsResult {
    /// Path universe: the CI table extended with any CS-only paths.
    pub paths: PathTable,
    stripped: Vec<Vec<Pair>>,
    /// The full qualified solution: per output, each pair with its
    /// antichain of assumption sets. Kept because "some context-sensitive
    /// analyses prefer to use the qualified information directly; this
    /// would be easy to accommodate" (paper §4.1).
    qualified: Vec<Vec<(Pair, Vec<Vec<Assumption>>)>>,
    /// Discovered call edges, sorted per call site (for summaries).
    pub(crate) callees: HashMap<NodeId, Vec<VFuncId>>,
    /// Transfer-function applications (`flow-in`s).
    pub flow_ins: u64,
    /// Retained meets (`flow-out`s): emissions that survived the
    /// subsumption check and grew an output's antichain. Discarded
    /// attempts are counted in [`CsResult::dedup_hits`].
    pub flow_outs: u64,
    /// Emission attempts discarded as duplicates or by subsumption.
    pub dedup_hits: u64,
    /// Assumption-set union operations performed — one per assumption in
    /// every Cartesian-product step of `propagate-return`, plus the
    /// chaining unions at lookups, updates, and copies. This is the §4.2
    /// meet work that emission counts no longer proxy once difference
    /// propagation prunes re-derived combinations.
    pub meet_steps: u64,
    /// Number of distinct assumption sets ever interned.
    pub distinct_assumption_sets: usize,
    /// Size of the largest assumption set encountered.
    pub max_assumption_set: usize,
}

/// One assumption of a qualified pair: `pair` must hold on the given
/// formal output on entry to the enclosing procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assumption {
    /// The formal-parameter output the assumption constrains.
    pub formal: OutputId,
    /// The points-to pair that must hold there on entry.
    pub pair: Pair,
}

impl CsResult {
    /// The stripped points-to pairs on an output, sorted.
    pub fn pairs(&self, o: OutputId) -> &[Pair] {
        &self.stripped[o.0 as usize]
    }

    /// Total stripped pairs across all outputs (Figure 6).
    pub fn total_pairs(&self) -> usize {
        self.stripped.iter().map(|p| p.len()).sum()
    }

    /// Distinct referents at a memory operation's location input.
    pub fn loc_referents(&self, graph: &Graph, node: NodeId) -> Vec<PathId> {
        let loc_out = graph.input_src(node, 0);
        let mut refs: Vec<PathId> = self.pairs(loc_out).iter().map(|p| p.referent).collect();
        refs.sort_unstable();
        refs.dedup();
        refs
    }

    /// The qualified pairs on an output: each pair with the minimal
    /// assumption sets under which it holds (an empty inner vec means it
    /// holds unconditionally).
    pub fn qualified_pairs(&self, o: OutputId) -> &[(Pair, Vec<Vec<Assumption>>)] {
        &self.qualified[o.0 as usize]
    }

    /// Renders one qualified pair for diagnostics:
    /// `(p, r) if {f0: (a, b), ...} | {...}`.
    pub fn display_qualified(&self, graph: &Graph, pair: Pair, sets: &[Vec<Assumption>]) -> String {
        let pp = |p: Pair| {
            format!(
                "({} -> {})",
                self.paths.display(p.path, graph),
                self.paths.display(p.referent, graph)
            )
        };
        let mut out = pp(pair);
        if sets.iter().any(|s| s.is_empty()) {
            return out;
        }
        out.push_str(" if ");
        let rendered: Vec<String> = sets
            .iter()
            .map(|set| {
                let items: Vec<String> = set
                    .iter()
                    .map(|a| format!("{}@{}", pp(a.pair), a.formal.0))
                    .collect();
                format!("{{{}}}", items.join(", "))
            })
            .collect();
        out.push_str(&rendered.join(" | "));
        out
    }
}

/// Runs the context-sensitive analysis, using `ci` for the §4.2 pruning
/// optimizations (pass the result of [`crate::ci::analyze_ci`] on the
/// same graph).
///
/// # Errors
///
/// Returns [`StepLimitExceeded`] when `config.max_steps` is exhausted —
/// expected for the unoptimized configuration on non-trivial inputs.
pub fn analyze_cs(
    graph: &Graph,
    ci: &CiResult,
    config: &CsConfig,
) -> Result<CsResult, StepLimitExceeded> {
    let mut s = CsSolver::new(graph, ci, config.clone());
    s.seed();
    s.run()?;
    Ok(s.finish())
}

/// Interning tables for assumptions and assumption sets.
struct Assums {
    infos: Vec<(OutputId, Pair)>,
    ids: HashMap<(OutputId, Pair), u32>,
    sets: Vec<Box<[u32]>>,
    set_ids: HashMap<Box<[u32]>, u32>,
    union_memo: HashMap<(u32, u32), u32>,
    /// Union operations requested (the CS meet count; memoized re-unions
    /// included, since the algorithm still performs the meet logically).
    unions: u64,
}

impl Assums {
    const EMPTY: SetId = SetId(0);

    fn new() -> Self {
        let mut a = Assums {
            infos: Vec::new(),
            ids: HashMap::default(),
            sets: Vec::new(),
            set_ids: HashMap::default(),
            union_memo: HashMap::default(),
            unions: 0,
        };
        a.intern_set(Box::new([]));
        a
    }

    fn intern_set(&mut self, elems: Box<[u32]>) -> SetId {
        if let Some(&id) = self.set_ids.get(&elems) {
            return SetId(id);
        }
        let id = self.sets.len() as u32;
        self.sets.push(elems.clone());
        self.set_ids.insert(elems, id);
        SetId(id)
    }

    fn assum(&mut self, formal: OutputId, pair: Pair) -> u32 {
        if let Some(&id) = self.ids.get(&(formal, pair)) {
            return id;
        }
        let id = self.infos.len() as u32;
        self.infos.push((formal, pair));
        self.ids.insert((formal, pair), id);
        id
    }

    fn info(&self, a: u32) -> (OutputId, Pair) {
        self.infos[a as usize]
    }

    fn singleton(&mut self, a: u32) -> SetId {
        self.intern_set(Box::new([a]))
    }

    fn elems(&self, s: SetId) -> &[u32] {
        &self.sets[s.0 as usize]
    }

    fn len(&self, s: SetId) -> usize {
        self.elems(s).len()
    }

    fn union(&mut self, a: SetId, b: SetId) -> SetId {
        self.unions += 1;
        if a == b || b == Self::EMPTY {
            return a;
        }
        if a == Self::EMPTY {
            return b;
        }
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&u) = self.union_memo.get(&key) {
            return SetId(u);
        }
        // Subset fast paths: the merged set would re-intern to the
        // superset's id anyway, so skip the merge and memoize directly.
        if self.subset(a, b) {
            self.union_memo.insert(key, b.0);
            return b;
        }
        if self.subset(b, a) {
            self.union_memo.insert(key, a.0);
            return a;
        }
        let (xa, xb) = (self.elems(a), self.elems(b));
        let mut out = Vec::with_capacity(xa.len() + xb.len());
        let (mut i, mut j) = (0, 0);
        while i < xa.len() && j < xb.len() {
            match xa[i].cmp(&xb[j]) {
                std::cmp::Ordering::Less => {
                    out.push(xa[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(xb[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(xa[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&xa[i..]);
        out.extend_from_slice(&xb[j..]);
        let u = self.intern_set(out.into_boxed_slice());
        self.union_memo.insert(key, u.0);
        u
    }

    /// Whether `a ⊆ b`.
    fn subset(&self, a: SetId, b: SetId) -> bool {
        if a == b || a == Self::EMPTY {
            return true;
        }
        let (xa, xb) = (self.elems(a), self.elems(b));
        if xa.len() > xb.len() {
            return false;
        }
        let mut j = 0;
        for &x in xa {
            while j < xb.len() && xb[j] < x {
                j += 1;
            }
            if j >= xb.len() || xb[j] != x {
                return false;
            }
            j += 1;
        }
        true
    }
}

/// Pruning information derived from the CI result, per memory operation.
#[derive(Debug, Clone, Default)]
struct MemOpCi {
    /// CI referents at the operation's location input.
    loc_refs: Vec<PathId>,
    /// Exactly one location: no location assumptions needed.
    single: bool,
}

struct CsSolver<'g> {
    g: &'g Graph,
    cfg: CsConfig,
    paths: PathTable,
    alloc_owner: HashMap<vdg::graph::BaseId, VFuncId>,
    assums: Assums,
    /// Per output: pair -> antichain of assumption sets.
    p: Vec<HashMap<Pair, Vec<SetId>>>,
    wl: VecDeque<(InputId, Pair, SetId)>,
    callees: HashMap<NodeId, Vec<VFuncId>>,
    callers: HashMap<VFuncId, Vec<NodeId>>,
    /// Entry output -> formal index within its function's entry outputs.
    formal_pos: HashMap<OutputId, usize>,
    memop_ci: HashMap<NodeId, MemOpCi>,
    flow_ins: u64,
    flow_outs: u64,
    dedup_hits: u64,
    /// Work performed inside transfer functions (Cartesian-product
    /// combinations in `propagate_return`); counted against the step
    /// budget so a single pathological return cannot hang the solver.
    work: u64,
    max_set: usize,
}

impl<'g> CsSolver<'g> {
    fn new(g: &'g Graph, ci: &CiResult, cfg: CsConfig) -> Self {
        let mut formal_pos = HashMap::default();
        for f in g.func_ids() {
            let entry = g.func(f).entry;
            for (i, &o) in g.node(entry).outputs.iter().enumerate() {
                formal_pos.insert(o, i);
            }
        }
        let mut memop_ci = HashMap::default();
        if cfg.ci_pruning {
            for (node, _) in g.all_mem_ops() {
                let refs = ci.loc_referents(g, node);
                memop_ci.insert(
                    node,
                    MemOpCi {
                        single: refs.len() == 1,
                        loc_refs: refs,
                    },
                );
            }
        }
        let alloc_owner = if cfg.heap_naming == crate::ci::HeapNaming::CallString1 {
            crate::ci::alloc_owner_map(g)
        } else {
            HashMap::default()
        };
        CsSolver {
            g,
            cfg,
            alloc_owner,
            // Clone the CI path table so PathIds stay comparable across
            // the two analyses (CS may intern additional paths).
            paths: ci.paths.clone(),
            assums: Assums::new(),
            p: vec![HashMap::default(); g.output_count()],
            wl: VecDeque::new(),
            callees: HashMap::default(),
            callers: HashMap::default(),
            formal_pos,
            memop_ci,
            flow_ins: 0,
            flow_outs: 0,
            dedup_hits: 0,
            work: 0,
            max_set: 0,
        }
    }

    fn seed(&mut self) {
        let mut seeds = Vec::new();
        for (id, n) in self.g.nodes() {
            let base = match n.kind {
                NodeKind::Base(b) | NodeKind::Alloc(b) | NodeKind::FuncConst(b) => b,
                _ => continue,
            };
            let root = self.paths.base_root(base);
            let out = self.g.node(id).outputs[0];
            seeds.push((out, Pair::new(PathTable::EMPTY, root)));
        }
        for (out, pair) in seeds {
            self.flow_out(out, pair, Assums::EMPTY);
        }
    }

    fn run(&mut self) -> Result<(), StepLimitExceeded> {
        while let Some((input, pair, set)) = self.wl.pop_front() {
            self.flow_ins += 1;
            if self.flow_ins + self.work > self.cfg.max_steps {
                return Err(StepLimitExceeded {
                    steps: self.cfg.max_steps,
                });
            }
            let info = self.g.input(input);
            let emits = self.transfer(info.node, info.port as usize, pair, set);
            for (out, pair, set) in emits {
                self.flow_out(out, pair, set);
            }
        }
        if self.flow_ins + self.work > self.cfg.max_steps {
            return Err(StepLimitExceeded {
                steps: self.cfg.max_steps,
            });
        }
        Ok(())
    }

    /// Pushes `src`'s committed qualified pairs through `(node, port)`
    /// without queueing `src` itself — the resume boundary delivery.
    /// Over-delivery is harmless: any assumption set the transfer can
    /// emit from a committed fact is a superset of (or equal to) some
    /// held minimal antichain element downstream, so subsumption or the
    /// exact-dedup path absorbs it.
    fn deliver_committed(&mut self, node: NodeId, port: usize, src: OutputId) {
        let items: Vec<(Pair, Vec<SetId>)> = self.p[src.0 as usize]
            .iter()
            .map(|(p, sets)| (*p, sets.clone()))
            .collect();
        for (pair, sets) in items {
            for set in sets {
                self.flow_ins += 1;
                let emits = self.transfer(node, port, pair, set);
                for (out, p, sid) in emits {
                    self.flow_out(out, p, sid);
                }
            }
        }
    }

    fn finish(self) -> CsResult {
        let mut stripped = Vec::with_capacity(self.p.len());
        let mut qualified = Vec::with_capacity(self.p.len());
        for m in &self.p {
            let mut pairs: Vec<Pair> = m.keys().copied().collect();
            pairs.sort_unstable();
            let mut q: Vec<(Pair, Vec<Vec<Assumption>>)> = pairs
                .iter()
                .map(|pair| {
                    let sets = m[pair]
                        .iter()
                        .map(|&sid| {
                            self.assums
                                .elems(sid)
                                .iter()
                                .map(|&a| {
                                    let (formal, pr) = self.assums.info(a);
                                    Assumption { formal, pair: pr }
                                })
                                .collect()
                        })
                        .collect();
                    (*pair, sets)
                })
                .collect();
            q.sort_by_key(|(p, _)| *p);
            stripped.push(pairs);
            qualified.push(q);
        }
        let mut callees = self.callees;
        for v in callees.values_mut() {
            v.sort_unstable_by_key(|f| f.0);
        }
        CsResult {
            paths: self.paths,
            stripped,
            qualified,
            callees,
            flow_ins: self.flow_ins,
            flow_outs: self.flow_outs,
            dedup_hits: self.dedup_hits,
            meet_steps: self.assums.unions,
            distinct_assumption_sets: self.assums.sets.len(),
            max_assumption_set: self.max_set,
        }
    }

    fn flow_out(&mut self, out: OutputId, pair: Pair, set: SetId) {
        self.max_set = self.max_set.max(self.assums.len(set));
        let chain = self.p[out.0 as usize].entry(pair).or_default();
        if self.cfg.subsumption {
            // Discard if some held set is ⊆ the new one.
            if chain.iter().any(|&s| self.assums.subset(s, set)) {
                self.dedup_hits += 1;
                return;
            }
            // Drop held supersets to keep the antichain minimal.
            chain.retain(|&s| !self.assums.subset(set, s));
        } else if chain.contains(&set) {
            self.dedup_hits += 1;
            return;
        }
        chain.push(set);
        self.flow_outs += 1;
        for &input in self.g.consumers(out) {
            self.wl.push_back((input, pair, set));
        }
    }

    /// All qualified pairs currently at an input.
    fn qpairs_at(&self, node: NodeId, port: usize) -> Vec<(Pair, Vec<SetId>)> {
        let src = self.g.input_src(node, port);
        self.p[src.0 as usize]
            .iter()
            .map(|(p, sets)| (*p, sets.clone()))
            .collect()
    }

    fn sets_of(&self, out: OutputId, pair: Pair) -> Option<Vec<SetId>> {
        self.p[out.0 as usize].get(&pair).cloned()
    }

    /// k=1 heap naming at return boundaries; see `ci::Solver::rename_heap`.
    fn rename_heap(&mut self, pair: Pair, f: VFuncId, call: NodeId) -> Pair {
        if self.cfg.heap_naming != crate::ci::HeapNaming::CallString1 {
            return pair;
        }
        let fix = |paths: &mut PathTable,
                   alloc_owner: &HashMap<vdg::graph::BaseId, VFuncId>,
                   p: PathId|
         -> PathId {
            match paths.base_of(p) {
                Some(b) if !paths.is_synthetic(b) && alloc_owner.get(&b) == Some(&f) => {
                    let clone = paths.heap_clone(b, call.0);
                    paths.rebase(p, clone)
                }
                _ => p,
            }
        };
        Pair::new(
            fix(&mut self.paths, &self.alloc_owner, pair.path),
            fix(&mut self.paths, &self.alloc_owner, pair.referent),
        )
    }

    fn cooper_variants(&mut self, pair: Pair, boundary_func: VFuncId) -> Vec<Pair> {
        // Identical to the CI rule; see `ci.rs`.
        let mut out = vec![pair];
        for side in 0..2 {
            let n = out.len();
            for i in 0..n {
                let p = out[i];
                let path = if side == 0 { p.path } else { p.referent };
                let Some(older) = self.paths.cooper_older_of(path) else {
                    continue;
                };
                let Some(base) = self.paths.base_of(path) else {
                    continue;
                };
                let owner = match &self.g.base(base).kind {
                    vdg::graph::BaseKind::Local { func, .. } => *func,
                    _ => continue,
                };
                if !self.g.can_reach(boundary_func, owner) {
                    continue;
                }
                let rebased = self.paths.rebase(path, older);
                out.push(if side == 0 {
                    Pair::new(rebased, p.referent)
                } else {
                    Pair::new(p.path, rebased)
                });
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn transfer(
        &mut self,
        node: NodeId,
        port: usize,
        pair: Pair,
        set: SetId,
    ) -> Vec<(OutputId, Pair, SetId)> {
        let g = self.g;
        let n = g.node(node);
        let outs = &n.outputs;
        let mut em: Vec<(OutputId, Pair, SetId)> = Vec::new();
        match &n.kind {
            NodeKind::Member(f) => {
                let r = self.paths.child(pair.referent, AccessOp::Field(*f));
                em.push((outs[0], Pair::new(pair.path, r), set));
            }
            NodeKind::IndexElem => {
                let r = self.paths.child(pair.referent, AccessOp::Index);
                em.push((outs[0], Pair::new(pair.path, r), set));
            }
            NodeKind::ExtractField(f) => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Field(*f)) {
                    em.push((outs[0], Pair::new(p, pair.referent), set));
                }
            }
            NodeKind::ExtractElem => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Index) {
                    em.push((outs[0], Pair::new(p, pair.referent), set));
                }
            }
            NodeKind::PassThrough => {
                if port == 0 {
                    em.push((outs[0], pair, set));
                }
            }
            NodeKind::Gamma => em.push((outs[0], pair, set)),
            NodeKind::Free => {
                // Store identity; pointer-input pairs (the checker-facing
                // kill-set) are not propagated.
                if port == 1 {
                    em.push((outs[0], pair, set));
                }
            }
            NodeKind::Primop => {}
            NodeKind::Lookup { .. } => {
                let single = self.memop_ci.get(&node).map(|m| m.single).unwrap_or(false);
                match port {
                    0 => {
                        for (sp, s_sets) in self.qpairs_at(node, 1) {
                            if self.paths.dom(pair.referent, sp.path) {
                                let off = self.paths.subtract(sp.path, pair.referent);
                                let p = self.paths.append(pair.path, off);
                                for ss in s_sets {
                                    let u = if single {
                                        ss
                                    } else {
                                        self.assums.union(set, ss)
                                    };
                                    em.push((outs[0], Pair::new(p, sp.referent), u));
                                }
                            }
                        }
                    }
                    _ => {
                        for (lp, l_sets) in self.qpairs_at(node, 0) {
                            if self.paths.dom(lp.referent, pair.path) {
                                let off = self.paths.subtract(pair.path, lp.referent);
                                let p = self.paths.append(lp.path, off);
                                for ls in l_sets {
                                    let u = if single {
                                        set
                                    } else {
                                        self.assums.union(ls, set)
                                    };
                                    em.push((outs[0], Pair::new(p, pair.referent), u));
                                }
                            }
                        }
                    }
                }
            }
            NodeKind::Update { .. } => {
                let mci = self.memop_ci.get(&node);
                let single = mci.map(|m| m.single).unwrap_or(false);
                // A store pair passes without new assumptions when the CI
                // bound proves no modified location can overwrite it.
                let pruned_pass = |paths: &PathTable, ps: PathId| -> bool {
                    match mci {
                        Some(m) if !m.loc_refs.is_empty() => {
                            !m.loc_refs.iter().any(|&r| paths.strong_dom(r, ps))
                        }
                        _ => false,
                    }
                };
                match port {
                    0 => {
                        for (vp, v_sets) in self.qpairs_at(node, 2) {
                            let path = self.paths.append(pair.referent, vp.path);
                            for vs in v_sets {
                                let u = if single {
                                    vs
                                } else {
                                    self.assums.union(set, vs)
                                };
                                em.push((outs[0], Pair::new(path, vp.referent), u));
                            }
                        }
                        for (sp, s_sets) in self.qpairs_at(node, 1) {
                            if self.cfg.strong_updates
                                && self.paths.strong_dom(pair.referent, sp.path)
                            {
                                continue;
                            }
                            let pruned =
                                self.cfg.strong_updates && pruned_pass(&self.paths, sp.path);
                            for ss in s_sets {
                                let u = if pruned || !self.cfg.strong_updates {
                                    ss
                                } else {
                                    self.assums.union(set, ss)
                                };
                                em.push((outs[0], sp, u));
                            }
                        }
                    }
                    1 => {
                        // The pruned pass-through still waits for a
                        // location pair to arrive (the node must be
                        // reachable); it only skips the location
                        // assumptions. Emitting before any location pair
                        // exists would realize the imprecision the
                        // paper's footnote 8 warns about.
                        let loc_src = self.g.input_src(node, 0);
                        let has_loc = !self.p[loc_src.0 as usize].is_empty();
                        if self.cfg.strong_updates && has_loc && pruned_pass(&self.paths, pair.path)
                        {
                            em.push((outs[0], pair, set));
                        } else {
                            for (lp, l_sets) in self.qpairs_at(node, 0) {
                                if self.cfg.strong_updates
                                    && self.paths.strong_dom(lp.referent, pair.path)
                                {
                                    continue;
                                }
                                if !self.cfg.strong_updates {
                                    // Weak updates never block; the pass
                                    // needs no location assumption, only
                                    // evidence some location arrived.
                                    em.push((outs[0], pair, set));
                                    break;
                                }
                                for ls in l_sets {
                                    let u = if single {
                                        set
                                    } else {
                                        self.assums.union(ls, set)
                                    };
                                    em.push((outs[0], pair, u));
                                }
                            }
                        }
                    }
                    _ => {
                        for (lp, l_sets) in self.qpairs_at(node, 0) {
                            let path = self.paths.append(lp.referent, pair.path);
                            for ls in l_sets {
                                let u = if single {
                                    set
                                } else {
                                    self.assums.union(ls, set)
                                };
                                em.push((outs[0], Pair::new(path, pair.referent), u));
                            }
                        }
                    }
                }
            }
            NodeKind::CopyMem => {
                // Conservative: pass-through plus re-rooting; all three
                // sets union (no pruning — copymem sites are rare).
                match port {
                    0 => {
                        em.push((outs[0], pair, set));
                        let dsts = self.qpairs_at(node, 1);
                        for (srcp, src_sets) in self.qpairs_at(node, 2) {
                            if self.paths.dom(srcp.referent, pair.path) {
                                let off = self.paths.subtract(pair.path, srcp.referent);
                                for (dp, d_sets) in &dsts {
                                    let path = self.paths.append(dp.referent, off);
                                    for &ss in &src_sets {
                                        for &ds in d_sets {
                                            let u1 = self.assums.union(set, ss);
                                            let u = self.assums.union(u1, ds);
                                            em.push((outs[0], Pair::new(path, pair.referent), u));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    1 | 2 => {
                        let stores = self.qpairs_at(node, 0);
                        let others = self.qpairs_at(node, if port == 1 { 2 } else { 1 });
                        for (op, o_sets) in others {
                            let (dstp, dsets, srcp, ssets) = if port == 1 {
                                (pair, vec![set], op, o_sets)
                            } else {
                                (op, o_sets, pair, vec![set])
                            };
                            for (sp, st_sets) in &stores {
                                if self.paths.dom(srcp.referent, sp.path) {
                                    let off = self.paths.subtract(sp.path, srcp.referent);
                                    let path = self.paths.append(dstp.referent, off);
                                    for &ds in &dsets {
                                        for &ss in &ssets {
                                            for &sts in st_sets {
                                                let u1 = self.assums.union(ds, ss);
                                                let u = self.assums.union(u1, sts);
                                                em.push((outs[0], Pair::new(path, sp.referent), u));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
            NodeKind::Call => {
                if port == 0 {
                    if let Some(f) = self.paths.func_of(pair.referent) {
                        self.register_callee(node, f, &mut em);
                    }
                } else {
                    let n_callees = self.callees.get(&node).map_or(0, |v| v.len());
                    for i in 0..n_callees {
                        let f = self.callees[&node][i];
                        self.forward_to_formal(node, port, pair, f, &mut em);
                        // New actual information may satisfy assumptions on
                        // pairs already waiting at the callee's returns —
                        // but only assumptions on this pair at this
                        // formal, and only through product combinations
                        // that use the newly committed set.
                        self.repropagate_new_actual(node, port, pair, set, f, &mut em);
                    }
                }
            }
            NodeKind::Return { func } => {
                let n_callers = self.callers.get(func).map_or(0, |v| v.len());
                for i in 0..n_callers {
                    let call = self.callers[func][i];
                    self.propagate_return(call, port, pair, set, *func, &mut em);
                }
            }
            NodeKind::Base(_)
            | NodeKind::Alloc(_)
            | NodeKind::FuncConst(_)
            | NodeKind::InitStore
            | NodeKind::ScalarConst
            | NodeKind::NullConst
            | NodeKind::Entry { .. } => {}
        }
        em
    }

    fn register_callee(&mut self, call: NodeId, f: VFuncId, em: &mut Vec<(OutputId, Pair, SetId)>) {
        let list = self.callees.entry(call).or_default();
        if list.contains(&f) {
            return;
        }
        list.push(f);
        self.callers.entry(f).or_default().push(call);
        let n_inputs = self.g.node(call).inputs.len();
        for port in 1..n_inputs {
            for (pair, _) in self.qpairs_at(call, port) {
                self.forward_to_formal(call, port, pair, f, em);
            }
        }
        self.repropagate_returns(call, f, em);
    }

    /// Actual pairs gain the single assumption that they held on entry
    /// (paper: "the propagated pair is given the assumption set {(f, p)}").
    fn forward_to_formal(
        &mut self,
        _call: NodeId,
        port: usize,
        pair: Pair,
        f: VFuncId,
        em: &mut Vec<(OutputId, Pair, SetId)>,
    ) {
        let entry = self.g.func(f).entry;
        let formals = &self.g.node(entry).outputs;
        let idx = port - 1;
        if idx >= formals.len() {
            return;
        }
        let formal = formals[idx];
        for v in self.cooper_variants(pair, f) {
            let a = self.assums.assum(formal, v);
            let s = self.assums.singleton(a);
            em.push((formal, v, s));
        }
    }

    fn repropagate_returns(
        &mut self,
        call: NodeId,
        f: VFuncId,
        em: &mut Vec<(OutputId, Pair, SetId)>,
    ) {
        let g = self.g;
        let returns = &g.func(f).returns;
        for &ret in returns {
            let n_ports = g.node(ret).inputs.len();
            for port in 0..n_ports {
                for (pair, sets) in self.qpairs_at(ret, port) {
                    for set in sets {
                        self.propagate_return(call, port, pair, set, f, em);
                    }
                }
            }
        }
    }

    /// Difference-propagation form of [`repropagate_returns`]: a new
    /// actual `(apair, aset)` delivered on `aport` can only change the
    /// resolution of assumptions `(formal-of-aport, apair)`, and the only
    /// combinations not already emitted by earlier deliveries are those
    /// that use `aset` in such a slot. Return pairs whose assumption sets
    /// don't mention the assumption are skipped without touching the
    /// product at all.
    fn repropagate_new_actual(
        &mut self,
        call: NodeId,
        aport: usize,
        apair: Pair,
        aset: SetId,
        f: VFuncId,
        em: &mut Vec<(OutputId, Pair, SetId)>,
    ) {
        let g = self.g;
        let entry = g.func(f).entry;
        let formals = &g.node(entry).outputs;
        let idx = aport - 1;
        if idx >= formals.len() {
            return;
        }
        let formal = formals[idx];
        // If the assumption was never interned, no waiting pair can
        // mention it.
        let Some(&aid) = self.assums.ids.get(&(formal, apair)) else {
            return;
        };
        let returns = &g.func(f).returns;
        for &ret in returns {
            let n_ports = g.node(ret).inputs.len();
            for port in 0..n_ports {
                for (pair, sets) in self.qpairs_at(ret, port) {
                    for set in sets {
                        if self.assums.elems(set).contains(&aid) {
                            self.propagate_return_from(
                                call,
                                port,
                                pair,
                                set,
                                f,
                                Some((aid, aset)),
                                em,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Resolves the assumptions on a returned qualified pair against the
    /// pairs holding at one call site (paper Fig. 5, `propagate-return`):
    /// the Cartesian product of the satisfying assumption sets yields the
    /// caller-side qualifications.
    fn propagate_return(
        &mut self,
        call: NodeId,
        ret_port: usize,
        pair: Pair,
        set: SetId,
        f: VFuncId,
        em: &mut Vec<(OutputId, Pair, SetId)>,
    ) {
        self.propagate_return_from(call, ret_port, pair, set, f, None, em);
    }

    /// The general form of [`propagate_return`]. With `new_at =
    /// Some((a, s))`, only the slice of the Cartesian product that uses
    /// the newly committed set `s` to satisfy assumption `a` is emitted
    /// — the difference-propagation path taken when a fresh actual
    /// arrives at the call (see [`repropagate_new_actual`]).
    ///
    /// [`repropagate_new_actual`]: CsSolver::repropagate_new_actual
    #[allow(clippy::too_many_arguments)] // mirrors the paper's propagate-return signature
    fn propagate_return_from(
        &mut self,
        call: NodeId,
        ret_port: usize,
        pair: Pair,
        set: SetId,
        f: VFuncId,
        new_at: Option<(u32, SetId)>,
        em: &mut Vec<(OutputId, Pair, SetId)>,
    ) {
        let g = self.g;
        let outs = &g.node(call).outputs;
        if ret_port >= outs.len() {
            return;
        }
        let out = outs[ret_port];
        let pair = self.rename_heap(pair, f, call);
        let elems = self.assums.elems(set);
        // Collect, per assumption, the assumption sets under which the
        // assumed pair holds at the corresponding actual of this call.
        let mut options: Vec<Vec<SetId>> = Vec::with_capacity(elems.len());
        let mut matching: Vec<usize> = Vec::new();
        for (i, &a) in elems.iter().enumerate() {
            let (formal, fpair) = self.assums.info(a);
            let Some(&idx) = self.formal_pos.get(&formal) else {
                return;
            };
            let port = idx + 1;
            if !self.g.has_input(call, port) {
                return;
            }
            let src = self.g.input_src(call, port);
            let Some(sets) = self.sets_of(src, fpair) else {
                return; // assumption not satisfied (yet) at this site
            };
            if matches!(new_at, Some((aid, _)) if aid == a) {
                matching.push(i);
            }
            options.push(sets);
        }
        let variants = self.cooper_variants(pair, f);
        match new_at {
            None => {
                self.emit_product(out, &variants, &options, None, em);
            }
            Some((_, aset)) => {
                // Emit every combination that uses `aset` in at least one
                // matching slot; combinations over the older sets were
                // already emitted by earlier deliveries.
                for &slot in &matching {
                    if !self.emit_product(out, &variants, &options, Some((slot, aset)), em) {
                        return;
                    }
                }
            }
        }
    }

    /// Walks the Cartesian product of `options` (with `fixed` pinning one
    /// slot to a single set), unioning each combination and emitting it
    /// for every cooper variant. Returns `false` once the step budget is
    /// exhausted; each combination counts against it, and the run loop
    /// errors out on exhaustion.
    fn emit_product(
        &mut self,
        out: OutputId,
        variants: &[Pair],
        options: &[Vec<SetId>],
        fixed: Option<(usize, SetId)>,
        em: &mut Vec<(OutputId, Pair, SetId)>,
    ) -> bool {
        let mut combo = vec![0usize; options.len()];
        loop {
            self.work += 1;
            if self.flow_ins + self.work > self.cfg.max_steps {
                return false;
            }
            let mut u = Assums::EMPTY;
            for (oi, &ci_) in combo.iter().enumerate() {
                let s = match fixed {
                    Some((slot, fs)) if slot == oi => fs,
                    _ => options[oi][ci_],
                };
                u = self.assums.union(u, s);
            }
            for v in variants {
                em.push((out, *v, u));
            }
            // Advance the odometer (the pinned slot has length 1).
            let mut k = 0;
            loop {
                if k == options.len() {
                    return true;
                }
                let len = match fixed {
                    Some((slot, _)) if slot == k => 1,
                    _ => options[k].len(),
                };
                combo[k] += 1;
                if combo[k] < len {
                    break;
                }
                combo[k] = 0;
                k += 1;
            }
        }
    }
}

/// Extracts function `f`'s CS summary: per output, each qualified pair
/// with its minimal antichain of assumption sets (assumptions rewritten
/// onto formal *indices* — the §4 invariant that facts inside `f` only
/// carry assumptions on `f`'s own formals is verified, not trusted),
/// plus the CI pruning facts each of `f`'s memory operations was solved
/// under, so a resume can detect pruning drift.
pub(crate) fn extract_func(
    cs: &CsResult,
    graph: &Graph,
    index: &GraphIndex,
    ci: &CiResult,
    f: VFuncId,
) -> Option<FunctionSummary> {
    let fi = f.0 as usize;
    let entry_outs = &graph.node(graph.func(f).entry).outputs;
    let (os, oe) = (index.out_start[fi], index.out_end[fi]);
    let mut outputs = Vec::with_capacity((oe - os) as usize);
    for o in os..oe {
        let mut row = Vec::new();
        for (pair, sets) in cs.qualified_pairs(OutputId(o)) {
            let sp = crate::fingerprint::stable_pair(&cs.paths, graph, index, *pair)?;
            let mut stable_sets = Vec::with_capacity(sets.len());
            for set in sets {
                let mut ss = Vec::with_capacity(set.len());
                for a in set {
                    let formal = entry_outs.iter().position(|&e| e == a.formal)? as u32;
                    ss.push(StableAssum {
                        formal,
                        pair: crate::fingerprint::stable_pair(&cs.paths, graph, index, a.pair)?,
                    });
                }
                ss.sort_unstable();
                stable_sets.push(ss);
            }
            stable_sets.sort_unstable();
            row.push((sp, stable_sets));
        }
        outputs.push(row);
    }
    let mut memops = Vec::new();
    for (node, _) in graph.all_mem_ops() {
        if index.node_owner[node.0 as usize] != f {
            continue;
        }
        let mut refs = Vec::new();
        for r in ci.loc_referents(graph, node) {
            refs.push(crate::fingerprint::stable_path(&ci.paths, graph, index, r)?);
        }
        refs.sort_unstable();
        memops.push(MemOpPruning {
            offset: node.0 - index.node_start[fi],
            single: refs.len() == 1,
            loc_refs: refs,
        });
    }
    Some(FunctionSummary {
        fingerprint: index.func_fps[fi],
        calls: crate::fingerprint::stable_calls(graph, index, f, &cs.callees),
        facts: FuncFacts::Cs { outputs, memops },
    })
}

/// Translated CS facts of one clean function: per output offset, each
/// pair with its antichain of assumption sets over next-graph formals.
type CsRow = Vec<(Pair, Vec<Vec<(OutputId, Pair)>>)>;

/// Seeded resume of the assumption-set analysis.
///
/// The subset-seeding argument extends to the qualified lattice: each
/// output's value is a map from pairs to minimal antichains of
/// assumption sets, ordered by antichain refinement, and every transfer
/// function is monotone in it. Installing a clean function's final
/// antichains outside the dirty cone and iterating the cone converges
/// to exactly the fresh fixpoint — any combination `propagate-return`
/// could emit is subsumed by a held minimal set, so re-deliveries dedup.
///
/// Beyond the CI cone rules, two CS-specific invalidation channels are
/// closed: an in-cone actual re-derives the call's own outputs (the
/// `repropagate_new_actual` product can qualify new return pairs), and
/// a clean function whose recorded CI pruning facts drifted from the
/// *current* CI solution roots the affected memory operation's outputs
/// in the cone (§4.2 pruning decisions are baked into the assumption
/// sets).
///
/// `None` when the plan is rejected (wrong vocabulary, unstable naming,
/// call-string heap naming); `Some(Err(_))` when the re-solve exhausts
/// the step budget — both are fresh-solve fallbacks for the caller.
pub(crate) fn analyze_cs_resume(
    graph: &Graph,
    index: &GraphIndex,
    ci: &CiResult,
    prev: &SolverSummaries,
    config: &CsConfig,
) -> Option<Result<(CsResult, ResumeStats), StepLimitExceeded>> {
    use crate::fingerprint::{compute_cone_for, intern_stable, plan_base, ConeVocab, PlanBase};
    if prev.vocab != Vocab::Cs || config.heap_naming != crate::ci::HeapNaming::Site {
        return None;
    }
    let mut paths = ci.paths.clone();
    let base = plan_base(graph, index, prev, |f, summary| {
        let fi = f.0 as usize;
        let want = (index.out_end[fi] - index.out_start[fi]) as usize;
        let FuncFacts::Cs { outputs, .. } = &summary.facts else {
            return None;
        };
        if outputs.len() != want {
            return None;
        }
        let entry_outs = &graph.node(graph.func(f).entry).outputs;
        let mut rows: Vec<CsRow> = Vec::with_capacity(want);
        for row in outputs {
            let mut r: CsRow = Vec::with_capacity(row.len());
            for (sp, sets) in row {
                let a = intern_stable(graph, index, &mut paths, &sp.path)?;
                let b = intern_stable(graph, index, &mut paths, &sp.referent)?;
                let mut tsets = Vec::with_capacity(sets.len());
                for set in sets {
                    let mut ts = Vec::with_capacity(set.len());
                    for assum in set {
                        let formal = *entry_outs.get(assum.formal as usize)?;
                        let pa = intern_stable(graph, index, &mut paths, &assum.pair.path)?;
                        let pb = intern_stable(graph, index, &mut paths, &assum.pair.referent)?;
                        ts.push((formal, Pair::new(pa, pb)));
                    }
                    tsets.push(ts);
                }
                r.push((Pair::new(a, b), tsets));
            }
            rows.push(r);
        }
        Some(rows)
    })?;
    let PlanBase {
        translated,
        dirty,
        prev_edges,
        lost_callees,
    } = base;

    // Pruning drift: compare each clean function's recorded memop facts
    // against the current CI solution; a drifted operation's outputs
    // root the cone.
    let mut extra: Vec<OutputId> = Vec::new();
    for &f in translated.keys() {
        let fi = f.0 as usize;
        let summary = &prev.funcs[&graph.func(f).name];
        let FuncFacts::Cs { memops, .. } = &summary.facts else {
            continue;
        };
        for m in memops {
            let node = NodeId(index.node_start[fi] + m.offset);
            let mut refs = Vec::new();
            let mut ok = true;
            for r in ci.loc_referents(graph, node) {
                match crate::fingerprint::stable_path(&ci.paths, graph, index, r) {
                    Some(s) => refs.push(s),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            refs.sort_unstable();
            if !ok || m.single != (refs.len() == 1) || m.loc_refs != refs {
                extra.extend(graph.node(node).outputs.iter().copied());
            }
        }
    }
    let in_cone = compute_cone_for(
        graph,
        index,
        &dirty,
        &prev_edges,
        &lost_callees,
        ConeVocab::Cs,
        &extra,
    );

    let mut s = CsSolver::new(graph, ci, config.clone());
    s.paths = paths;

    // 1. Install out-of-cone antichains as silent seeds (no worklist).
    let mut seeded_outputs = 0;
    for (&f, rows) in &translated {
        let os = index.out_start[f.0 as usize];
        for (i, row) in rows.iter().enumerate() {
            let o = (os + i as u32) as usize;
            if in_cone[o] {
                continue;
            }
            for (pair, sets) in row {
                let mut sids = Vec::with_capacity(sets.len());
                for set in sets {
                    let mut ids: Vec<u32> = set
                        .iter()
                        .map(|&(formal, p)| s.assums.assum(formal, p))
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    s.max_set = s.max_set.max(ids.len());
                    sids.push(s.assums.intern_set(ids.into_boxed_slice()));
                }
                s.p[o].entry(*pair).or_default().extend(sids);
            }
            seeded_outputs += 1;
        }
    }

    // 2. Install call edges whose function input is out-of-cone.
    let mut call_edges: HashMap<NodeId, Vec<VFuncId>> = HashMap::default();
    for (n, fs) in &prev_edges {
        if !in_cone[graph.input_src(*n, 0).0 as usize] {
            call_edges.insert(*n, fs.clone());
        }
    }
    for (&call, fs) in &call_edges {
        for &f in fs {
            s.callees.entry(call).or_default().push(f);
            s.callers.entry(f).or_default().push(call);
        }
    }

    // 3. Constants dedup against the seeds; in-cone ones queue.
    s.seed();

    // 4. Boundary deliveries, mirroring the CI recipe (see
    //    `analyze_ci_resume`): plain nodes, then seeded-call actuals
    //    (the Call transfer both forwards to formals and re-resolves
    //    waiting returns through `repropagate_new_actual`), then return
    //    inputs of callees whose seeded callers have in-cone outputs.
    for (id, n) in graph.nodes() {
        match n.kind {
            NodeKind::Call | NodeKind::Return { .. } | NodeKind::Primop => continue,
            _ => {}
        }
        if !n.outputs.iter().any(|&o| in_cone[o.0 as usize]) {
            continue;
        }
        for port in 0..n.inputs.len() {
            if matches!(n.kind, NodeKind::PassThrough) && port != 0 {
                continue;
            }
            let src = graph.input_src(id, port);
            if !in_cone[src.0 as usize] {
                s.deliver_committed(id, port, src);
            }
        }
    }
    for (&call, fs) in &call_edges {
        let needed = fs.iter().any(|&f| {
            graph
                .node(graph.func(f).entry)
                .outputs
                .iter()
                .any(|&o| in_cone[o.0 as usize])
        });
        if !needed {
            continue;
        }
        for port in 1..graph.node(call).inputs.len() {
            let src = graph.input_src(call, port);
            if !in_cone[src.0 as usize] {
                s.deliver_committed(call, port, src);
            }
        }
    }
    let mut ret_needed: HashSet<VFuncId> = HashSet::default();
    for (&call, fs) in &call_edges {
        if graph
            .node(call)
            .outputs
            .iter()
            .any(|&o| in_cone[o.0 as usize])
        {
            ret_needed.extend(fs.iter().copied());
        }
    }
    for &f in &ret_needed {
        for &ret in &graph.func(f).returns {
            for port in 0..graph.node(ret).inputs.len() {
                let src = graph.input_src(ret, port);
                if !in_cone[src.0 as usize] {
                    s.deliver_committed(ret, port, src);
                }
            }
        }
    }

    // 5. Solve the cone.
    if let Err(e) = s.run() {
        return Some(Err(e));
    }
    let mut dirty_names: Vec<String> = dirty.iter().map(|f| graph.func(*f).name.clone()).collect();
    dirty_names.sort_unstable();
    let stats = ResumeStats {
        clean: graph.func_count() - dirty.len(),
        dirty: dirty_names,
        cone_outputs: in_cone.iter().filter(|&&b| b).count(),
        seeded_outputs,
        total_outputs: graph.output_count(),
    };
    Some(Ok((s.finish(), stats)))
}

/// Checks that the stripped CS solution is contained in the CI solution
/// on every output (a structural soundness property both solvers must
/// satisfy, since CS only filters unrealizable propagations).
pub fn cs_subset_of_ci(graph: &Graph, ci: &CiResult, cs: &CsResult) -> bool {
    for o in graph.output_ids() {
        let ci_set: HashSet<Pair> = ci.pairs(o).iter().copied().collect();
        for p in cs.pairs(o) {
            if !ci_set.contains(p) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{analyze_ci, CiConfig};
    use vdg::build::{lower, BuildOptions};

    fn analyze(src: &str) -> (Graph, CiResult, CsResult) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = analyze_ci(&g, &CiConfig::default());
        let cs = analyze_cs(&g, &ci, &CsConfig::default()).expect("within budget");
        (g, ci, cs)
    }

    fn names(r_paths: &PathTable, g: &Graph, refs: &[PathId]) -> Vec<String> {
        let mut v: Vec<String> = refs.iter().map(|&p| r_paths.display(p, g)).collect();
        v.sort();
        v
    }

    #[test]
    fn cs_equals_ci_on_straightline_code() {
        let (g, ci, cs) = analyze("int g; int main(void) { int *p; p = &g; return *p; }");
        assert!(cs_subset_of_ci(&g, &ci, &cs));
        assert_eq!(ci.total_pairs(), cs.total_pairs());
    }

    #[test]
    fn cs_separates_calling_contexts() {
        // The classic case where context-sensitivity wins: `id` is called
        // with &a and &b; CI merges, CS keeps them apart.
        let (g, ci, cs) = analyze(
            "int a; int b;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *x; int *y; x = id(&a); y = id(&b); \
             return *x + *y; }",
        );
        assert!(cs_subset_of_ci(&g, &ci, &cs));
        let ops = g.indirect_mem_ops();
        assert_eq!(ops.len(), 2);
        let (rx, _) = ops[0];
        let ci_refs = names(&ci.paths, &g, &ci.loc_referents(&g, rx));
        let cs_refs = names(&cs.paths, &g, &cs.loc_referents(&g, rx));
        assert_eq!(ci_refs, vec!["a", "b"]);
        assert_eq!(cs_refs, vec!["a"]);
        assert!(cs.total_pairs() < ci.total_pairs());
    }

    #[test]
    fn cs_separates_out_parameter_stores() {
        // Spurious CI pairs land on store outputs (other callers' locals)
        // but never reach dereferences — the paper's §5.2 case 1.
        let (g, ci, cs) = analyze(
            "int buf;\n\
             void put(int **slot) { *slot = &buf; }\n\
             int use_a(void) { int *a; put(&a); return *a; }\n\
             int use_b(void) { int *b; put(&b); return *b; }\n\
             int main(void) { return use_a() + use_b(); }",
        );
        assert!(cs_subset_of_ci(&g, &ci, &cs));
        // CS strips some store pairs (b -> buf inside use_a, etc.).
        assert!(
            cs.total_pairs() < ci.total_pairs(),
            "cs {} !< ci {}",
            cs.total_pairs(),
            ci.total_pairs()
        );
        // But at every indirect memory reference the solutions agree —
        // the paper's headline result.
        for (node, _) in g.indirect_mem_ops() {
            let a = names(&ci.paths, &g, &ci.loc_referents(&g, node));
            let b = names(&cs.paths, &g, &cs.loc_referents(&g, node));
            assert_eq!(a, b, "indirect op differs");
        }
    }

    #[test]
    fn cs_chains_assumptions_through_nested_calls() {
        let (g, ci, cs) = analyze(
            "int a; int b;\n\
             int *inner(int *p) { return p; }\n\
             int *outer(int *q) { return inner(q); }\n\
             int main(void) { int *x; int *y; x = outer(&a); y = outer(&b); \
             return *x + *y; }",
        );
        assert!(cs_subset_of_ci(&g, &ci, &cs));
        let ops = g.indirect_mem_ops();
        let (rx, _) = ops[0];
        let cs_refs = names(&cs.paths, &g, &cs.loc_referents(&g, rx));
        assert_eq!(cs_refs, vec!["a"]);
    }

    #[test]
    fn subsumption_does_not_change_results() {
        let src = "int a; int b;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *x; int *y; x = id(&a); y = id(&b); \
             return *x + *y; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&g, &CiConfig::default());
        let with = analyze_cs(&g, &ci, &CsConfig::default()).unwrap();
        let without = analyze_cs(
            &g,
            &ci,
            &CsConfig {
                subsumption: false,
                max_steps: 5_000_000,
                ..CsConfig::default()
            },
        )
        .unwrap();
        for o in g.output_ids() {
            assert_eq!(with.pairs(o), without.pairs(o), "output {o}");
        }
    }

    #[test]
    fn ci_pruning_does_not_change_results() {
        let src = "int buf;\n\
             void put(int **slot) { *slot = &buf; }\n\
             int use_a(void) { int *a; put(&a); return *a; }\n\
             int use_b(void) { int *b; put(&b); return *b; }\n\
             int main(void) { return use_a() + use_b(); }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&g, &CiConfig::default());
        let with = analyze_cs(&g, &ci, &CsConfig::default()).unwrap();
        let without = analyze_cs(
            &g,
            &ci,
            &CsConfig {
                ci_pruning: false,
                max_steps: 20_000_000,
                ..CsConfig::default()
            },
        )
        .unwrap();
        for o in g.output_ids() {
            assert_eq!(with.pairs(o), without.pairs(o), "output {o}");
        }
    }

    #[test]
    fn step_limit_reported() {
        let src = "int a; int *id(int *p) { return p; } \
                   int main(void) { int *x; x = id(&a); return *x; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&g, &CiConfig::default());
        let err = analyze_cs(
            &g,
            &ci,
            &CsConfig {
                max_steps: 3,
                ..CsConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.steps, 3);
    }

    #[test]
    fn function_pointer_results_match_ci() {
        // Function values stay context-insensitive (paper §4.1 end).
        let (g, ci, cs) = analyze(
            "int a; int b;\n\
             int *fa(void) { return &a; }\n\
             int *fb(void) { return &b; }\n\
             int main(void) { int *(*fp)(void); int c; c = getchar();\n\
               if (c) { fp = fa; } else { fp = fb; }\n\
               return *(fp()); }",
        );
        assert!(cs_subset_of_ci(&g, &ci, &cs));
        for (node, _) in g.indirect_mem_ops() {
            assert_eq!(
                names(&ci.paths, &g, &ci.loc_referents(&g, node)),
                names(&cs.paths, &g, &cs.loc_referents(&g, node))
            );
        }
    }

    #[test]
    fn recursion_terminates_and_is_sound() {
        let (g, ci, cs) = analyze(
            "struct node { int v; struct node *next; };\n\
             int sum(struct node *l) { if (l == NULL) return 0; \
             return l->v + sum(l->next); }\n\
             int main(void) {\n\
               struct node *h; struct node *n; int i; h = NULL;\n\
               for (i = 0; i < 3; i++) {\n\
                 n = (struct node*)malloc(sizeof(struct node));\n\
                 n->v = i; n->next = h; h = n;\n\
               }\n\
               return sum(h);\n\
             }",
        );
        assert!(cs_subset_of_ci(&g, &ci, &cs));
    }

    #[test]
    fn strong_updates_respected_in_cs() {
        let (g, ci, cs) = analyze(
            "int a; int b; int *p;\n\
             int main(void) { int **q; q = &p; p = &a; *q = &b; return *p; }",
        );
        assert!(cs_subset_of_ci(&g, &ci, &cs));
        let read = g
            .indirect_mem_ops()
            .into_iter()
            .find(|&(_n, w)| !w)
            .map(|(n, _)| n)
            .unwrap();
        assert_eq!(names(&cs.paths, &g, &cs.loc_referents(&g, read)), vec!["b"]);
    }

    #[test]
    fn qualified_pairs_exposed() {
        // Inside `id`, the formal's pair holds under the assumption that
        // it held on entry (paper: "p points to c on this output if ...").
        let (g, _, cs) = analyze(
            "int a;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *x; x = id(&a); return *x; }",
        );
        let id_entry = g.func(vdg::graph::VFuncId(0)).entry;
        let formal = g.node(id_entry).outputs[1]; // [store, p]
        let q = cs.qualified_pairs(formal);
        assert_eq!(q.len(), 1);
        let (pair, sets) = &q[0];
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 1);
        assert_eq!(sets[0][0].formal, formal);
        assert_eq!(sets[0][0].pair, *pair);
        let txt = cs.display_qualified(&g, *pair, sets);
        assert!(txt.contains("if"), "{txt}");
        assert!(txt.contains("a"), "{txt}");
        // Unconditional pairs render without assumptions.
        let (base_out, base_pair) = g
            .nodes()
            .find_map(|(_, n)| match n.kind {
                vdg::graph::NodeKind::Base(_) => Some(n.outputs[0]),
                _ => None,
            })
            .map(|o| (o, cs.qualified_pairs(o)[0].clone()))
            .unwrap();
        let _ = base_out;
        let txt = cs.display_qualified(&g, base_pair.0, &base_pair.1);
        assert!(!txt.contains("if"), "{txt}");
    }

    #[test]
    fn assumption_stats_populated() {
        let (_, _, cs) = analyze(
            "int a; int b;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *x; x = id(&a); return *x; }",
        );
        assert!(cs.distinct_assumption_sets >= 2);
        assert!(cs.max_assumption_set >= 1);
        assert!(cs.flow_ins > 0 && cs.flow_outs > 0);
    }
}
