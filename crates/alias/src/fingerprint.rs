//! Content-addressed function fingerprints, cross-graph fact
//! translation, and dirty-cone computation for incremental re-analysis.
//!
//! The incremental layer (`engine::incremental`) re-analyzes an edited
//! program by reusing the committed pair sets of functions whose VDG
//! content did not change. Three pieces make that sound:
//!
//! 1. **Fingerprints** ([`GraphIndex`]): a 64-bit content hash per
//!    function over the contiguous node slice the function owns — node
//!    kinds (with graph-local ids replaced by stable names), output
//!    value kinds, and intra-function edge offsets. Two functions with
//!    equal fingerprints lower to isomorphic subgraphs, so their
//!    outputs correspond by offset.
//! 2. **Stable facts** ([`crate::summary::FunctionSummary`]): committed
//!    pairs re-expressed with graph-independent vocabulary —
//!    base-locations by stable key (global name, `func:local` name,
//!    heap site label, …) and access paths as operator strings — so a
//!    summary extracted from one graph can be re-interned into the
//!    [`PathTable`] of another. Each solver has its own fact shape
//!    ([`crate::summary::FuncFacts`]); this module owns the CI shape
//!    and the shared classification/cone machinery the other solvers'
//!    planners build on ([`plan_base`], [`compute_cone_for`]).
//! 3. **The dirty cone** ([`compute_cone`]): the forward closure, over
//!    static consumer edges plus call/return boundaries, of every
//!    output owned by a changed function. Outputs *outside* the cone
//!    provably receive exactly the deliveries they received in the
//!    previous run, so their final committed sets are unchanged and can
//!    be installed as seeds; outputs inside are recomputed from those
//!    seeds (see [`crate::ci::analyze_ci_resume`]). Because the CI
//!    transfer system is monotone in the committed sets (including the
//!    strong-update rule, whose pass condition "∃ a non-killing
//!    location pair" only grows as location sets grow), iterating from
//!    a subset of the least fixpoint converges to exactly the least
//!    fixpoint — the seeded resume is bit-identical to from-scratch.

use crate::ci::CiResult;
use crate::fxhash::{HashMap, HashSet};
use crate::path::{AccessOp, Pair, PathId, PathTable};
use crate::summary::{FuncFacts, FunctionSummary, SolverSummaries, Vocab};
use vdg::graph::{BaseKind, Graph, NodeId, NodeKind, OutputId, VFuncId, ValueKind};

/// FNV-1a, 64-bit — the workspace-standard dependency-free hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds one `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds one `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a length-prefixed string (self-delimiting).
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write(s.as_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Convenience one-shot digest of a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// One-shot digest of several parts, each length-prefixed so the
/// concatenation is unambiguous: `["ab", "c"]` and `["a", "bc"]` hash
/// differently. The campaign runner keys its deduplication maps with
/// this (check kind + source line, property + solver + repro).
pub fn fnv64_parts(parts: &[&[u8]]) -> u64 {
    let mut h = Fnv64::new();
    for p in parts {
        h.write_u32(p.len() as u32);
        h.write(p);
    }
    h.finish()
}

/// Per-graph stable naming plus content fingerprints.
///
/// Built once per lowered graph; everything the incremental planner
/// needs to match functions, bases, and outputs across two graphs.
pub struct GraphIndex {
    /// Stable key per base-location (`BaseId`-indexed). Keys are unique
    /// when [`GraphIndex::unsafe_reason`] is `None`.
    pub base_keys: Vec<String>,
    /// Inverse of [`GraphIndex::base_keys`].
    pub base_by_key: HashMap<String, u32>,
    /// Owning function per node.
    pub node_owner: Vec<VFuncId>,
    /// Function lookup by name.
    pub func_by_name: HashMap<String, VFuncId>,
    /// First owned node id per function (functions own contiguous node
    /// ranges by construction of the lowering).
    pub node_start: Vec<u32>,
    /// One past the last owned node id per function.
    pub node_end: Vec<u32>,
    /// Smallest owned output id per function.
    pub out_start: Vec<u32>,
    /// One past the largest owned output id per function.
    pub out_end: Vec<u32>,
    /// Content fingerprint per function.
    pub func_fps: Vec<u64>,
    /// Whole-graph fingerprint: equal fingerprints mean the two graphs
    /// are isomorphic id-for-id, so a cached solution replays verbatim.
    pub graph_fp: u64,
    /// When `Some`, stable naming is ambiguous (duplicate keys, Cooper
    /// companion bases) and incremental seeding must fall back to a
    /// fresh solve with this logged reason.
    pub unsafe_reason: Option<String>,
}

/// The stable key of one base-location. Kind-prefixed so keys cannot
/// collide across kinds.
///
/// String literals are keyed here by their program-wide sequence
/// number, which shifts whenever a literal is added or removed earlier
/// in the program. [`GraphIndex::build`] re-keys them as
/// `s:<owner>:<k>` (the k-th literal referenced by function `owner`),
/// so that an edit inside one function cannot invalidate another
/// function's literal facts.
pub fn stable_base_key(g: &Graph, b: vdg::graph::BaseId) -> String {
    match &g.base(b).kind {
        BaseKind::Global { name } => format!("g:{name}"),
        BaseKind::Local { func, name } => format!("l:{}:{name}", g.func(*func).name),
        BaseKind::Heap { site } => format!("h:{site}"),
        BaseKind::StrLit { index } => format!("s:{index}"),
        BaseKind::Func { func } => format!("f:{}", g.func(*func).name),
    }
}

impl GraphIndex {
    /// Builds the index for `graph`.
    pub fn build(graph: &Graph) -> GraphIndex {
        let node_owner = crate::modref::node_owner_map(graph);
        let nf = graph.func_count();
        let mut unsafe_reason = None;

        // A string-literal base's program-wide sequence number shifts
        // whenever a literal appears or disappears earlier in the
        // program, which would let an edit in one function invalidate
        // every later function's facts. Re-key each literal by the
        // function whose node references it plus a per-function
        // counter: edits then only perturb the edited function's own
        // literal keys.
        let mut lit_owner: HashMap<u32, VFuncId> = HashMap::default();
        for id in 0..graph.node_count() as u32 {
            if let NodeKind::Base(b) = graph.node(NodeId(id)).kind {
                if matches!(graph.base(b).kind, BaseKind::StrLit { .. }) {
                    lit_owner.entry(b.0).or_insert(node_owner[id as usize]);
                }
            }
        }
        let mut lit_count: HashMap<u32, u32> = HashMap::default();
        let mut base_keys = Vec::with_capacity(graph.base_count());
        let mut base_by_key = HashMap::default();
        for b in graph.base_ids() {
            if graph.base(b).cooper_older.is_some() {
                unsafe_reason
                    .get_or_insert_with(|| "graph uses Cooper companion bases".to_string());
            }
            let key = match (&graph.base(b).kind, lit_owner.get(&b.0)) {
                (BaseKind::StrLit { .. }, Some(&f)) => {
                    let c = lit_count.entry(f.0).or_insert(0);
                    let k = *c;
                    *c += 1;
                    format!("s:{}:{k}", graph.func(f).name)
                }
                _ => stable_base_key(graph, b),
            };
            if base_by_key.insert(key.clone(), b.0).is_some() {
                unsafe_reason.get_or_insert_with(|| format!("duplicate base key `{key}`"));
            }
            base_keys.push(key);
        }

        let mut func_by_name = HashMap::default();
        for f in graph.func_ids() {
            let name = graph.func(f).name.clone();
            if func_by_name.insert(name.clone(), f).is_some() {
                unsafe_reason.get_or_insert_with(|| format!("duplicate function name `{name}`"));
            }
        }

        // Node and output ranges per function. Both are contiguous by
        // construction; verify rather than trust.
        let mut node_start = vec![u32::MAX; nf];
        let mut node_end = vec![0u32; nf];
        let mut node_count = vec![0u32; nf];
        for (i, &f) in node_owner.iter().enumerate() {
            let i = i as u32;
            let fi = f.0 as usize;
            node_start[fi] = node_start[fi].min(i);
            node_end[fi] = node_end[fi].max(i + 1);
            node_count[fi] += 1;
        }
        let mut out_start = vec![u32::MAX; nf];
        let mut out_end = vec![0u32; nf];
        let mut out_count = vec![0u32; nf];
        for o in graph.output_ids() {
            let f = node_owner[graph.output(o).node.0 as usize];
            let fi = f.0 as usize;
            out_start[fi] = out_start[fi].min(o.0);
            out_end[fi] = out_end[fi].max(o.0 + 1);
            out_count[fi] += 1;
        }
        for fi in 0..nf {
            if node_start[fi] == u32::MAX {
                node_start[fi] = node_end[fi];
            }
            if out_start[fi] == u32::MAX {
                out_start[fi] = out_end[fi];
            }
            if node_end[fi] - node_start[fi] != node_count[fi]
                || out_end[fi] - out_start[fi] != out_count[fi]
            {
                unsafe_reason.get_or_insert_with(|| {
                    format!(
                        "non-contiguous id range for `{}`",
                        graph.func(VFuncId(fi as u32)).name
                    )
                });
            }
        }

        let mut idx = GraphIndex {
            base_keys,
            base_by_key,
            node_owner,
            func_by_name,
            node_start,
            node_end,
            out_start,
            out_end,
            func_fps: Vec::new(),
            graph_fp: 0,
            unsafe_reason,
        };
        idx.func_fps = (0..nf)
            .map(|fi| idx.func_fingerprint(graph, VFuncId(fi as u32)))
            .collect();
        idx.graph_fp = idx.graph_fingerprint(graph);
        idx
    }

    /// The output at `offset` within function `f`'s contiguous range.
    pub fn output_at(&self, f: VFuncId, offset: u32) -> OutputId {
        OutputId(self.out_start[f.0 as usize] + offset)
    }

    /// The offset of output `o` within its owner's range.
    pub fn output_offset(&self, g: &Graph, o: OutputId) -> u32 {
        let f = self.node_owner[g.output(o).node.0 as usize];
        o.0 - self.out_start[f.0 as usize]
    }

    /// Content fingerprint of `f`: the function's node slice with every
    /// graph-local id replaced by a stable name or an intra-function
    /// offset. Equal fingerprints ⇒ isomorphic function subgraphs.
    fn func_fingerprint(&self, g: &Graph, f: VFuncId) -> u64 {
        let fi = f.0 as usize;
        let info = g.func(f);
        let mut h = Fnv64::new();
        h.write_str(&info.name);
        h.write_u32(info.address_taken as u32);
        h.write_u32(info.returns.len() as u32);
        h.write_u32((info.entry.0).wrapping_sub(self.node_start[fi]));
        let (ns, ne) = (self.node_start[fi], self.node_end[fi]);
        h.write_u32(ne - ns);
        for id in ns..ne {
            let n = g.node(NodeId(id));
            self.hash_kind(g, &n.kind, &mut h);
            h.write_u32(n.outputs.len() as u32);
            for &o in &n.outputs {
                h.write_u32(match g.output(o).kind {
                    ValueKind::Store => 0,
                    ValueKind::Ptr => 1,
                    ValueKind::Func => 2,
                    ValueKind::Agg { has_ptr: false } => 3,
                    ValueKind::Agg { has_ptr: true } => 4,
                    ValueKind::Scalar => 5,
                });
            }
            h.write_u32(n.inputs.len() as u32);
            for &inp in &n.inputs {
                let src = g.input(inp).src;
                let src_node = g.output(src).node;
                // Intra-function by construction: offset of the source
                // node, plus the port index of the source output.
                h.write_u32((src_node.0).wrapping_sub(ns));
                let port = g
                    .node(src_node)
                    .outputs
                    .iter()
                    .position(|&x| x == src)
                    .unwrap_or(usize::MAX) as u32;
                h.write_u32(port);
            }
        }
        h.finish()
    }

    fn hash_base(&self, g: &Graph, b: vdg::graph::BaseId, h: &mut Fnv64) {
        h.write_str(&self.base_keys[b.0 as usize]);
        h.write_u32(g.base(b).single_instance as u32);
    }

    fn hash_kind(&self, g: &Graph, kind: &NodeKind, h: &mut Fnv64) {
        match kind {
            NodeKind::Base(b) => {
                h.write_u32(0);
                self.hash_base(g, *b, h);
            }
            NodeKind::Alloc(b) => {
                h.write_u32(1);
                self.hash_base(g, *b, h);
            }
            NodeKind::FuncConst(b) => {
                h.write_u32(2);
                self.hash_base(g, *b, h);
            }
            NodeKind::InitStore => h.write_u32(3),
            NodeKind::ScalarConst => h.write_u32(4),
            NodeKind::NullConst => h.write_u32(5),
            NodeKind::Member(fid) => {
                h.write_u32(6);
                h.write_str(g.field_name(*fid));
            }
            NodeKind::IndexElem => h.write_u32(7),
            NodeKind::PassThrough => h.write_u32(8),
            NodeKind::ExtractField(fid) => {
                h.write_u32(9);
                h.write_str(g.field_name(*fid));
            }
            NodeKind::ExtractElem => h.write_u32(10),
            NodeKind::Primop => h.write_u32(11),
            NodeKind::Gamma => h.write_u32(12),
            NodeKind::Lookup { indirect } => {
                h.write_u32(13);
                h.write_u32(*indirect as u32);
            }
            NodeKind::Update { indirect } => {
                h.write_u32(14);
                h.write_u32(*indirect as u32);
            }
            NodeKind::Call => h.write_u32(15),
            NodeKind::Return { func } => {
                h.write_u32(16);
                h.write_str(&g.func(*func).name);
            }
            NodeKind::Entry { func } => {
                h.write_u32(17);
                h.write_str(&g.func(*func).name);
            }
            NodeKind::CopyMem => h.write_u32(18),
            NodeKind::Free => h.write_u32(19),
        }
    }

    /// Whole-graph fingerprint: per-function fingerprints in id order
    /// plus everything that pins the id layout (node/output ranges,
    /// base table, field table, root, call-graph reachability). Equal
    /// graph fingerprints ⇒ graphs identical id-for-id, so a cached
    /// solution for one renders correctly against the other.
    fn graph_fingerprint(&self, g: &Graph) -> u64 {
        let mut h = Fnv64::new();
        h.write_u32(g.func_count() as u32);
        for f in g.func_ids() {
            let fi = f.0 as usize;
            h.write_str(&g.func(f).name);
            h.write_u64(self.func_fps[fi]);
            h.write_u32(self.node_start[fi]);
            h.write_u32(self.out_start[fi]);
        }
        h.write_u32(g.base_count() as u32);
        for b in g.base_ids() {
            h.write_str(&self.base_keys[b.0 as usize]);
            h.write_u32(g.base(b).single_instance as u32);
        }
        h.write_str(&g.func(g.root()).name);
        for a in g.func_ids() {
            for b in g.func_ids() {
                h.write_u32(g.can_reach(a, b) as u32);
            }
        }
        h.finish()
    }
}

/// One access operator with a stable (graph-independent) field name.
/// `Ord` so vocabulary comparisons (memop-pruning drift, set-valued
/// facts) can sort into a canonical order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StableOp {
    /// Struct/union field access, by field name.
    Field(String),
    /// Array element access.
    Index,
}

/// An access path with graph-independent vocabulary: an optional base
/// key (offset paths have none) plus operator spine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StablePath {
    /// Stable key of the base-location, `None` for offset paths.
    pub base: Option<String>,
    /// Access operators, outermost first.
    pub ops: Vec<StableOp>,
}

/// A points-to pair in stable vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StablePair {
    /// Where the value lives.
    pub path: StablePath,
    /// What it points to.
    pub referent: StablePath,
}

/// Renders one interned path of `paths` in stable vocabulary. `None`
/// when the path roots at a synthetic base (call-string heap naming),
/// which has no graph-independent name.
pub(crate) fn stable_path(
    paths: &PathTable,
    graph: &Graph,
    index: &GraphIndex,
    p: PathId,
) -> Option<StablePath> {
    let base = match paths.base_of(p) {
        Some(b) => {
            if paths.is_synthetic(b) {
                return None;
            }
            Some(index.base_keys[b.0 as usize].clone())
        }
        None => None,
    };
    let ops = paths
        .ops_of(p)
        .into_iter()
        .map(|op| match op {
            AccessOp::Field(f) => StableOp::Field(graph.field_name(f).to_string()),
            AccessOp::Index => StableOp::Index,
        })
        .collect();
    Some(StablePath { base, ops })
}

/// Renders one pair of `paths` in stable vocabulary.
pub(crate) fn stable_pair(
    paths: &PathTable,
    graph: &Graph,
    index: &GraphIndex,
    pr: Pair,
) -> Option<StablePair> {
    Some(StablePair {
        path: stable_path(paths, graph, index, pr.path)?,
        referent: stable_path(paths, graph, index, pr.referent)?,
    })
}

/// Call-edge facts of function `f` from a solve's recorded callee map:
/// `(call-node offset, sorted callee names)`, sorted by offset.
pub(crate) fn stable_calls(
    graph: &Graph,
    index: &GraphIndex,
    f: VFuncId,
    callees: &HashMap<NodeId, Vec<VFuncId>>,
) -> Vec<(u32, Vec<String>)> {
    let fi = f.0 as usize;
    let mut calls: Vec<(u32, Vec<String>)> = callees
        .iter()
        .filter(|(n, _)| index.node_owner[n.0 as usize] == f)
        .map(|(n, fs)| {
            let mut names: Vec<String> = fs.iter().map(|&c| graph.func(c).name.clone()).collect();
            names.sort_unstable();
            (n.0 - index.node_start[fi], names)
        })
        .collect();
    calls.sort_unstable();
    calls
}

/// Extracts the CI summary of one function: committed pairs per output
/// offset plus call edges. `None` when a fact roots at a synthetic base
/// (call-string heap naming).
pub(crate) fn extract_ci_func(
    graph: &Graph,
    index: &GraphIndex,
    ci: &CiResult,
    f: VFuncId,
) -> Option<FunctionSummary> {
    let fi = f.0 as usize;
    let (os, oe) = (index.out_start[fi], index.out_end[fi]);
    let mut outputs = Vec::with_capacity((oe - os) as usize);
    for o in os..oe {
        let mut pairs = Vec::new();
        for pr in ci.pairs(OutputId(o)) {
            pairs.push(stable_pair(&ci.paths, graph, index, *pr)?);
        }
        outputs.push(pairs);
    }
    Some(FunctionSummary {
        fingerprint: index.func_fps[fi],
        calls: stable_calls(graph, index, f, &ci.callees),
        facts: FuncFacts::Ci(outputs),
    })
}

/// Extracts whole-program CI summaries. `None` when stable naming is
/// unsafe or any function's facts cannot be expressed stably.
pub fn extract_ci_summaries(
    graph: &Graph,
    index: &GraphIndex,
    ci: &CiResult,
) -> Option<SolverSummaries> {
    if index.unsafe_reason.is_some() {
        return None;
    }
    let mut out = SolverSummaries::new(Vocab::Ci);
    for f in graph.func_ids() {
        let s = extract_ci_func(graph, index, ci, f)?;
        out.funcs.insert(graph.func(f).name.clone(), s);
    }
    Some(out)
}

/// The vocabulary-independent skeleton of a resume plan: which
/// functions are clean (with their facts translated into next-graph
/// vocabulary by the caller's closure), which are dirty, the clean
/// functions' previous call edges, and the callees that lost an
/// in-flow.
pub(crate) struct PlanBase<T> {
    /// Translated facts per clean function.
    pub(crate) translated: HashMap<VFuncId, T>,
    /// Dirty functions: changed fingerprint, deleted-from-summary, or
    /// demoted on translation failure.
    pub(crate) dirty: HashSet<VFuncId>,
    /// Previous call edges of clean functions, in next-graph node ids.
    pub(crate) prev_edges: HashMap<NodeId, Vec<VFuncId>>,
    /// Functions that lost an in-flow: callees of a dirty or deleted
    /// function.
    pub(crate) lost_callees: HashSet<VFuncId>,
}

/// Classifies `next`'s functions against `prev` and translates each
/// clean function's facts via `translate` (returning `None` demotes the
/// function to dirty, exactly like a failed call-edge translation).
/// Shared by every vocabulary's resume planner. Returns `None` when the
/// index reports stable naming as unsafe.
pub(crate) fn plan_base<T>(
    next: &Graph,
    index: &GraphIndex,
    prev: &SolverSummaries,
    mut translate: impl FnMut(VFuncId, &FunctionSummary) -> Option<T>,
) -> Option<PlanBase<T>> {
    if index.unsafe_reason.is_some() {
        return None;
    }
    let clean: HashMap<VFuncId, &FunctionSummary> = next
        .func_ids()
        .filter_map(|f| {
            prev.funcs
                .get(&next.func(f).name)
                .filter(|s| s.fingerprint == index.func_fps[f.0 as usize])
                .map(|s| (f, s))
        })
        .collect();
    let mut dirty: HashSet<VFuncId> = (0..next.func_count() as u32)
        .map(VFuncId)
        .filter(|f| !clean.contains_key(f))
        .collect();
    let mut translated: HashMap<VFuncId, T> = HashMap::default();
    let mut edges: HashMap<VFuncId, Vec<(NodeId, Vec<VFuncId>)>> = HashMap::default();
    'funcs: for (&f, summary) in &clean {
        let fi = f.0 as usize;
        let mut fe = Vec::with_capacity(summary.calls.len());
        for (off, names) in &summary.calls {
            let node = NodeId(index.node_start[fi] + off);
            let mut callees = Vec::with_capacity(names.len());
            for name in names {
                let Some(&c) = index.func_by_name.get(name) else {
                    dirty.insert(f);
                    continue 'funcs;
                };
                callees.push(c);
            }
            fe.push((node, callees));
        }
        let Some(t) = translate(f, summary) else {
            dirty.insert(f);
            continue;
        };
        translated.insert(f, t);
        edges.insert(f, fe);
    }
    translated.retain(|f, _| !dirty.contains(f));
    edges.retain(|f, _| !dirty.contains(f));

    // Prev call edges of clean functions, for the cone's return rule.
    let mut prev_edges: HashMap<NodeId, Vec<VFuncId>> = HashMap::default();
    for fe in edges.values() {
        for (n, callees) in fe {
            prev_edges.insert(*n, callees.clone());
        }
    }

    // A dirty or deleted function's previous call edges are gone from
    // the next-graph closure, but the callees they used to feed lost an
    // in-flow: their committed sets may shrink, so their entries must
    // join the cone. Without this, a callee whose only call site was
    // deleted would be seeded with stale facts.
    let mut lost_callees: HashSet<VFuncId> = HashSet::default();
    for (name, summary) in &prev.funcs {
        let gone = match index.func_by_name.get(name) {
            Some(&f) => dirty.contains(&f),
            None => true,
        };
        if !gone {
            continue;
        }
        for (_, callee_names) in &summary.calls {
            for c in callee_names {
                if let Some(&t) = index.func_by_name.get(c) {
                    lost_callees.insert(t);
                }
            }
        }
    }
    Some(PlanBase {
        translated,
        dirty,
        prev_edges,
        lost_callees,
    })
}

/// The plan for one seeded CI resume, in next-graph vocabulary.
pub struct CiResumePlan {
    /// Pre-interned path table over the next graph, holding every
    /// seeded path.
    pub paths: PathTable,
    /// Per-output seeds: `Some(pairs)` outside the dirty cone (the
    /// committed set is final and installed verbatim), `None` inside.
    pub seeds: Vec<Option<Vec<Pair>>>,
    /// Seeded call edges, for calls whose function input is outside the
    /// cone (their callee sets are provably final).
    pub call_edges: HashMap<NodeId, Vec<VFuncId>>,
    /// Functions whose fingerprints (or fact translation) changed.
    pub dirty: Vec<VFuncId>,
    /// Number of outputs inside the dirty cone.
    pub cone_outputs: usize,
    /// Number of outputs seeded from cache.
    pub seeded_outputs: usize,
}

/// Plans a seeded CI resume of `next` given the previous run's
/// summaries (`prev`, including functions that no longer exist). A
/// next-graph function is *clean* when a same-named summary exists and
/// its fingerprint matches; everything else is dirty. A clean function
/// whose summary fails to translate (a base, field, or callee no
/// longer exists) is demoted to dirty. Returns `None` when the index
/// reports stable naming as unsafe or `prev` speaks another
/// vocabulary.
pub fn plan_ci_resume(
    next: &Graph,
    index: &GraphIndex,
    prev: &SolverSummaries,
) -> Option<CiResumePlan> {
    if prev.vocab != Vocab::Ci {
        return None;
    }
    let mut paths = PathTable::for_graph(next);
    let base = plan_base(next, index, prev, |f, summary| {
        let fi = f.0 as usize;
        let want = (index.out_end[fi] - index.out_start[fi]) as usize;
        let FuncFacts::Ci(rows) = &summary.facts else {
            return None;
        };
        if rows.len() != want {
            // Fingerprint equality should make this impossible; treat a
            // mismatch as a stale summary.
            return None;
        }
        let mut outs = Vec::with_capacity(want);
        for pairs in rows {
            let mut v = Vec::with_capacity(pairs.len());
            for sp in pairs {
                let a = intern_stable(next, index, &mut paths, &sp.path)?;
                let b = intern_stable(next, index, &mut paths, &sp.referent)?;
                v.push(Pair::new(a, b));
            }
            outs.push(v);
        }
        Some(outs)
    })?;
    let PlanBase {
        translated,
        dirty,
        prev_edges,
        lost_callees,
    } = base;

    let in_cone = compute_cone(next, index, &dirty, &prev_edges, &lost_callees);
    let cone_outputs = in_cone.iter().filter(|&&b| b).count();

    let mut seeds: Vec<Option<Vec<Pair>>> = vec![None; next.output_count()];
    let mut seeded_outputs = 0;
    for (&f, outs) in &translated {
        let os = index.out_start[f.0 as usize];
        for (i, pairs) in outs.iter().enumerate() {
            let o = os + i as u32;
            if !in_cone[o as usize] {
                seeds[o as usize] = Some(pairs.clone());
                seeded_outputs += 1;
            }
        }
    }
    // Seed call edges only where the function input is out-of-cone:
    // those callee sets are provably final. In-cone function inputs
    // re-discover their edges through normal propagation.
    let mut call_edges = HashMap::default();
    for (n, callees) in prev_edges {
        let src = next.input_src(n, 0);
        if !in_cone[src.0 as usize] {
            call_edges.insert(n, callees);
        }
    }

    let mut dirty: Vec<VFuncId> = dirty.into_iter().collect();
    dirty.sort_unstable_by_key(|f| f.0);
    Some(CiResumePlan {
        paths,
        seeds,
        call_edges,
        dirty,
        cone_outputs,
        seeded_outputs,
    })
}

/// Re-interns a stable path into `paths` over `next`. `None` when the
/// base key or a field name no longer exists.
pub(crate) fn intern_stable(
    next: &Graph,
    index: &GraphIndex,
    paths: &mut PathTable,
    sp: &StablePath,
) -> Option<crate::path::PathId> {
    let mut p = match &sp.base {
        Some(key) => paths.base_root(vdg::graph::BaseId(*index.base_by_key.get(key)?)),
        None => PathTable::EMPTY,
    };
    for op in &sp.ops {
        let op = match op {
            StableOp::Field(name) => AccessOp::Field(next.field_id(name)?),
            StableOp::Index => AccessOp::Index,
        };
        p = paths.child(p, op);
    }
    Some(p)
}

/// The set of call targets the cone must assume for a call whose
/// function input is (or becomes) dirty: a structural backward walk
/// from the call's function input through the value-preserving nodes —
/// `PassThrough` forwards input 0, `Gamma` unions every input —
/// collecting the `FuncConst` feeds, so a function value copied through
/// scalar locals and merged over branches still resolves to the union
/// of named targets instead of every function. Nodes that cannot carry
/// a function value (scalar/null constants, primops) contribute
/// nothing; any other producer (a load from memory, a call result)
/// makes the feed opaque and the answer falls back to every function,
/// as does a walk that finds no target at all.
pub(crate) fn call_targets(g: &Graph, call: NodeId) -> Vec<VFuncId> {
    let mut funcs: Vec<VFuncId> = Vec::new();
    let mut seen: HashSet<OutputId> = HashSet::default();
    let mut wl = vec![g.input_src(call, 0)];
    while let Some(o) = wl.pop() {
        if !seen.insert(o) {
            continue;
        }
        let id = g.output(o).node;
        match &g.node(id).kind {
            NodeKind::FuncConst(b) => match g.base(*b).kind {
                BaseKind::Func { func } => funcs.push(func),
                _ => return g.func_ids().collect(),
            },
            NodeKind::ScalarConst | NodeKind::NullConst | NodeKind::Primop => {}
            NodeKind::PassThrough => wl.push(g.input_src(id, 0)),
            NodeKind::Gamma => {
                for port in 0..g.node(id).inputs.len() {
                    wl.push(g.input_src(id, port));
                }
            }
            _ => return g.func_ids().collect(),
        }
    }
    if funcs.is_empty() {
        return g.func_ids().collect();
    }
    funcs.sort_unstable();
    funcs.dedup();
    funcs
}

/// Which solver's transfer system a dirty-cone closure must mirror.
/// The CI rules are the base; CS and k=1 add paths a change can take
/// that CI does not have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConeVocab {
    /// CI rules (also sound for Weihl's value space: Weihl's per-node
    /// emissions are a subset of CI's, and store-relation invalidation
    /// is handled by the caller through `extra_roots`).
    Ci,
    /// CI rules plus: an in-cone actual re-derives the call's own
    /// outputs (`repropagate_new_actual` re-emits return products at
    /// the call), and the caller roots memory operations whose CI
    /// pruning drifted via `extra_roots`.
    Cs,
    /// CI rules plus: an in-cone actual re-derives the call's own
    /// outputs (`pull_returns` re-emits under the arriving context);
    /// an in-cone function input and a lost caller re-derive *all*
    /// outputs of the affected callee, not just its entries (a changed
    /// activation set reaches every context-indexed slot, constants
    /// included).
    K1,
}

/// Computes the dirty cone: the outputs whose final committed sets may
/// differ from the previous run. Everything outside provably receives
/// exactly the deliveries of the previous run.
///
/// Closure rules, mirroring the CI transfer functions:
/// - every output owned by a dirty function is in the cone;
/// - the entry outputs of every `lost_callees` function (a callee of a
///   dirty or deleted function, whose in-flows may have vanished) are
///   in the cone;
/// - an in-cone output feeding a node puts that node's affected
///   outputs in the cone (`PassThrough` only forwards port 0; `Primop`
///   emits nothing);
/// - an in-cone function input of a call puts the call's outputs and
///   the entries of every possible target in the cone (the callee set
///   may change);
/// - an in-cone actual puts the entries of the call's previously
///   recorded callees in the cone;
/// - an in-cone input of `Return{f}` puts the outputs of `f`'s
///   previously recorded callers in the cone.
///
/// See [`ConeVocab`] for the CS and k=1 extensions.
pub fn compute_cone(
    g: &Graph,
    index: &GraphIndex,
    dirty: &HashSet<VFuncId>,
    prev_edges: &HashMap<NodeId, Vec<VFuncId>>,
    lost_callees: &HashSet<VFuncId>,
) -> Vec<bool> {
    compute_cone_for(
        g,
        index,
        dirty,
        prev_edges,
        lost_callees,
        ConeVocab::Ci,
        &[],
    )
}

/// [`compute_cone`] parameterized by solver vocabulary plus extra cone
/// roots (CS memop pruning drift; Weihl `Lookup` reads under a dirty
/// store).
pub(crate) fn compute_cone_for(
    g: &Graph,
    index: &GraphIndex,
    dirty: &HashSet<VFuncId>,
    prev_edges: &HashMap<NodeId, Vec<VFuncId>>,
    lost_callees: &HashSet<VFuncId>,
    vocab: ConeVocab,
    extra_roots: &[OutputId],
) -> Vec<bool> {
    let mut prev_callers: HashMap<VFuncId, Vec<NodeId>> = HashMap::default();
    for (&n, callees) in prev_edges {
        for &f in callees {
            prev_callers.entry(f).or_default().push(n);
        }
    }
    let mut in_cone = vec![false; g.output_count()];
    let mut wl: Vec<u32> = Vec::new();
    let mark = |o: OutputId, in_cone: &mut Vec<bool>, wl: &mut Vec<u32>| {
        if !in_cone[o.0 as usize] {
            in_cone[o.0 as usize] = true;
            wl.push(o.0);
        }
    };
    // A changed callee set (or lost caller) invalidates the callee's
    // entries under CI/CS/Weihl; under k=1 it changes the callee's
    // *activation set*, which indexes every context-keyed slot the
    // callee owns — constants included — so the whole function joins.
    let mark_target = |t: VFuncId, in_cone: &mut Vec<bool>, wl: &mut Vec<u32>| {
        if vocab == ConeVocab::K1 {
            let fi = t.0 as usize;
            for o in index.out_start[fi]..index.out_end[fi] {
                mark(OutputId(o), in_cone, wl);
            }
        } else {
            for &out in &g.node(g.func(t).entry).outputs {
                mark(out, in_cone, wl);
            }
        }
    };
    for &f in dirty {
        let fi = f.0 as usize;
        for o in index.out_start[fi]..index.out_end[fi] {
            mark(OutputId(o), &mut in_cone, &mut wl);
        }
    }
    // Entries that lost a caller (see `plan_ci_resume`): their
    // committed sets may shrink, and shrinkage propagates forward like
    // any other change.
    for &f in lost_callees {
        mark_target(f, &mut in_cone, &mut wl);
    }
    for &o in extra_roots {
        mark(o, &mut in_cone, &mut wl);
    }
    while let Some(o) = wl.pop() {
        // Each consumer of an in-cone output re-derives some outputs.
        let consumers: Vec<vdg::graph::InputId> = g.consumers(OutputId(o)).to_vec();
        for inp in consumers {
            let info = g.input(inp);
            let n = g.node(info.node);
            match &n.kind {
                NodeKind::Call => {
                    if info.port == 0 {
                        for &out in &n.outputs {
                            mark(out, &mut in_cone, &mut wl);
                        }
                        for t in call_targets(g, info.node) {
                            mark_target(t, &mut in_cone, &mut wl);
                        }
                    } else {
                        if let Some(callees) = prev_edges.get(&info.node) {
                            for &t in callees {
                                mark_target(t, &mut in_cone, &mut wl);
                            }
                        }
                        // Under CS a new actual re-derives the call's
                        // own outputs (`repropagate_new_actual` pins
                        // return products to the newly committed
                        // assumption set); under k=1, `pull_returns`
                        // re-emits at the call under the arriving
                        // caller context.
                        if matches!(vocab, ConeVocab::Cs | ConeVocab::K1) {
                            for &out in &n.outputs {
                                mark(out, &mut in_cone, &mut wl);
                            }
                        }
                    }
                    // A call owned by a dirty function has no recorded
                    // edges, but its function input is dirty-owned and
                    // therefore in-cone, so the port-0 rule covers its
                    // targets.
                }
                NodeKind::Return { func } => {
                    if let Some(callers) = prev_callers.get(func) {
                        for &c in callers {
                            for &out in &g.node(c).outputs {
                                mark(out, &mut in_cone, &mut wl);
                            }
                        }
                    }
                    // Callers whose function input is in-cone have
                    // their outputs marked by the port-0 rule.
                }
                NodeKind::PassThrough => {
                    if info.port == 0 {
                        for &out in &n.outputs {
                            mark(out, &mut in_cone, &mut wl);
                        }
                    }
                }
                NodeKind::Primop => {}
                _ => {
                    for &out in &n.outputs {
                        mark(out, &mut in_cone, &mut wl);
                    }
                }
            }
        }
    }
    in_cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdg::build::{lower, BuildOptions};

    fn graph_of(src: &str) -> Graph {
        let p = cfront::compile(src).expect("compiles");
        lower(&p, &BuildOptions::default()).expect("lowers")
    }

    fn only_call(g: &Graph) -> NodeId {
        // The synthetic root's call to `main` is not under test.
        let owner = crate::modref::node_owner_map(g);
        let main = g.func_ids().find(|&f| g.func(f).name == "main").unwrap();
        let calls: Vec<NodeId> = g
            .nodes()
            .filter(|(id, n)| matches!(n.kind, NodeKind::Call) && owner[id.0 as usize] == main)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(
            calls.len(),
            1,
            "fixture should have exactly one call in main"
        );
        calls[0]
    }

    fn target_names(g: &Graph, call: NodeId) -> Vec<String> {
        let mut v: Vec<String> = call_targets(g, call)
            .into_iter()
            .map(|f| g.func(f).name.clone())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn copied_func_const_call_resolves_to_the_union_of_targets() {
        // `p` is set to `f` then conditionally to `g`: the call's
        // function input is a Gamma over two FuncConst feeds, and the
        // walk must answer {f, g} — not every function (`h` and `main`
        // would previously leak in).
        let g = graph_of(
            "int c;\n\
             int f(int x) { return x + 1; }\n\
             int g(int x) { return x + 2; }\n\
             int h(int x) { return x + 3; }\n\
             int main(void) { int (*p)(int); p = f; if (c) { p = g; } return p(1); }",
        );
        assert_eq!(target_names(&g, only_call(&g)), ["f", "g"]);
    }

    #[test]
    fn direct_func_const_call_still_resolves_to_one_target() {
        let g = graph_of(
            "int f(int x) { return x; }\n\
             int h(int x) { return x + 1; }\n\
             int main(void) { return f(2); }",
        );
        assert_eq!(target_names(&g, only_call(&g)), ["f"]);
    }

    #[test]
    fn memory_fed_call_falls_back_to_every_function() {
        // The callee comes out of a global slot (a Lookup): the
        // structural walk cannot see through the store and must keep
        // the conservative every-function answer.
        let g = graph_of(
            "int (*gp)(int);\n\
             int f(int x) { return x; }\n\
             int main(void) { gp = f; return gp(3); }",
        );
        let call = only_call(&g);
        assert_eq!(
            call_targets(&g, call).len(),
            g.func_count(),
            "a load-fed callee stays opaque"
        );
    }
}
