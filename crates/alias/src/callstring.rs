//! A k=1 *call-string* context-sensitive baseline.
//!
//! The paper (§4.1) contrasts two ways to make an analysis
//! context-sensitive: tagging dataflow facts with an abstraction of the
//! call stack (Cooper; Choi, Burke & Carini) versus the assumption sets
//! it adopts. This module implements the call-stack flavor at depth
//! k = 1: every points-to fact is qualified by the immediate call site
//! of the procedure it lives in, return values flow only to their
//! originating site, and deeper context is merged — the "k-limiting"
//! Deutsch's PLDI 1994 title pushes beyond.
//!
//! Precision relative to the paper's two analyses:
//!
//! ```text
//! CI (Fig. 1) ⊒ k=1 call-strings
//! ```
//!
//! and at *call results* the assumption-set analysis is at least as
//! precise as k=1 (it tracks arbitrarily deep context; see the
//! two-level wrapper test below, where k=1 merges and assumption sets
//! do not). The full stripped per-output solutions of the two
//! context-sensitive analyses are, however, formally incomparable: the
//! assumption-set analysis chains pairs that arrived from *different*
//! contexts through a procedure's lookups and updates — qualifying the
//! result with an assumption set no single call site satisfies — while
//! the call-string partition never combines them in the first place.
//! Such unsatisfiably-qualified pairs survive stripping inside the
//! procedure even though they are filtered at every return.

use crate::fingerprint::GraphIndex;
use crate::fxhash::{HashMap, HashSet};
use crate::pairset::{PairId, PairInterner, PairSet, Propagation};
use crate::path::{AccessOp, Pair, PathId, PathTable};
use crate::summary::{FuncFacts, FunctionSummary, ResumeStats, SolverSummaries, StableCtx, Vocab};
use std::collections::VecDeque;
use vdg::graph::{Graph, InputId, NodeId, NodeKind, OutputId, VFuncId};

/// A length-1 call string: the immediate call site, or the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ctx(u32);

impl Ctx {
    const ROOT: Ctx = Ctx(0);

    fn of_call(call: NodeId) -> Ctx {
        Ctx(call.0 + 1)
    }
}

/// Per-output `context -> pairs` map. An output sees only the k=1
/// contexts of its owner's call sites — a handful — so a linear-scan
/// vector beats a hash map on the `flow_out` fast path.
#[derive(Debug, Clone, Default)]
struct CtxSlots(Vec<(Ctx, PairSet)>);

impl CtxSlots {
    fn get(&self, ctx: Ctx) -> Option<&PairSet> {
        self.0.iter().find(|(c, _)| *c == ctx).map(|(_, s)| s)
    }

    fn get_mut(&mut self, ctx: Ctx) -> Option<&mut PairSet> {
        self.0.iter_mut().find(|(c, _)| *c == ctx).map(|(_, s)| s)
    }

    /// Find-or-insert the set for `ctx`.
    fn slot(&mut self, ctx: Ctx) -> &mut PairSet {
        match self.0.iter().position(|(c, _)| *c == ctx) {
            Some(i) => &mut self.0[i].1,
            None => {
                self.0.push((ctx, PairSet::default()));
                &mut self.0.last_mut().expect("just pushed").1
            }
        }
    }

    fn iter(&self) -> std::slice::Iter<'_, (Ctx, PairSet)> {
        self.0.iter()
    }
}

/// Configuration (the step budget mirrors the CS solver's).
#[derive(Debug, Clone)]
pub struct CallStringConfig {
    /// Perform strong updates (as the paper's solvers do).
    pub strong_updates: bool,
    /// Abort after this many transfer applications.
    pub max_steps: u64,
    /// Propagation discipline (results are discipline-independent).
    pub propagation: Propagation,
}

impl Default for CallStringConfig {
    fn default() -> Self {
        CallStringConfig {
            strong_updates: true,
            max_steps: 200_000_000,
            propagation: Propagation::Delta,
        }
    }
}

/// Result of the k=1 analysis, stripped of contexts.
#[derive(Debug, Clone)]
pub struct CallStringResult {
    /// The interned path universe.
    pub paths: PathTable,
    stripped: Vec<Vec<Pair>>,
    /// Per output: each context's committed pairs, pairs sorted within a
    /// context. Kept because the stripped view loses exactly what the
    /// summary vocabulary has to preserve.
    per_ctx: Vec<Vec<(Ctx, Vec<Pair>)>>,
    /// Discovered call edges, sorted per call site (for summaries).
    pub(crate) callees: HashMap<NodeId, Vec<VFuncId>>,
    /// Transfer-function applications.
    pub flow_ins: u64,
    /// Successful meets; redundant emission attempts are counted in
    /// [`CallStringResult::dedup_hits`].
    pub flow_outs: u64,
    /// Emission attempts deduplicated by the committed sets.
    pub dedup_hits: u64,
    /// Batched delta deliveries (`None` under [`Propagation::Naive`]).
    pub delta_batches: Option<u64>,
    /// Number of (function, context) pairs analyzed.
    pub contexts: usize,
}

impl CallStringResult {
    /// The context-stripped pairs on an output, sorted.
    pub fn pairs(&self, o: OutputId) -> &[Pair] {
        &self.stripped[o.0 as usize]
    }

    /// Total stripped pairs.
    pub fn total_pairs(&self) -> usize {
        self.stripped.iter().map(|p| p.len()).sum()
    }

    /// Distinct referents at a memory operation's location input.
    pub fn loc_referents(&self, graph: &Graph, node: NodeId) -> Vec<PathId> {
        let loc_out = graph.input_src(node, 0);
        let mut refs: Vec<PathId> = self.pairs(loc_out).iter().map(|p| p.referent).collect();
        refs.sort_unstable();
        refs.dedup();
        refs
    }
}

impl crate::stats::PointsToSolution for CallStringResult {
    fn pairs_at(&self, o: OutputId) -> &[Pair] {
        self.pairs(o)
    }
    fn path_table(&self) -> &PathTable {
        &self.paths
    }
}

/// Runs the k=1 call-string analysis.
///
/// # Errors
///
/// Returns [`crate::cs::StepLimitExceeded`] when the step budget runs
/// out.
pub fn analyze_callstring(
    graph: &Graph,
    config: &CallStringConfig,
) -> Result<CallStringResult, crate::cs::StepLimitExceeded> {
    analyze_callstring_from(graph, PathTable::for_graph(graph), config)
}

/// Like [`analyze_callstring`], but starting from an existing path table
/// so the resulting [`Pair`]s are id-comparable with another solver's.
pub fn analyze_callstring_from(
    graph: &Graph,
    paths: PathTable,
    config: &CallStringConfig,
) -> Result<CallStringResult, crate::cs::StepLimitExceeded> {
    let mut s = K1 {
        g: graph,
        cfg: config.clone(),
        paths,
        interner: PairInterner::new(),
        p: vec![CtxSlots::default(); graph.output_count()],
        naive_wl: VecDeque::new(),
        out_wl: VecDeque::new(),
        queued: HashSet::default(),
        em: Vec::new(),
        scratch_a: Vec::new(),
        scratch_b: Vec::new(),
        scratch_c: Vec::new(),
        owner: crate::modref::node_owner_map(graph),
        active: HashMap::default(),
        call_ctxs: HashMap::default(),
        callees: HashMap::default(),
        callers: HashMap::default(),
        flow_ins: 0,
        flow_outs: 0,
        dedup_hits: 0,
        delta_batches: 0,
    };
    // Analyze every procedure, not only those reachable from `<root>`:
    // an uncalled procedure is analyzed under the root context (with ⊥
    // formals), matching the other four solvers' whole-graph behavior.
    // For called procedures this adds nothing — root-context facts are a
    // subset of any call-context's facts, and stripping unions them.
    s.activate(graph.root(), Ctx::ROOT);
    for f in graph.func_ids() {
        s.activate(f, Ctx::ROOT);
    }
    s.run()?;
    Ok(s.finish())
}

struct K1<'g> {
    g: &'g Graph,
    cfg: CallStringConfig,
    paths: PathTable,
    interner: PairInterner,
    /// Per output: context -> pairs.
    p: Vec<CtxSlots>,
    /// Naive-mode worklist: single-pair deliveries.
    naive_wl: VecDeque<(InputId, Ctx, PairId)>,
    /// Delta-mode worklist: (output, context) slots with a delta.
    out_wl: VecDeque<(u32, Ctx)>,
    queued: HashSet<(u32, Ctx)>,
    /// Reusable emission buffer (one delivery at a time).
    em: Vec<(OutputId, Ctx, Pair)>,
    /// Reusable cross-product buffers for the memory-op transfers.
    scratch_a: Vec<Pair>,
    scratch_b: Vec<Pair>,
    scratch_c: Vec<Pair>,
    owner: Vec<VFuncId>,
    /// Contexts under which each function has been activated.
    active: HashMap<VFuncId, HashSet<Ctx>>,
    /// Caller contexts observed at each call node (for k=1 returns).
    call_ctxs: HashMap<NodeId, HashSet<Ctx>>,
    callees: HashMap<NodeId, Vec<VFuncId>>,
    callers: HashMap<VFuncId, Vec<NodeId>>,
    flow_ins: u64,
    flow_outs: u64,
    dedup_hits: u64,
    delta_batches: u64,
}

impl<'g> K1<'g> {
    /// First entry of `f` under `ctx`: seed its constant nodes there and
    /// mark every call site it owns as reachable under `ctx` (so callee
    /// returns flow back even when no actual ever carries a pair — e.g.
    /// a call made while the store is still empty).
    fn activate(&mut self, f: VFuncId, ctx: Ctx) {
        if !self.active.entry(f).or_default().insert(ctx) {
            return;
        }
        let mut seeds = Vec::new();
        let mut owned_calls = Vec::new();
        for (id, n) in self.g.nodes() {
            if self.owner[id.0 as usize] != f {
                continue;
            }
            if matches!(n.kind, NodeKind::Call) {
                owned_calls.push(id);
            }
            let base = match n.kind {
                NodeKind::Base(b) | NodeKind::Alloc(b) | NodeKind::FuncConst(b) => b,
                _ => continue,
            };
            let root = self.paths.base_root(base);
            seeds.push((n.outputs[0], Pair::new(PathTable::EMPTY, root)));
        }
        for (o, p) in seeds {
            self.flow_out(o, ctx, p);
        }
        for call in owned_calls {
            self.call_ctxs.entry(call).or_default().insert(ctx);
            let callees = self.callees.get(&call).cloned().unwrap_or_default();
            let mut em = Vec::new();
            for cf in callees {
                self.pull_returns(call, cf, ctx, &mut em);
            }
            for (o, c, p) in em {
                self.flow_out(o, c, p);
            }
        }
    }

    fn flow_out(&mut self, out: OutputId, ctx: Ctx, pair: Pair) {
        let g = self.g;
        let id = self.interner.intern(pair);
        let o = out.0 as usize;
        let slot = self.p[o].slot(ctx);
        if slot.insert(id) {
            self.flow_outs += 1;
            match self.cfg.propagation {
                Propagation::Naive => {
                    slot.take_delta();
                    for &input in g.consumers(out) {
                        self.naive_wl.push_back((input, ctx, id));
                    }
                }
                Propagation::Delta => {
                    if !g.consumers(out).is_empty() && self.queued.insert((out.0, ctx)) {
                        self.out_wl.push_back((out.0, ctx));
                    }
                }
            }
        } else {
            self.dedup_hits += 1;
        }
    }

    fn run(&mut self) -> Result<(), crate::cs::StepLimitExceeded> {
        match self.cfg.propagation {
            Propagation::Naive => self.run_naive(),
            Propagation::Delta => self.run_delta(),
        }
    }

    fn run_naive(&mut self) -> Result<(), crate::cs::StepLimitExceeded> {
        while let Some((input, ctx, id)) = self.naive_wl.pop_front() {
            self.flow_ins += 1;
            if self.flow_ins > self.cfg.max_steps {
                return Err(crate::cs::StepLimitExceeded {
                    steps: self.cfg.max_steps,
                });
            }
            let pair = self.interner.resolve(id);
            let info = self.g.input(input);
            self.deliver(info.node, info.port as usize, ctx, pair);
        }
        Ok(())
    }

    fn run_delta(&mut self) -> Result<(), crate::cs::StepLimitExceeded> {
        while let Some((o, ctx)) = self.out_wl.pop_front() {
            self.queued.remove(&(o, ctx));
            let batch = self.p[o as usize]
                .get_mut(ctx)
                .expect("queued slot has a set")
                .take_delta();
            let g = self.g;
            for &input in g.consumers(OutputId(o)) {
                self.delta_batches += 1;
                let info = g.input(input);
                for &raw in &batch {
                    self.flow_ins += 1;
                    if self.flow_ins > self.cfg.max_steps {
                        return Err(crate::cs::StepLimitExceeded {
                            steps: self.cfg.max_steps,
                        });
                    }
                    let pair = self.interner.resolve(PairId(raw));
                    self.deliver(info.node, info.port as usize, ctx, pair);
                }
            }
            if let Some(set) = self.p[o as usize].get_mut(ctx) {
                set.recycle(batch);
            }
        }
        Ok(())
    }

    /// Applies the transfer function for one delivered pair and flows
    /// the emissions out, reusing the solver's emission buffer.
    fn deliver(&mut self, node: NodeId, port: usize, ctx: Ctx, pair: Pair) {
        let mut em = std::mem::take(&mut self.em);
        self.transfer(node, port, ctx, pair, &mut em);
        for &(out, c, p) in &em {
            self.flow_out(out, c, p);
        }
        em.clear();
        self.em = em;
    }

    /// Pushes `src`'s committed pairs — in every context — through
    /// `(node, port)` without queueing `src` itself: the resume boundary
    /// delivery. Redundant emissions dedup against the committed slots.
    fn deliver_committed(&mut self, node: NodeId, port: usize, src: OutputId) {
        let it = &self.interner;
        let items: Vec<(Ctx, Vec<Pair>)> = self.p[src.0 as usize]
            .iter()
            .map(|(c, s)| (*c, s.iter().map(|id| it.resolve(id)).collect()))
            .collect();
        for (ctx, pairs) in items {
            for pair in pairs {
                self.flow_ins += 1;
                self.deliver(node, port, ctx, pair);
            }
        }
    }

    fn finish(self) -> CallStringResult {
        let contexts = self.active.values().map(|c| c.len()).sum();
        let it = &self.interner;
        let stripped = self
            .p
            .iter()
            .map(|m| {
                let mut v: Vec<Pair> = m
                    .iter()
                    .flat_map(|(_, s)| s.iter().map(|id| it.resolve(id)))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let per_ctx = self
            .p
            .iter()
            .map(|m| {
                let mut rows: Vec<(Ctx, Vec<Pair>)> = m
                    .iter()
                    .map(|(c, s)| {
                        let mut v: Vec<Pair> = s.iter().map(|id| it.resolve(id)).collect();
                        v.sort_unstable();
                        (*c, v)
                    })
                    .filter(|(_, v)| !v.is_empty())
                    .collect();
                rows.sort_unstable_by_key(|(c, _)| *c);
                rows
            })
            .collect();
        let mut callees = self.callees;
        for v in callees.values_mut() {
            v.sort_unstable_by_key(|f| f.0);
        }
        CallStringResult {
            paths: self.paths,
            stripped,
            per_ctx,
            callees,
            flow_ins: self.flow_ins,
            flow_outs: self.flow_outs,
            dedup_hits: self.dedup_hits,
            delta_batches: match self.cfg.propagation {
                Propagation::Naive => None,
                Propagation::Delta => Some(self.delta_batches),
            },
            contexts,
        }
    }

    /// Collects the committed pairs at `(node, port)` under `ctx` into
    /// `buf` (cleared first).
    fn collect_pairs(&self, node: NodeId, port: usize, ctx: Ctx, buf: &mut Vec<Pair>) {
        buf.clear();
        let src = self.g.input_src(node, port);
        if let Some(s) = self.p[src.0 as usize].get(ctx) {
            buf.extend(s.iter().map(|id| self.interner.resolve(id)));
        }
    }

    fn transfer(
        &mut self,
        node: NodeId,
        port: usize,
        ctx: Ctx,
        pair: Pair,
        em: &mut Vec<(OutputId, Ctx, Pair)>,
    ) {
        let g = self.g;
        let n = g.node(node);
        let outs = &n.outputs;
        let mut sa = std::mem::take(&mut self.scratch_a);
        let mut sb = std::mem::take(&mut self.scratch_b);
        let mut sc = std::mem::take(&mut self.scratch_c);
        match &n.kind {
            NodeKind::Member(f) => {
                let r = self.paths.child(pair.referent, AccessOp::Field(*f));
                em.push((outs[0], ctx, Pair::new(pair.path, r)));
            }
            NodeKind::IndexElem => {
                let r = self.paths.child(pair.referent, AccessOp::Index);
                em.push((outs[0], ctx, Pair::new(pair.path, r)));
            }
            NodeKind::ExtractField(f) => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Field(*f)) {
                    em.push((outs[0], ctx, Pair::new(p, pair.referent)));
                }
            }
            NodeKind::ExtractElem => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Index) {
                    em.push((outs[0], ctx, Pair::new(p, pair.referent)));
                }
            }
            NodeKind::PassThrough if port == 0 => {
                em.push((outs[0], ctx, pair));
            }
            NodeKind::Gamma => em.push((outs[0], ctx, pair)),
            // Store identity; pointer-input pairs (the checker-facing
            // kill-set) are not propagated.
            NodeKind::Free if port == 1 => {
                em.push((outs[0], ctx, pair));
            }
            NodeKind::Free => {}
            NodeKind::Primop => {}
            NodeKind::Lookup { .. } => match port {
                0 => {
                    self.collect_pairs(node, 1, ctx, &mut sa);
                    for &sp in &sa {
                        if self.paths.dom(pair.referent, sp.path) {
                            let off = self.paths.subtract(sp.path, pair.referent);
                            let p = self.paths.append(pair.path, off);
                            em.push((outs[0], ctx, Pair::new(p, sp.referent)));
                        }
                    }
                }
                _ => {
                    self.collect_pairs(node, 0, ctx, &mut sa);
                    for &lp in &sa {
                        if self.paths.dom(lp.referent, pair.path) {
                            let off = self.paths.subtract(pair.path, lp.referent);
                            let p = self.paths.append(lp.path, off);
                            em.push((outs[0], ctx, Pair::new(p, pair.referent)));
                        }
                    }
                }
            },
            NodeKind::Update { .. } => match port {
                0 => {
                    self.collect_pairs(node, 2, ctx, &mut sa);
                    for &vp in &sa {
                        let path = self.paths.append(pair.referent, vp.path);
                        em.push((outs[0], ctx, Pair::new(path, vp.referent)));
                    }
                    self.collect_pairs(node, 1, ctx, &mut sa);
                    for &sp in &sa {
                        if !(self.cfg.strong_updates
                            && self.paths.strong_dom(pair.referent, sp.path))
                        {
                            em.push((outs[0], ctx, sp));
                        }
                    }
                }
                1 => {
                    self.collect_pairs(node, 0, ctx, &mut sa);
                    let passes = sa.iter().any(|lp| {
                        !(self.cfg.strong_updates && self.paths.strong_dom(lp.referent, pair.path))
                    });
                    if passes {
                        em.push((outs[0], ctx, pair));
                    }
                }
                _ => {
                    self.collect_pairs(node, 0, ctx, &mut sa);
                    for &lp in &sa {
                        let path = self.paths.append(lp.referent, pair.path);
                        em.push((outs[0], ctx, Pair::new(path, pair.referent)));
                    }
                }
            },
            NodeKind::CopyMem => match port {
                0 => {
                    em.push((outs[0], ctx, pair));
                    self.collect_pairs(node, 1, ctx, &mut sb);
                    self.collect_pairs(node, 2, ctx, &mut sa);
                    for &srcp in &sa {
                        if self.paths.dom(srcp.referent, pair.path) {
                            let off = self.paths.subtract(pair.path, srcp.referent);
                            for dp in &sb {
                                let path = self.paths.append(dp.referent, off);
                                em.push((outs[0], ctx, Pair::new(path, pair.referent)));
                            }
                        }
                    }
                }
                _ => {
                    self.collect_pairs(node, 0, ctx, &mut sa);
                    self.collect_pairs(node, 1, ctx, &mut sb);
                    self.collect_pairs(node, 2, ctx, &mut sc);
                    for &srcp in &sc {
                        for &sp in &sa {
                            if self.paths.dom(srcp.referent, sp.path) {
                                let off = self.paths.subtract(sp.path, srcp.referent);
                                for dp in &sb {
                                    let path = self.paths.append(dp.referent, off);
                                    em.push((outs[0], ctx, Pair::new(path, sp.referent)));
                                }
                            }
                        }
                    }
                }
            },
            NodeKind::Call => {
                if port == 0 {
                    if let Some(f) = self.paths.func_of(pair.referent) {
                        self.register_callee(node, f, em);
                    }
                } else {
                    // Remember the caller context, then forward under the
                    // k=1 context of this call site.
                    self.call_ctxs.entry(node).or_default().insert(ctx);
                    let n_callees = self.callees.get(&node).map_or(0, |v| v.len());
                    for i in 0..n_callees {
                        let f = self.callees[&node][i];
                        self.forward_to_formal(node, port, pair, f, em);
                        // Returns already computed under this call's
                        // context flow back out under the newly seen
                        // caller context.
                        self.pull_returns(node, f, ctx, em);
                    }
                }
            }
            NodeKind::Return { func } => {
                // A pair at a return under context (call c) flows only to
                // call c, under every caller context seen there.
                let Ctx(raw) = ctx;
                // The root never returns anywhere; a pair under a call
                // context flows only if that call really targets `func`.
                if raw != 0 {
                    let call = NodeId(raw - 1);
                    let targets = self
                        .callers
                        .get(func)
                        .map(|cs| cs.contains(&call))
                        .unwrap_or(false);
                    if targets {
                        if let Some(caller_ctxs) = self.call_ctxs.get(&call) {
                            let outs = &g.node(call).outputs;
                            if port < outs.len() {
                                for &cctx in caller_ctxs {
                                    em.push((outs[port], cctx, pair));
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        self.scratch_a = sa;
        self.scratch_b = sb;
        self.scratch_c = sc;
    }

    fn register_callee(&mut self, call: NodeId, f: VFuncId, em: &mut Vec<(OutputId, Ctx, Pair)>) {
        let list = self.callees.entry(call).or_default();
        if list.contains(&f) {
            return;
        }
        list.push(f);
        self.callers.entry(f).or_default().push(call);
        self.activate(f, Ctx::of_call(call));
        // Push existing actual pairs (in every caller context seen so far).
        let n_inputs = self.g.node(call).inputs.len();
        let it = &self.interner;
        let src_ctxs: Vec<(usize, Ctx, Pair)> = (1..n_inputs)
            .flat_map(|port| {
                let src = self.g.input_src(call, port);
                self.p[src.0 as usize]
                    .iter()
                    .flat_map(move |(ctx, pairs)| {
                        pairs.iter().map(move |id| (port, *ctx, it.resolve(id)))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (port, ctx, pair) in src_ctxs {
            self.call_ctxs.entry(call).or_default().insert(ctx);
            self.forward_to_formal(call, port, pair, f, em);
        }
        // Pull any returns already computed.
        let ctxs: Vec<Ctx> = self
            .call_ctxs
            .get(&call)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for ctx in ctxs {
            self.pull_returns(call, f, ctx, em);
        }
    }

    fn forward_to_formal(
        &mut self,
        call: NodeId,
        port: usize,
        pair: Pair,
        f: VFuncId,
        em: &mut Vec<(OutputId, Ctx, Pair)>,
    ) {
        let entry = self.g.func(f).entry;
        let formals = &self.g.node(entry).outputs;
        let idx = port - 1;
        if idx >= formals.len() {
            return;
        }
        let callee_ctx = Ctx::of_call(call);
        self.activate(f, callee_ctx);
        em.push((formals[idx], callee_ctx, pair));
    }

    /// Flows pairs already present on `f`'s returns (under this call's
    /// context) back to the call outputs under `caller_ctx`.
    fn pull_returns(
        &mut self,
        call: NodeId,
        f: VFuncId,
        caller_ctx: Ctx,
        em: &mut Vec<(OutputId, Ctx, Pair)>,
    ) {
        let callee_ctx = Ctx::of_call(call);
        let g = self.g;
        let outs = &g.node(call).outputs;
        let returns = &g.func(f).returns;
        for &ret in returns {
            let n_ports = g.node(ret).inputs.len().min(outs.len());
            #[allow(clippy::needless_range_loop)] // indexes two parallel structures
            for port in 0..n_ports {
                let src = g.input_src(ret, port);
                if let Some(set) = self.p[src.0 as usize].get(callee_ctx) {
                    let it = &self.interner;
                    em.extend(
                        set.iter()
                            .map(|id| (outs[port], caller_ctx, it.resolve(id))),
                    );
                }
            }
        }
    }
}

/// Extracts function `f`'s k=1 summary: per output, each context's
/// committed pairs, with contexts rewritten into stable vocabulary —
/// the root, or `(owning function name, call-node offset)`.
pub(crate) fn extract_func(
    k1: &CallStringResult,
    graph: &Graph,
    index: &GraphIndex,
    f: VFuncId,
) -> Option<FunctionSummary> {
    let fi = f.0 as usize;
    let (os, oe) = (index.out_start[fi], index.out_end[fi]);
    let mut outputs = Vec::with_capacity((oe - os) as usize);
    for o in os..oe {
        let mut row = Vec::new();
        for (ctx, pairs) in &k1.per_ctx[o as usize] {
            let sc = if *ctx == Ctx::ROOT {
                StableCtx::Root
            } else {
                let call = NodeId(ctx.0 - 1);
                let owner = index.node_owner[call.0 as usize];
                StableCtx::Call {
                    func: graph.func(owner).name.clone(),
                    offset: call.0 - index.node_start[owner.0 as usize],
                }
            };
            let mut sp = Vec::with_capacity(pairs.len());
            for &p in pairs {
                sp.push(crate::fingerprint::stable_pair(&k1.paths, graph, index, p)?);
            }
            sp.sort_unstable();
            row.push((sc, sp));
        }
        row.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        outputs.push(row);
    }
    Some(FunctionSummary {
        fingerprint: index.func_fps[fi],
        calls: crate::fingerprint::stable_calls(graph, index, f, &k1.callees),
        facts: FuncFacts::K1(outputs),
    })
}

/// Translated k=1 facts of one clean function: per output offset, each
/// context's committed pairs over next-graph ids.
type K1Row = Vec<(Ctx, Vec<Pair>)>;

/// Seeded resume of the k=1 call-string analysis.
///
/// The per-context partition adds one wrinkle to the subset-seeding
/// argument: a context is an *activation*, created outside the output
/// edge relation the dirty cone tracks (a call site's owner activates
/// its callees). Two rules close that channel. First, the cone
/// computation marks a dirty call's callees across their *full* output
/// range (not just their entries), so any function whose context set
/// can have changed is recomputed wholesale. Second, a summarized
/// context owned by a dirty or deleted function is dropped during
/// translation rather than failing the plan — sound precisely because
/// of the first rule: that owner's callees are in the cone, so the
/// dropped rows would never be installed as seeds anyway.
///
/// Activations are replayed before the boundary deliveries (root plus
/// every function under the root context, plus each seeded call edge's
/// callee under that call's context); `activate` then performs the
/// return-boundary deliveries itself via `pull_returns` against the
/// already-committed seeds.
///
/// `None` when the plan is rejected; `Some(Err(_))` when the re-solve
/// exhausts the step budget.
pub(crate) fn analyze_callstring_resume(
    graph: &Graph,
    index: &GraphIndex,
    prev: &SolverSummaries,
    paths: PathTable,
    config: &CallStringConfig,
) -> Option<Result<(CallStringResult, ResumeStats), crate::cs::StepLimitExceeded>> {
    use crate::fingerprint::{compute_cone_for, intern_stable, plan_base, ConeVocab, PlanBase};
    if prev.vocab != Vocab::K1 {
        return None;
    }
    let mut paths = paths;
    let base = plan_base(graph, index, prev, |f, summary| {
        let fi = f.0 as usize;
        let want = (index.out_end[fi] - index.out_start[fi]) as usize;
        let FuncFacts::K1(outputs) = &summary.facts else {
            return None;
        };
        if outputs.len() != want {
            return None;
        }
        let mut rows: Vec<K1Row> = Vec::with_capacity(want);
        for row in outputs {
            let mut r: K1Row = Vec::new();
            for (sc, pairs) in row {
                let ctx = match sc {
                    StableCtx::Root => Ctx::ROOT,
                    StableCtx::Call { func, offset } => {
                        // Contexts owned by dirty or deleted functions
                        // are dropped, not failures (see above).
                        let Some(&owner) = index.func_by_name.get(func) else {
                            continue;
                        };
                        let oi = owner.0 as usize;
                        if prev.funcs.get(func).map(|s| s.fingerprint) != Some(index.func_fps[oi]) {
                            continue;
                        }
                        Ctx::of_call(NodeId(index.node_start[oi] + offset))
                    }
                };
                let mut ps = Vec::with_capacity(pairs.len());
                for p in pairs {
                    let a = intern_stable(graph, index, &mut paths, &p.path)?;
                    let b = intern_stable(graph, index, &mut paths, &p.referent)?;
                    ps.push(Pair::new(a, b));
                }
                r.push((ctx, ps));
            }
            rows.push(r);
        }
        Some(rows)
    })?;
    let PlanBase {
        translated,
        dirty,
        prev_edges,
        lost_callees,
    } = base;
    let in_cone = compute_cone_for(
        graph,
        index,
        &dirty,
        &prev_edges,
        &lost_callees,
        ConeVocab::K1,
        &[],
    );

    let mut s = K1 {
        g: graph,
        cfg: config.clone(),
        paths,
        interner: PairInterner::new(),
        p: vec![CtxSlots::default(); graph.output_count()],
        naive_wl: VecDeque::new(),
        out_wl: VecDeque::new(),
        queued: HashSet::default(),
        em: Vec::new(),
        scratch_a: Vec::new(),
        scratch_b: Vec::new(),
        scratch_c: Vec::new(),
        owner: crate::modref::node_owner_map(graph),
        active: HashMap::default(),
        call_ctxs: HashMap::default(),
        callees: HashMap::default(),
        callers: HashMap::default(),
        flow_ins: 0,
        flow_outs: 0,
        dedup_hits: 0,
        delta_batches: 0,
    };

    // 1. Install out-of-cone per-context rows as silent seeds.
    let mut seeded_outputs = 0;
    for (&f, rows) in &translated {
        let os = index.out_start[f.0 as usize];
        for (i, row) in rows.iter().enumerate() {
            let o = (os + i as u32) as usize;
            if in_cone[o] {
                continue;
            }
            for (ctx, pairs) in row {
                for &pair in pairs {
                    let id = s.interner.intern(pair);
                    s.p[o].slot(*ctx).insert(id);
                }
                let slot = s.p[o].slot(*ctx);
                let batch = slot.take_delta();
                slot.recycle(batch);
            }
            seeded_outputs += 1;
        }
    }

    // 2. Install call edges whose function input is out-of-cone.
    let mut call_edges: HashMap<NodeId, Vec<VFuncId>> = HashMap::default();
    for (n, fs) in &prev_edges {
        if !in_cone[graph.input_src(*n, 0).0 as usize] {
            call_edges.insert(*n, fs.clone());
        }
    }
    for (&call, fs) in &call_edges {
        for &f in fs {
            s.callees.entry(call).or_default().push(f);
            s.callers.entry(f).or_default().push(call);
        }
    }

    // 3. Replay the activations (constants dedup against the seeds;
    //    `pull_returns` inside `activate` performs the return-boundary
    //    deliveries against the committed seeds).
    s.activate(graph.root(), Ctx::ROOT);
    for f in graph.func_ids() {
        s.activate(f, Ctx::ROOT);
    }
    for (&call, fs) in &call_edges {
        for &f in fs {
            s.activate(f, Ctx::of_call(call));
        }
    }

    // 4. Remaining boundary deliveries, mirroring the CI recipe.
    for (id, n) in graph.nodes() {
        match n.kind {
            NodeKind::Call | NodeKind::Return { .. } | NodeKind::Primop => continue,
            _ => {}
        }
        if !n.outputs.iter().any(|&o| in_cone[o.0 as usize]) {
            continue;
        }
        for port in 0..n.inputs.len() {
            if matches!(n.kind, NodeKind::PassThrough) && port != 0 {
                continue;
            }
            let src = graph.input_src(id, port);
            if !in_cone[src.0 as usize] {
                s.deliver_committed(id, port, src);
            }
        }
    }
    for (&call, fs) in &call_edges {
        let needed = fs.iter().any(|&f| {
            graph
                .node(graph.func(f).entry)
                .outputs
                .iter()
                .any(|&o| in_cone[o.0 as usize])
        });
        if !needed {
            continue;
        }
        for port in 1..graph.node(call).inputs.len() {
            let src = graph.input_src(call, port);
            if !in_cone[src.0 as usize] {
                s.deliver_committed(call, port, src);
            }
        }
    }

    // 5. Solve the cone.
    if let Err(e) = s.run() {
        return Some(Err(e));
    }
    let mut dirty_names: Vec<String> = dirty.iter().map(|f| graph.func(*f).name.clone()).collect();
    dirty_names.sort_unstable();
    let stats = ResumeStats {
        clean: graph.func_count() - dirty.len(),
        dirty: dirty_names,
        cone_outputs: in_cone.iter().filter(|&&b| b).count(),
        seeded_outputs,
        total_outputs: graph.output_count(),
    };
    Some(Ok((s.finish(), stats)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{analyze_ci, CiConfig};
    use crate::cs::{analyze_cs, CsConfig};
    use vdg::build::{lower, BuildOptions};

    fn pipeline(src: &str) -> (Graph, crate::ci::CiResult, CallStringResult) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = analyze_ci(&g, &CiConfig::default());
        // Share the CI path table so pairs are id-comparable.
        let k1 = analyze_callstring_from(&g, ci.paths.clone(), &CallStringConfig::default())
            .expect("budget");
        (g, ci, k1)
    }

    fn names(paths: &PathTable, g: &Graph, refs: &[PathId]) -> Vec<String> {
        let mut v: Vec<String> = refs.iter().map(|&p| paths.display(p, g)).collect();
        v.sort();
        v
    }

    #[test]
    fn k1_separates_one_level_of_context() {
        let (g, ci, k1) = pipeline(
            "int a; int b;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *x; int *y; x = id(&a); y = id(&b); \
             return *x + *y; }",
        );
        let ops = g.indirect_mem_ops();
        let (rx, _) = ops[0];
        assert_eq!(
            names(&ci.paths, &g, &ci.loc_referents(&g, rx)),
            vec!["a", "b"]
        );
        assert_eq!(names(&k1.paths, &g, &k1.loc_referents(&g, rx)), vec!["a"]);
    }

    #[test]
    fn k1_merges_two_levels_where_assumption_sets_do_not() {
        // `outer` wraps `inner`; the single outer->inner call site
        // exhausts the k=1 budget, so the two main-level contexts merge.
        let src = "int a; int b;\n\
             int *inner(int *p) { return p; }\n\
             int *outer(int *q) { return inner(q); }\n\
             int main(void) { int *x; int *y; x = outer(&a); y = outer(&b); \
             return *x + *y; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&g, &CiConfig::default());
        let k1 =
            analyze_callstring_from(&g, ci.paths.clone(), &CallStringConfig::default()).unwrap();
        let cs = analyze_cs(&g, &ci, &CsConfig::default()).unwrap();
        let (rx, _) = g.indirect_mem_ops()[0];
        assert_eq!(
            names(&k1.paths, &g, &k1.loc_referents(&g, rx)),
            vec!["a", "b"],
            "k=1 merges the wrapper's callers"
        );
        assert_eq!(
            names(&cs.paths, &g, &cs.loc_referents(&g, rx)),
            vec!["a"],
            "assumption sets track through the wrapper"
        );
    }

    #[test]
    fn k1_is_contained_in_ci() {
        let (g, ci, k1) = pipeline(
            "int buf;\n\
             void put(int **slot) { *slot = &buf; }\n\
             int use_a(void) { int *a; put(&a); return *a; }\n\
             int use_b(void) { int *b; put(&b); return *b; }\n\
             int main(void) { return use_a() + use_b(); }",
        );
        for o in g.output_ids() {
            let ci_set: HashSet<Pair> = ci.pairs(o).iter().copied().collect();
            for p in k1.pairs(o) {
                assert!(ci_set.contains(p), "k=1 produced a pair CI lacks");
            }
        }
        assert!(k1.total_pairs() < ci.total_pairs());
    }

    #[test]
    fn assumption_sets_beat_k1_at_call_results() {
        // On the two-level wrapper, assumption sets keep the call results
        // exact while k=1 merges them (tested above); at those outputs
        // the CS answer is strictly contained in the k=1 answer.
        let src = "int a; int b;\n\
             int *inner(int *p) { return p; }\n\
             int *outer(int *q) { return inner(q); }\n\
             int main(void) { int *x; int *y; x = outer(&a); y = outer(&b); \
             return *x + *y; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&g, &CiConfig::default());
        let k1 =
            analyze_callstring_from(&g, ci.paths.clone(), &CallStringConfig::default()).unwrap();
        let cs = analyze_cs(
            &g,
            &ci,
            &CsConfig {
                ci_pruning: false,
                ..CsConfig::default()
            },
        )
        .unwrap();
        for (node, _) in g.indirect_mem_ops() {
            let loc = g.input_src(node, 0);
            let k1_set: HashSet<Pair> = k1.pairs(loc).iter().copied().collect();
            for pr in cs.pairs(loc) {
                assert!(k1_set.contains(pr), "CS exceeded k=1 at a deref input");
            }
        }
    }

    #[test]
    fn recursion_terminates() {
        let (g, ci, k1) = pipeline(
            "int g;\n\
             int *walk(int n, int *p) { if (n == 0) return p; \
             return walk(n - 1, p); }\n\
             int main(void) { int *q; q = walk(5, &g); return *q; }",
        );
        let (read, _) = *g.indirect_mem_ops().iter().find(|&&(_, w)| !w).unwrap();
        assert_eq!(names(&k1.paths, &g, &k1.loc_referents(&g, read)), vec!["g"]);
        assert_eq!(names(&ci.paths, &g, &ci.loc_referents(&g, read)), vec!["g"]);
        assert!(k1.contexts >= 2);
    }

    #[test]
    fn context_count_reported() {
        let (_, _, k1) = pipeline(
            "int g;\n\
             void touch(void) { g = 1; }\n\
             int main(void) { touch(); touch(); return g; }",
        );
        // touch is called from two sites: two contexts plus main's plus
        // the root's.
        assert!(k1.contexts >= 4, "contexts = {}", k1.contexts);
    }
}
