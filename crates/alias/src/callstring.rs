//! A k=1 *call-string* context-sensitive baseline.
//!
//! The paper (§4.1) contrasts two ways to make an analysis
//! context-sensitive: tagging dataflow facts with an abstraction of the
//! call stack (Cooper; Choi, Burke & Carini) versus the assumption sets
//! it adopts. This module implements the call-stack flavor at depth
//! k = 1: every points-to fact is qualified by the immediate call site
//! of the procedure it lives in, return values flow only to their
//! originating site, and deeper context is merged — the "k-limiting"
//! Deutsch's PLDI 1994 title pushes beyond.
//!
//! Precision relative to the paper's two analyses:
//!
//! ```text
//! CI (Fig. 1) ⊒ k=1 call-strings
//! ```
//!
//! and at *call results* the assumption-set analysis is at least as
//! precise as k=1 (it tracks arbitrarily deep context; see the
//! two-level wrapper test below, where k=1 merges and assumption sets
//! do not). The full stripped per-output solutions of the two
//! context-sensitive analyses are, however, formally incomparable: the
//! assumption-set analysis chains pairs that arrived from *different*
//! contexts through a procedure's lookups and updates — qualifying the
//! result with an assumption set no single call site satisfies — while
//! the call-string partition never combines them in the first place.
//! Such unsatisfiably-qualified pairs survive stripping inside the
//! procedure even though they are filtered at every return.

use crate::fxhash::{HashMap, HashSet};
use crate::path::{AccessOp, Pair, PathId, PathTable};
use std::collections::VecDeque;
use vdg::graph::{Graph, InputId, NodeId, NodeKind, OutputId, VFuncId};

/// A length-1 call string: the immediate call site, or the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ctx(u32);

impl Ctx {
    const ROOT: Ctx = Ctx(0);

    fn of_call(call: NodeId) -> Ctx {
        Ctx(call.0 + 1)
    }
}

/// Configuration (the step budget mirrors the CS solver's).
#[derive(Debug, Clone)]
pub struct CallStringConfig {
    /// Perform strong updates (as the paper's solvers do).
    pub strong_updates: bool,
    /// Abort after this many transfer applications.
    pub max_steps: u64,
}

impl Default for CallStringConfig {
    fn default() -> Self {
        CallStringConfig {
            strong_updates: true,
            max_steps: 200_000_000,
        }
    }
}

/// Result of the k=1 analysis, stripped of contexts.
#[derive(Debug, Clone)]
pub struct CallStringResult {
    /// The interned path universe.
    pub paths: PathTable,
    stripped: Vec<Vec<Pair>>,
    /// Transfer-function applications.
    pub flow_ins: u64,
    /// Meet operations.
    pub flow_outs: u64,
    /// Number of (function, context) pairs analyzed.
    pub contexts: usize,
}

impl CallStringResult {
    /// The context-stripped pairs on an output, sorted.
    pub fn pairs(&self, o: OutputId) -> &[Pair] {
        &self.stripped[o.0 as usize]
    }

    /// Total stripped pairs.
    pub fn total_pairs(&self) -> usize {
        self.stripped.iter().map(|p| p.len()).sum()
    }

    /// Distinct referents at a memory operation's location input.
    pub fn loc_referents(&self, graph: &Graph, node: NodeId) -> Vec<PathId> {
        let loc_out = graph.input_src(node, 0);
        let mut refs: Vec<PathId> = self.pairs(loc_out).iter().map(|p| p.referent).collect();
        refs.sort_unstable();
        refs.dedup();
        refs
    }
}

impl crate::stats::PointsToSolution for CallStringResult {
    fn pairs_at(&self, o: OutputId) -> &[Pair] {
        self.pairs(o)
    }
    fn path_table(&self) -> &PathTable {
        &self.paths
    }
}

/// Runs the k=1 call-string analysis.
///
/// # Errors
///
/// Returns [`crate::cs::StepLimitExceeded`] when the step budget runs
/// out.
pub fn analyze_callstring(
    graph: &Graph,
    config: &CallStringConfig,
) -> Result<CallStringResult, crate::cs::StepLimitExceeded> {
    analyze_callstring_from(graph, PathTable::for_graph(graph), config)
}

/// Like [`analyze_callstring`], but starting from an existing path table
/// so the resulting [`Pair`]s are id-comparable with another solver's.
pub fn analyze_callstring_from(
    graph: &Graph,
    paths: PathTable,
    config: &CallStringConfig,
) -> Result<CallStringResult, crate::cs::StepLimitExceeded> {
    let mut s = K1 {
        g: graph,
        cfg: config.clone(),
        paths,
        p: vec![HashMap::default(); graph.output_count()],
        wl: VecDeque::new(),
        owner: crate::modref::node_owner_map(graph),
        active: HashMap::default(),
        call_ctxs: HashMap::default(),
        callees: HashMap::default(),
        callers: HashMap::default(),
        flow_ins: 0,
        flow_outs: 0,
    };
    s.activate(graph.root(), Ctx::ROOT);
    s.run()?;
    Ok(s.finish())
}

struct K1<'g> {
    g: &'g Graph,
    cfg: CallStringConfig,
    paths: PathTable,
    /// Per output: context -> pairs.
    p: Vec<HashMap<Ctx, HashSet<Pair>>>,
    wl: VecDeque<(InputId, Ctx, Pair)>,
    owner: Vec<VFuncId>,
    /// Contexts under which each function has been activated.
    active: HashMap<VFuncId, HashSet<Ctx>>,
    /// Caller contexts observed at each call node (for k=1 returns).
    call_ctxs: HashMap<NodeId, HashSet<Ctx>>,
    callees: HashMap<NodeId, Vec<VFuncId>>,
    callers: HashMap<VFuncId, Vec<NodeId>>,
    flow_ins: u64,
    flow_outs: u64,
}

impl<'g> K1<'g> {
    /// First entry of `f` under `ctx`: seed its constant nodes there and
    /// mark every call site it owns as reachable under `ctx` (so callee
    /// returns flow back even when no actual ever carries a pair — e.g.
    /// a call made while the store is still empty).
    fn activate(&mut self, f: VFuncId, ctx: Ctx) {
        if !self.active.entry(f).or_default().insert(ctx) {
            return;
        }
        let mut seeds = Vec::new();
        let mut owned_calls = Vec::new();
        for (id, n) in self.g.nodes() {
            if self.owner[id.0 as usize] != f {
                continue;
            }
            if matches!(n.kind, NodeKind::Call) {
                owned_calls.push(id);
            }
            let base = match n.kind {
                NodeKind::Base(b) | NodeKind::Alloc(b) | NodeKind::FuncConst(b) => b,
                _ => continue,
            };
            let root = self.paths.base_root(base);
            seeds.push((n.outputs[0], Pair::new(PathTable::EMPTY, root)));
        }
        for (o, p) in seeds {
            self.flow_out(o, ctx, p);
        }
        for call in owned_calls {
            self.call_ctxs.entry(call).or_default().insert(ctx);
            let callees = self.callees.get(&call).cloned().unwrap_or_default();
            let mut em = Vec::new();
            for cf in callees {
                self.pull_returns(call, cf, ctx, &mut em);
            }
            for (o, c, p) in em {
                self.flow_out(o, c, p);
            }
        }
    }

    fn flow_out(&mut self, out: OutputId, ctx: Ctx, pair: Pair) {
        self.flow_outs += 1;
        if self.p[out.0 as usize].entry(ctx).or_default().insert(pair) {
            for &input in self.g.consumers(out) {
                self.wl.push_back((input, ctx, pair));
            }
        }
    }

    fn run(&mut self) -> Result<(), crate::cs::StepLimitExceeded> {
        while let Some((input, ctx, pair)) = self.wl.pop_front() {
            self.flow_ins += 1;
            if self.flow_ins > self.cfg.max_steps {
                return Err(crate::cs::StepLimitExceeded {
                    steps: self.cfg.max_steps,
                });
            }
            let info = self.g.input(input);
            let emits = self.transfer(info.node, info.port as usize, ctx, pair);
            for (out, ctx, pair) in emits {
                self.flow_out(out, ctx, pair);
            }
        }
        Ok(())
    }

    fn finish(self) -> CallStringResult {
        let contexts = self.active.values().map(|c| c.len()).sum();
        let stripped = self
            .p
            .into_iter()
            .map(|m| {
                let mut v: Vec<Pair> = m.into_values().flatten().collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        CallStringResult {
            paths: self.paths,
            stripped,
            flow_ins: self.flow_ins,
            flow_outs: self.flow_outs,
            contexts,
        }
    }

    fn pairs_at(&self, node: NodeId, port: usize, ctx: Ctx) -> Vec<Pair> {
        let src = self.g.input_src(node, port);
        self.p[src.0 as usize]
            .get(&ctx)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    fn transfer(
        &mut self,
        node: NodeId,
        port: usize,
        ctx: Ctx,
        pair: Pair,
    ) -> Vec<(OutputId, Ctx, Pair)> {
        let n = self.g.node(node);
        let kind = n.kind.clone();
        let outs = n.outputs.clone();
        let mut em: Vec<(OutputId, Ctx, Pair)> = Vec::new();
        match kind {
            NodeKind::Member(f) => {
                let r = self.paths.child(pair.referent, AccessOp::Field(f));
                em.push((outs[0], ctx, Pair::new(pair.path, r)));
            }
            NodeKind::IndexElem => {
                let r = self.paths.child(pair.referent, AccessOp::Index);
                em.push((outs[0], ctx, Pair::new(pair.path, r)));
            }
            NodeKind::ExtractField(f) => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Field(f)) {
                    em.push((outs[0], ctx, Pair::new(p, pair.referent)));
                }
            }
            NodeKind::ExtractElem => {
                if let Some(p) = self.paths.strip_first(pair.path, AccessOp::Index) {
                    em.push((outs[0], ctx, Pair::new(p, pair.referent)));
                }
            }
            NodeKind::PassThrough if port == 0 => {
                em.push((outs[0], ctx, pair));
            }
            NodeKind::Gamma => em.push((outs[0], ctx, pair)),
            NodeKind::Primop => {}
            NodeKind::Lookup { .. } => match port {
                0 => {
                    for sp in self.pairs_at(node, 1, ctx) {
                        if self.paths.dom(pair.referent, sp.path) {
                            let off = self.paths.subtract(sp.path, pair.referent);
                            let p = self.paths.append(pair.path, off);
                            em.push((outs[0], ctx, Pair::new(p, sp.referent)));
                        }
                    }
                }
                _ => {
                    for lp in self.pairs_at(node, 0, ctx) {
                        if self.paths.dom(lp.referent, pair.path) {
                            let off = self.paths.subtract(pair.path, lp.referent);
                            let p = self.paths.append(lp.path, off);
                            em.push((outs[0], ctx, Pair::new(p, pair.referent)));
                        }
                    }
                }
            },
            NodeKind::Update { .. } => match port {
                0 => {
                    for vp in self.pairs_at(node, 2, ctx) {
                        let path = self.paths.append(pair.referent, vp.path);
                        em.push((outs[0], ctx, Pair::new(path, vp.referent)));
                    }
                    for sp in self.pairs_at(node, 1, ctx) {
                        if !(self.cfg.strong_updates
                            && self.paths.strong_dom(pair.referent, sp.path))
                        {
                            em.push((outs[0], ctx, sp));
                        }
                    }
                }
                1 => {
                    let locs = self.pairs_at(node, 0, ctx);
                    let passes = locs.iter().any(|lp| {
                        !(self.cfg.strong_updates && self.paths.strong_dom(lp.referent, pair.path))
                    });
                    if passes {
                        em.push((outs[0], ctx, pair));
                    }
                }
                _ => {
                    for lp in self.pairs_at(node, 0, ctx) {
                        let path = self.paths.append(lp.referent, pair.path);
                        em.push((outs[0], ctx, Pair::new(path, pair.referent)));
                    }
                }
            },
            NodeKind::CopyMem => match port {
                0 => {
                    em.push((outs[0], ctx, pair));
                    let dsts = self.pairs_at(node, 1, ctx);
                    for srcp in self.pairs_at(node, 2, ctx) {
                        if self.paths.dom(srcp.referent, pair.path) {
                            let off = self.paths.subtract(pair.path, srcp.referent);
                            for dp in &dsts {
                                let path = self.paths.append(dp.referent, off);
                                em.push((outs[0], ctx, Pair::new(path, pair.referent)));
                            }
                        }
                    }
                }
                _ => {
                    let stores = self.pairs_at(node, 0, ctx);
                    let dsts = self.pairs_at(node, 1, ctx);
                    let srcs = self.pairs_at(node, 2, ctx);
                    for srcp in &srcs {
                        for sp in &stores {
                            if self.paths.dom(srcp.referent, sp.path) {
                                let off = self.paths.subtract(sp.path, srcp.referent);
                                for dp in &dsts {
                                    let path = self.paths.append(dp.referent, off);
                                    em.push((outs[0], ctx, Pair::new(path, sp.referent)));
                                }
                            }
                        }
                    }
                }
            },
            NodeKind::Call => {
                if port == 0 {
                    if let Some(f) = self.paths.func_of(pair.referent) {
                        self.register_callee(node, f, &mut em);
                    }
                } else {
                    // Remember the caller context, then forward under the
                    // k=1 context of this call site.
                    self.call_ctxs.entry(node).or_default().insert(ctx);
                    let callees = self.callees.get(&node).cloned().unwrap_or_default();
                    for f in callees {
                        self.forward_to_formal(node, port, pair, f, &mut em);
                        // Returns already computed under this call's
                        // context flow back out under the newly seen
                        // caller context.
                        self.pull_returns(node, f, ctx, &mut em);
                    }
                }
            }
            NodeKind::Return { func } => {
                // A pair at a return under context (call c) flows only to
                // call c, under every caller context seen there.
                let Ctx(raw) = ctx;
                if raw == 0 {
                    return em; // the root never returns anywhere
                }
                let call = NodeId(raw - 1);
                if !self
                    .callers
                    .get(&func)
                    .map(|cs| cs.contains(&call))
                    .unwrap_or(false)
                {
                    return em;
                }
                let caller_ctxs: Vec<Ctx> = self
                    .call_ctxs
                    .get(&call)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                let outs = self.g.node(call).outputs.clone();
                if port < outs.len() {
                    for cctx in caller_ctxs {
                        em.push((outs[port], cctx, pair));
                    }
                }
            }
            _ => {}
        }
        em
    }

    fn register_callee(&mut self, call: NodeId, f: VFuncId, em: &mut Vec<(OutputId, Ctx, Pair)>) {
        let list = self.callees.entry(call).or_default();
        if list.contains(&f) {
            return;
        }
        list.push(f);
        self.callers.entry(f).or_default().push(call);
        self.activate(f, Ctx::of_call(call));
        // Push existing actual pairs (in every caller context seen so far).
        let n_inputs = self.g.node(call).inputs.len();
        let src_ctxs: Vec<(usize, Ctx, Pair)> = (1..n_inputs)
            .flat_map(|port| {
                let src = self.g.input_src(call, port);
                self.p[src.0 as usize]
                    .iter()
                    .flat_map(move |(ctx, pairs)| pairs.iter().map(move |&p| (port, *ctx, p)))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (port, ctx, pair) in src_ctxs {
            self.call_ctxs.entry(call).or_default().insert(ctx);
            self.forward_to_formal(call, port, pair, f, em);
        }
        // Pull any returns already computed.
        let ctxs: Vec<Ctx> = self
            .call_ctxs
            .get(&call)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for ctx in ctxs {
            self.pull_returns(call, f, ctx, em);
        }
    }

    fn forward_to_formal(
        &mut self,
        call: NodeId,
        port: usize,
        pair: Pair,
        f: VFuncId,
        em: &mut Vec<(OutputId, Ctx, Pair)>,
    ) {
        let entry = self.g.func(f).entry;
        let formals = &self.g.node(entry).outputs;
        let idx = port - 1;
        if idx >= formals.len() {
            return;
        }
        let callee_ctx = Ctx::of_call(call);
        self.activate(f, callee_ctx);
        em.push((formals[idx], callee_ctx, pair));
    }

    /// Flows pairs already present on `f`'s returns (under this call's
    /// context) back to the call outputs under `caller_ctx`.
    fn pull_returns(
        &mut self,
        call: NodeId,
        f: VFuncId,
        caller_ctx: Ctx,
        em: &mut Vec<(OutputId, Ctx, Pair)>,
    ) {
        let callee_ctx = Ctx::of_call(call);
        let outs = self.g.node(call).outputs.clone();
        let returns = self.g.func(f).returns.clone();
        for ret in returns {
            let n_ports = self.g.node(ret).inputs.len().min(outs.len());
            #[allow(clippy::needless_range_loop)] // indexes two parallel structures
            for port in 0..n_ports {
                for pair in self.pairs_at(ret, port, callee_ctx) {
                    em.push((outs[port], caller_ctx, pair));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{analyze_ci, CiConfig};
    use crate::cs::{analyze_cs, CsConfig};
    use vdg::build::{lower, BuildOptions};

    fn pipeline(src: &str) -> (Graph, crate::ci::CiResult, CallStringResult) {
        let p = cfront::compile(src).expect("compiles");
        let g = lower(&p, &BuildOptions::default()).expect("lowers");
        let ci = analyze_ci(&g, &CiConfig::default());
        // Share the CI path table so pairs are id-comparable.
        let k1 = analyze_callstring_from(&g, ci.paths.clone(), &CallStringConfig::default())
            .expect("budget");
        (g, ci, k1)
    }

    fn names(paths: &PathTable, g: &Graph, refs: &[PathId]) -> Vec<String> {
        let mut v: Vec<String> = refs.iter().map(|&p| paths.display(p, g)).collect();
        v.sort();
        v
    }

    #[test]
    fn k1_separates_one_level_of_context() {
        let (g, ci, k1) = pipeline(
            "int a; int b;\n\
             int *id(int *p) { return p; }\n\
             int main(void) { int *x; int *y; x = id(&a); y = id(&b); \
             return *x + *y; }",
        );
        let ops = g.indirect_mem_ops();
        let (rx, _) = ops[0];
        assert_eq!(
            names(&ci.paths, &g, &ci.loc_referents(&g, rx)),
            vec!["a", "b"]
        );
        assert_eq!(names(&k1.paths, &g, &k1.loc_referents(&g, rx)), vec!["a"]);
    }

    #[test]
    fn k1_merges_two_levels_where_assumption_sets_do_not() {
        // `outer` wraps `inner`; the single outer->inner call site
        // exhausts the k=1 budget, so the two main-level contexts merge.
        let src = "int a; int b;\n\
             int *inner(int *p) { return p; }\n\
             int *outer(int *q) { return inner(q); }\n\
             int main(void) { int *x; int *y; x = outer(&a); y = outer(&b); \
             return *x + *y; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&g, &CiConfig::default());
        let k1 =
            analyze_callstring_from(&g, ci.paths.clone(), &CallStringConfig::default()).unwrap();
        let cs = analyze_cs(&g, &ci, &CsConfig::default()).unwrap();
        let (rx, _) = g.indirect_mem_ops()[0];
        assert_eq!(
            names(&k1.paths, &g, &k1.loc_referents(&g, rx)),
            vec!["a", "b"],
            "k=1 merges the wrapper's callers"
        );
        assert_eq!(
            names(&cs.paths, &g, &cs.loc_referents(&g, rx)),
            vec!["a"],
            "assumption sets track through the wrapper"
        );
    }

    #[test]
    fn k1_is_contained_in_ci() {
        let (g, ci, k1) = pipeline(
            "int buf;\n\
             void put(int **slot) { *slot = &buf; }\n\
             int use_a(void) { int *a; put(&a); return *a; }\n\
             int use_b(void) { int *b; put(&b); return *b; }\n\
             int main(void) { return use_a() + use_b(); }",
        );
        for o in g.output_ids() {
            let ci_set: HashSet<Pair> = ci.pairs(o).iter().copied().collect();
            for p in k1.pairs(o) {
                assert!(ci_set.contains(p), "k=1 produced a pair CI lacks");
            }
        }
        assert!(k1.total_pairs() < ci.total_pairs());
    }

    #[test]
    fn assumption_sets_beat_k1_at_call_results() {
        // On the two-level wrapper, assumption sets keep the call results
        // exact while k=1 merges them (tested above); at those outputs
        // the CS answer is strictly contained in the k=1 answer.
        let src = "int a; int b;\n\
             int *inner(int *p) { return p; }\n\
             int *outer(int *q) { return inner(q); }\n\
             int main(void) { int *x; int *y; x = outer(&a); y = outer(&b); \
             return *x + *y; }";
        let p = cfront::compile(src).unwrap();
        let g = lower(&p, &BuildOptions::default()).unwrap();
        let ci = analyze_ci(&g, &CiConfig::default());
        let k1 =
            analyze_callstring_from(&g, ci.paths.clone(), &CallStringConfig::default()).unwrap();
        let cs = analyze_cs(
            &g,
            &ci,
            &CsConfig {
                ci_pruning: false,
                ..CsConfig::default()
            },
        )
        .unwrap();
        for (node, _) in g.indirect_mem_ops() {
            let loc = g.input_src(node, 0);
            let k1_set: HashSet<Pair> = k1.pairs(loc).iter().copied().collect();
            for pr in cs.pairs(loc) {
                assert!(k1_set.contains(pr), "CS exceeded k=1 at a deref input");
            }
        }
    }

    #[test]
    fn recursion_terminates() {
        let (g, ci, k1) = pipeline(
            "int g;\n\
             int *walk(int n, int *p) { if (n == 0) return p; \
             return walk(n - 1, p); }\n\
             int main(void) { int *q; q = walk(5, &g); return *q; }",
        );
        let (read, _) = *g.indirect_mem_ops().iter().find(|&&(_, w)| !w).unwrap();
        assert_eq!(names(&k1.paths, &g, &k1.loc_referents(&g, read)), vec!["g"]);
        assert_eq!(names(&ci.paths, &g, &ci.loc_referents(&g, read)), vec!["g"]);
        assert!(k1.contexts >= 2);
    }

    #[test]
    fn context_count_reported() {
        let (_, _, k1) = pipeline(
            "int g;\n\
             void touch(void) { g = 1; }\n\
             int main(void) { touch(); touch(); return g; }",
        );
        // touch is called from two sites: two contexts plus main's plus
        // the root's.
        assert!(k1.contexts >= 4, "contexts = {}", k1.contexts);
    }
}
