//! Access paths and points-to pairs (paper §2).
//!
//! An access path is an optional base-location followed by a sequence of
//! access operators (struct member or array element). Paths with a base
//! are *locations* (indirection through the store); paths without are
//! *offsets* (relative addressing into aggregate values). Careful
//! interning guarantees a path is aliased only to its prefixes; union
//! member accesses are identities (handled at VDG construction), which is
//! how static aliasing inside unions is modeled.

use crate::fxhash::HashMap;
use vdg::graph::{BaseId, BaseKind, FieldId, Graph, VFuncId};

/// An interned access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

/// One access operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOp {
    /// Struct member selection. Union members never generate operators.
    Field(FieldId),
    /// Array element access; all subscripts collapse to one operator.
    Index,
}

#[derive(Debug, Clone)]
struct PathNode {
    parent: Option<PathId>,
    op: Option<AccessOp>,
    base: Option<BaseId>,
    depth: u32,
    has_index: bool,
}

/// A points-to pair `(path, referent)`: indirecting through any location
/// (or offset) denoted by `path` may return any location denoted by
/// `referent` (paper §2). Singleton sets double as definite pairs,
/// enabling strong updates with no extra representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pair {
    /// The location (or offset) being indirected through.
    pub path: PathId,
    /// The location (or function) it may yield.
    pub referent: PathId,
}

impl Pair {
    /// Creates a pair.
    pub fn new(path: PathId, referent: PathId) -> Self {
        Pair { path, referent }
    }
}

/// Interning table for access paths over a VDG's base-locations.
///
/// Beyond the graph's own bases, the table can mint *synthetic* clones
/// of heap bases qualified by a call site (paper §2 footnote 3: "naming
/// such base-locations with a call string instead of a single allocation
/// site would be a trivial modification"). Synthetic [`BaseId`]s extend
/// the graph's id space; collapse them with
/// [`PathTable::collapse_synthetic`] before consulting the graph.
#[derive(Debug, Clone)]
pub struct PathTable {
    nodes: Vec<PathNode>,
    children: HashMap<(PathId, AccessOp), PathId>,
    base_roots: Vec<PathId>,
    /// Per base: does it denote at most one runtime location?
    base_single: Vec<bool>,
    /// Per base: the function it names, for function-constant bases.
    base_func: Vec<Option<VFuncId>>,
    /// Per base: the Cooper "older instances" companion, if any.
    base_older: Vec<Option<BaseId>>,
    /// Number of real (graph-backed) bases; ids at and beyond this are
    /// synthetic clones.
    n_real: usize,
    /// Per synthetic base: (original base, qualifying call node id).
    synth_origin: Vec<(BaseId, u32)>,
    synth_map: HashMap<(BaseId, u32), BaseId>,
}

impl PathTable {
    /// The empty offset path `ε`.
    pub const EMPTY: PathId = PathId(0);

    /// Builds a table with one root path per base-location of `graph`.
    pub fn for_graph(graph: &Graph) -> Self {
        let mut t = PathTable {
            nodes: vec![PathNode {
                parent: None,
                op: None,
                base: None,
                depth: 0,
                has_index: false,
            }],
            children: HashMap::default(),
            base_roots: Vec::new(),
            base_single: Vec::new(),
            base_func: Vec::new(),
            base_older: Vec::new(),
            n_real: 0,
            synth_origin: Vec::new(),
            synth_map: HashMap::default(),
        };
        for b in graph.base_ids() {
            let info = graph.base(b);
            let id = PathId(t.nodes.len() as u32);
            t.nodes.push(PathNode {
                parent: None,
                op: None,
                base: Some(b),
                depth: 0,
                has_index: false,
            });
            t.base_roots.push(id);
            t.base_single.push(info.single_instance);
            t.base_func.push(match info.kind {
                BaseKind::Func { func } => Some(func),
                _ => None,
            });
            t.base_older.push(info.cooper_older);
        }
        t.n_real = t.base_roots.len();
        t
    }

    /// Whether `b` is a synthetic (call-string-qualified) base.
    pub fn is_synthetic(&self, b: BaseId) -> bool {
        (b.0 as usize) >= self.n_real
    }

    /// The real base a (possibly synthetic) base denotes storage of.
    pub fn origin_base(&self, b: BaseId) -> BaseId {
        if self.is_synthetic(b) {
            self.synth_origin[b.0 as usize - self.n_real].0
        } else {
            b
        }
    }

    /// Mints (or retrieves) the clone of heap base `b` qualified by call
    /// node `via`. Cloning a synthetic base is the identity (k = 1).
    pub fn heap_clone(&mut self, b: BaseId, via: u32) -> BaseId {
        if self.is_synthetic(b) {
            return b;
        }
        if let Some(&c) = self.synth_map.get(&(b, via)) {
            return c;
        }
        let id = BaseId(self.base_roots.len() as u32);
        let root = PathId(self.nodes.len() as u32);
        self.nodes.push(PathNode {
            parent: None,
            op: None,
            base: Some(id),
            depth: 0,
            has_index: false,
        });
        self.base_roots.push(root);
        self.base_single.push(false); // heap clones stay weak
        self.base_func.push(None);
        self.base_older.push(None);
        self.synth_origin.push((b, via));
        self.synth_map.insert((b, via), id);
        id
    }

    /// Rewrites any synthetic base in `p` back to its origin, producing a
    /// path comparable with site-named results.
    pub fn collapse_synthetic(&mut self, p: PathId) -> PathId {
        match self.base_of(p) {
            Some(b) if self.is_synthetic(b) => {
                let orig = self.origin_base(b);
                self.rebase(p, orig)
            }
            _ => p,
        }
    }

    /// The root path of a base-location.
    pub fn base_root(&self, b: BaseId) -> PathId {
        self.base_roots[b.0 as usize]
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the table holds only the empty path.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Extends `p` with one access operator.
    pub fn child(&mut self, p: PathId, op: AccessOp) -> PathId {
        if let Some(&c) = self.children.get(&(p, op)) {
            return c;
        }
        let node = &self.nodes[p.0 as usize];
        let new = PathNode {
            parent: Some(p),
            op: Some(op),
            base: node.base,
            depth: node.depth + 1,
            has_index: node.has_index || matches!(op, AccessOp::Index),
        };
        let id = PathId(self.nodes.len() as u32);
        self.nodes.push(new);
        self.children.insert((p, op), id);
        id
    }

    /// The base of a path, if it is a location.
    pub fn base_of(&self, p: PathId) -> Option<BaseId> {
        self.nodes[p.0 as usize].base
    }

    /// Whether `p` is an offset (no base-location).
    pub fn is_offset(&self, p: PathId) -> bool {
        self.base_of(p).is_none()
    }

    /// The function named by a function-constant referent path.
    pub fn func_of(&self, p: PathId) -> Option<VFuncId> {
        let n = &self.nodes[p.0 as usize];
        if n.depth != 0 {
            return None;
        }
        n.base.and_then(|b| self.base_func[b.0 as usize])
    }

    /// Number of access operators on `p`.
    pub fn depth(&self, p: PathId) -> u32 {
        self.nodes[p.0 as usize].depth
    }

    /// The access operators of `p`, outermost-first (root to leaf).
    pub fn ops_of(&self, p: PathId) -> Vec<AccessOp> {
        let mut ops = Vec::with_capacity(self.depth(p) as usize);
        let mut cur = p;
        while let Some(op) = self.nodes[cur.0 as usize].op {
            ops.push(op);
            cur = self.nodes[cur.0 as usize]
                .parent
                .expect("op implies parent");
        }
        ops.reverse();
        ops
    }

    /// Whether `a` may-aliases `b` from above: a read (write) of `a` may
    /// observe (modify) a value written to `b`. True iff `a` is a prefix
    /// of `b` (paper Fig. 1, `dom`).
    pub fn dom(&self, a: PathId, b: PathId) -> bool {
        let da = self.depth(a);
        let db = self.depth(b);
        if da > db {
            return false;
        }
        let mut cur = b;
        for _ in 0..(db - da) {
            cur = self.nodes[cur.0 as usize].parent.expect("depth accounted");
        }
        cur == a
    }

    /// Whether `a` is strongly updateable: its base denotes a single
    /// runtime location and no operator on its spine is an array access.
    pub fn strongly_updateable(&self, a: PathId) -> bool {
        let n = &self.nodes[a.0 as usize];
        match n.base {
            Some(b) => self.base_single[b.0 as usize] && !n.has_index,
            None => false,
        }
    }

    /// Must-alias from above: a write of `a` must modify a value readable
    /// at `b` (paper Fig. 1, `strong-dom`). True iff `a` is strongly
    /// updateable and a prefix of `b`.
    pub fn strong_dom(&self, a: PathId, b: PathId) -> bool {
        self.strongly_updateable(a) && self.dom(a, b)
    }

    /// Appends an offset path to `a` (paper Fig. 1, `+`).
    pub fn append(&mut self, a: PathId, offset: PathId) -> PathId {
        debug_assert!(self.is_offset(offset), "append takes an offset");
        let mut cur = a;
        for op in self.ops_of(offset) {
            cur = self.child(cur, op);
        }
        cur
    }

    /// Prefix subtraction `b − a` (paper Fig. 1, `−`): the offset of `b`
    /// relative to its prefix `a`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `a` is not a prefix of `b`.
    pub fn subtract(&mut self, b: PathId, a: PathId) -> PathId {
        debug_assert!(self.dom(a, b), "subtract requires dom(a, b)");
        let ops = self.ops_of(b);
        let skip = self.depth(a) as usize;
        let mut cur = Self::EMPTY;
        for &op in &ops[skip..] {
            cur = self.child(cur, op);
        }
        cur
    }

    /// Strips a leading operator from an offset path, for aggregate value
    /// extraction. Returns `None` if the first operator differs.
    /// The empty path conservatively extracts to itself (whole-value
    /// pointers inside collapsed aggregates).
    pub fn strip_first(&mut self, p: PathId, op: AccessOp) -> Option<PathId> {
        if p == Self::EMPTY {
            return Some(Self::EMPTY);
        }
        let ops = self.ops_of(p);
        if ops.first() != Some(&op) {
            return None;
        }
        let mut cur = Self::EMPTY;
        for &o in &ops[1..] {
            cur = self.child(cur, o);
        }
        Some(cur)
    }

    /// The Cooper "older instances" companion base of `p`'s base, if any.
    pub fn cooper_older_of(&self, p: PathId) -> Option<BaseId> {
        self.base_of(p).and_then(|b| self.base_older[b.0 as usize])
    }

    /// Rebases `p` onto a different base-location, keeping its operators.
    pub fn rebase(&mut self, p: PathId, new_base: BaseId) -> PathId {
        let ops = self.ops_of(p);
        let mut cur = self.base_root(new_base);
        for op in ops {
            cur = self.child(cur, op);
        }
        cur
    }

    /// Rebuilds the table in *canonical* order: every real base root is
    /// kept, plus exactly the paths in `used` (with their prefixes) and
    /// the synthetic bases they mention, renumbered by structural
    /// content — synthetic bases by `(origin, call site)`, paths by
    /// `(base, operator sequence)`. Two solver runs that reach the same
    /// final pair sets through different schedules intern paths in
    /// different orders; canonicalizing at finish makes their results
    /// *numerically* identical, not merely identical up to rendering.
    ///
    /// Returns the new table and an old-id → new-id map (`u32::MAX`
    /// for dropped paths). [`PathTable::EMPTY`] always maps to itself.
    pub fn canonicalize(&self, used: &crate::fxhash::HashSet<PathId>) -> (PathTable, Vec<u32>) {
        let n = self.nodes.len();
        let mut keep = vec![false; n];
        keep[0] = true;
        for &r in &self.base_roots[..self.n_real] {
            keep[r.0 as usize] = true;
        }
        for &p in used {
            let mut cur = p;
            loop {
                let i = cur.0 as usize;
                if keep[i] {
                    break;
                }
                keep[i] = true;
                match self.nodes[i].parent {
                    Some(par) => cur = par,
                    None => break,
                }
            }
        }

        // Synthetic bases survive only if one of their paths did; they
        // renumber densely in (origin, call-site) order.
        let mut kept_synth: Vec<(BaseId, u32, BaseId)> = Vec::new();
        for (i, &(orig, via)) in self.synth_origin.iter().enumerate() {
            let old_b = BaseId((self.n_real + i) as u32);
            let root = self.base_roots[old_b.0 as usize];
            if keep[root.0 as usize] {
                kept_synth.push((orig, via, old_b));
            }
        }
        kept_synth.sort_unstable_by_key(|&(o, v, _)| (o.0, v));
        let mut synth_remap: HashMap<BaseId, BaseId> = HashMap::default();
        for (rank, &(_, _, old_b)) in kept_synth.iter().enumerate() {
            synth_remap.insert(old_b, BaseId((self.n_real + rank) as u32));
        }
        let map_base = |b: BaseId| -> BaseId {
            if (b.0 as usize) < self.n_real {
                b
            } else {
                synth_remap[&b]
            }
        };

        // Sort kept paths by structural key; prefixes sort before their
        // extensions, so parents always precede children.
        type Key = (u8, u32, Vec<(u8, u32)>);
        let key_of = |i: usize| -> Key {
            let node = &self.nodes[i];
            let (has_base, base) = match node.base {
                None => (0u8, 0u32),
                Some(b) => (1, map_base(b).0),
            };
            let ops: Vec<(u8, u32)> = self
                .ops_of(PathId(i as u32))
                .into_iter()
                .map(|op| match op {
                    AccessOp::Field(f) => (0u8, f.0),
                    AccessOp::Index => (1, 0),
                })
                .collect();
            (has_base, base, ops)
        };
        let mut order: Vec<(Key, u32)> = (0..n)
            .filter(|&i| keep[i])
            .map(|i| (key_of(i), i as u32))
            .collect();
        order.sort_unstable();

        let mut remap = vec![u32::MAX; n];
        for (new, (_, old)) in order.iter().enumerate() {
            remap[*old as usize] = new as u32;
        }
        debug_assert_eq!(remap[0], 0, "the empty path is minimal");

        let total_bases = self.n_real + kept_synth.len();
        let mut t = PathTable {
            nodes: Vec::with_capacity(order.len()),
            children: HashMap::default(),
            base_roots: vec![PathId(0); total_bases],
            base_single: self.base_single[..self.n_real].to_vec(),
            base_func: self.base_func[..self.n_real].to_vec(),
            base_older: self.base_older[..self.n_real].to_vec(),
            n_real: self.n_real,
            synth_origin: Vec::with_capacity(kept_synth.len()),
            synth_map: HashMap::default(),
        };
        for &(orig, via, old_b) in &kept_synth {
            let new_b = map_base(old_b);
            t.base_single.push(self.base_single[old_b.0 as usize]);
            t.base_func.push(self.base_func[old_b.0 as usize]);
            t.base_older.push(self.base_older[old_b.0 as usize]);
            t.synth_origin.push((orig, via));
            t.synth_map.insert((orig, via), new_b);
        }
        for (new, (_, old)) in order.iter().enumerate() {
            let on = &self.nodes[*old as usize];
            let parent = on.parent.map(|p| PathId(remap[p.0 as usize]));
            let base = on.base.map(map_base);
            t.nodes.push(PathNode {
                parent,
                op: on.op,
                base,
                depth: on.depth,
                has_index: on.has_index,
            });
            let id = PathId(new as u32);
            if let (Some(par), Some(op)) = (parent, on.op) {
                t.children.insert((par, op), id);
            }
            if on.parent.is_none() {
                if let Some(b) = base {
                    t.base_roots[b.0 as usize] = id;
                }
            }
        }
        (t, remap)
    }

    /// Renders a path for diagnostics/tables.
    pub fn display(&self, p: PathId, graph: &Graph) -> String {
        let mut s = match self.base_of(p) {
            Some(b) if self.is_synthetic(b) => {
                let (orig, via) = self.synth_origin[b.0 as usize - self.n_real];
                let info = graph.base(orig);
                format!("{}@call{}", info.display(), via)
            }
            Some(b) => {
                let info = graph.base(b);
                match &info.kind {
                    BaseKind::Func { func } => format!("fn:{}", graph.func(*func).name),
                    _ => info.display(),
                }
            }
            None => "ε".to_string(),
        };
        for op in self.ops_of(p) {
            match op {
                AccessOp::Field(f) => {
                    s.push('.');
                    s.push_str(graph.field_name(f));
                }
                AccessOp::Index => s.push_str("[*]"),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdg::graph::BaseInfo;

    fn table_with_bases(n: usize, single: &[bool]) -> (PathTable, Vec<BaseId>) {
        let mut g = Graph::new();
        let mut ids = Vec::new();
        for i in 0..n {
            ids.push(g.add_base(BaseInfo {
                kind: BaseKind::Global {
                    name: format!("g{i}"),
                },
                single_instance: single.get(i).copied().unwrap_or(true),
                cooper_older: None,
                site_expr: None,
            }));
        }
        (PathTable::for_graph(&g), ids)
    }

    #[test]
    fn interning_is_stable() {
        let (mut t, bs) = table_with_bases(1, &[true]);
        let root = t.base_root(bs[0]);
        let f = AccessOp::Field(FieldId(0));
        let a = t.child(root, f);
        let b = t.child(root, f);
        assert_eq!(a, b);
        let c = t.child(root, AccessOp::Index);
        assert_ne!(a, c);
    }

    #[test]
    fn dom_is_prefix() {
        let (mut t, bs) = table_with_bases(2, &[true, true]);
        let x = t.base_root(bs[0]);
        let y = t.base_root(bs[1]);
        let xf = t.child(x, AccessOp::Field(FieldId(0)));
        let xfg = t.child(xf, AccessOp::Field(FieldId(1)));
        assert!(t.dom(x, x));
        assert!(t.dom(x, xf));
        assert!(t.dom(x, xfg));
        assert!(t.dom(xf, xfg));
        assert!(!t.dom(xf, x));
        assert!(!t.dom(y, xf));
        assert!(!t.dom(xfg, xf));
    }

    #[test]
    fn strong_dom_requires_single_instance_and_no_index() {
        let (mut t, bs) = table_with_bases(2, &[true, false]);
        let strong = t.base_root(bs[0]);
        let weak = t.base_root(bs[1]);
        let strong_f = t.child(strong, AccessOp::Field(FieldId(0)));
        let strong_arr = t.child(strong, AccessOp::Index);
        assert!(t.strong_dom(strong, strong_f));
        assert!(t.strong_dom(strong_f, strong_f));
        assert!(!t.strong_dom(strong_arr, strong_arr));
        assert!(!t.strong_dom(weak, weak));
        // strong_dom implies dom.
        assert!(t.dom(strong_arr, strong_arr));
    }

    #[test]
    fn append_and_subtract_are_inverses() {
        let (mut t, bs) = table_with_bases(1, &[true]);
        let x = t.base_root(bs[0]);
        let off = {
            let f = t.child(PathTable::EMPTY, AccessOp::Field(FieldId(2)));
            t.child(f, AccessOp::Index)
        };
        let joined = t.append(x, off);
        assert_eq!(t.depth(joined), 2);
        let back = t.subtract(joined, x);
        assert_eq!(back, off);
        // Appending ε is the identity.
        assert_eq!(t.append(x, PathTable::EMPTY), x);
        assert_eq!(t.subtract(x, x), PathTable::EMPTY);
    }

    #[test]
    fn strip_first_peels_one_operator() {
        let (mut t, _) = table_with_bases(0, &[]);
        let f0 = AccessOp::Field(FieldId(0));
        let f1 = AccessOp::Field(FieldId(1));
        let p = {
            let a = t.child(PathTable::EMPTY, f0);
            t.child(a, f1)
        };
        let stripped = t.strip_first(p, f0).expect("matches");
        assert_eq!(t.ops_of(stripped), vec![f1]);
        assert_eq!(t.strip_first(p, f1), None);
        // ε extracts to itself (collapsed aggregates).
        assert_eq!(t.strip_first(PathTable::EMPTY, f0), Some(PathTable::EMPTY));
    }

    #[test]
    fn rebase_moves_operators() {
        let (mut t, bs) = table_with_bases(2, &[true, false]);
        let x = t.base_root(bs[0]);
        let xf = t.child(x, AccessOp::Field(FieldId(3)));
        let moved = t.rebase(xf, bs[1]);
        assert_eq!(t.base_of(moved), Some(bs[1]));
        assert_eq!(t.ops_of(moved), t.ops_of(xf));
    }

    #[test]
    fn synthetic_heap_clones() {
        let (mut t, bs) = table_with_bases(2, &[false, false]);
        let h = bs[0];
        let c1 = t.heap_clone(h, 7);
        let c2 = t.heap_clone(h, 7);
        let c3 = t.heap_clone(h, 9);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        assert!(t.is_synthetic(c1));
        assert!(!t.is_synthetic(h));
        assert_eq!(t.origin_base(c1), h);
        assert_eq!(t.origin_base(h), h);
        // Clones of clones are the identity (k = 1).
        assert_eq!(t.heap_clone(c1, 11), c1);
        // Clones are weakly updateable and collapse back to the origin.
        let root = t.base_root(c1);
        assert!(!t.strongly_updateable(root));
        let f = t.child(root, AccessOp::Field(FieldId(2)));
        let collapsed = t.collapse_synthetic(f);
        assert_eq!(t.base_of(collapsed), Some(h));
        assert_eq!(t.ops_of(collapsed), t.ops_of(f));
    }

    #[test]
    fn canonicalize_is_schedule_independent() {
        // Intern the same structural paths in two different orders;
        // canonical tables must agree numerically.
        let build = |flip: bool| {
            let (mut t, bs) = table_with_bases(2, &[true, false]);
            let f0 = AccessOp::Field(FieldId(0));
            let f1 = AccessOp::Field(FieldId(1));
            let mk = |t: &mut PathTable, b: BaseId, ops: &[AccessOp]| {
                let mut cur = t.base_root(b);
                for &op in ops {
                    cur = t.child(cur, op);
                }
                cur
            };
            let mut wanted = Vec::new();
            let specs: Vec<(BaseId, Vec<AccessOp>)> = vec![
                (bs[0], vec![f0]),
                (bs[1], vec![f1, AccessOp::Index]),
                (bs[0], vec![f0, f1]),
                (bs[1], vec![]),
            ];
            let order: Vec<usize> = if flip {
                (0..specs.len()).rev().collect()
            } else {
                (0..specs.len()).collect()
            };
            for i in order {
                let (b, ops) = &specs[i];
                wanted.push(mk(&mut t, *b, ops));
            }
            // A clone qualified by a call site, plus an unused path that
            // pruning must drop.
            let c = t.heap_clone(bs[1], 7);
            wanted.push(mk(&mut t, c, &[f0]));
            let _garbage = mk(&mut t, bs[0], &[AccessOp::Index, AccessOp::Index]);
            let used: crate::fxhash::HashSet<PathId> = wanted.iter().copied().collect();
            let (ct, remap) = t.canonicalize(&used);
            let mapped: Vec<PathId> = wanted.iter().map(|p| PathId(remap[p.0 as usize])).collect();
            (ct, mapped)
        };
        let (ta, ma) = build(false);
        let (tb, mb) = build(true);
        assert_eq!(ta.len(), tb.len());
        // The same structural path gets the same canonical id.
        let mut sa = ma.clone();
        let mut sb = mb.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb);
        for (&a, &b) in ma
            .iter()
            .zip(&mb[..4].iter().rev().copied().collect::<Vec<_>>())
        {
            // First four specs were interned in reversed order in `b`.
            assert_eq!(ta.ops_of(a), tb.ops_of(b));
        }
        // Structure survives: depth, bases, dom relations, synthetics.
        for &p in &ma {
            assert!(ta.depth(p) <= 2);
        }
        let synth = ma[4];
        let b = ta.base_of(synth).expect("based");
        assert!(ta.is_synthetic(b));
        // Garbage was pruned: ε + three roots (two real, one synthetic)
        // + the six used extensions; the two unused index paths are gone.
        assert_eq!(ta.len(), 9);
    }

    #[test]
    fn offsets_have_no_base() {
        let (mut t, bs) = table_with_bases(1, &[true]);
        assert!(t.is_offset(PathTable::EMPTY));
        let off = t.child(PathTable::EMPTY, AccessOp::Index);
        assert!(t.is_offset(off));
        assert!(!t.is_offset(t.base_root(bs[0])));
        assert!(!t.strongly_updateable(off));
    }
}
