//! # alias — points-to alias analyses from Ruf, PLDI 1995
//!
//! A from-scratch reproduction of the analyses in Erik Ruf,
//! *Context-Insensitive Alias Analysis Reconsidered* (PLDI 1995): a
//! simple, efficient **context-insensitive** (CI) points-to analysis over
//! a Value Dependence Graph, and a **maximally context-sensitive** (CS)
//! version of the same analysis built on assumption sets, together with
//! the CI-driven optimizations (§4.2) that make the CS analysis feasible.
//!
//! The paper's empirical claim — that context-sensitivity buys little to
//! no precision at indirect memory references on pointer-intensive C
//! programs — is reproducible with
//! [`stats::compare_at_indirect_refs`] over the `suite` crate's
//! benchmark programs.
//!
//! ## Quickstart
//!
//! ```
//! use alias::Analysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Analysis::of_source(
//!     "int g; int main(void) { int *p; p = &g; return *p; }",
//! )?;
//! // The sole indirect read `*p` references exactly one location: g.
//! let (node, _) = a.graph.indirect_mem_ops()[0];
//! let refs = a.ci.loc_referents(&a.graph, node);
//! assert_eq!(refs.len(), 1);
//! assert_eq!(a.ci.paths.display(refs[0], &a.graph), "g");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod callstring;
pub mod ci;
pub mod cs;
pub mod defuse;
pub mod demand;
pub mod fingerprint;
pub mod fxhash;
pub mod modref;
pub mod pairset;
pub mod path;
pub mod solver;
pub mod stats;
pub mod steensgaard;
pub mod summary;
pub mod weihl;

pub use ci::{analyze_ci, CiConfig, CiResult, Fault, HeapNaming, WorklistOrder};
pub use cs::{analyze_cs, cs_subset_of_ci, CsConfig, CsResult, StepLimitExceeded};
pub use demand::{DemandConfig, DemandSolution, DemandSolver, DemandState, DemandStats};
pub use fingerprint::{GraphIndex, StablePair, StablePath};
pub use pairset::{PairId, PairInterner, PairSet, Propagation};
pub use path::{AccessOp, Pair, PathId, PathTable};
pub use solver::{ResumeOutcome, Solution, SolutionBox, Solver, SolverKind, SolverSpec};
pub use summary::{FuncFacts, FunctionSummary, ResumeStats, SolverSummaries, Vocab};

use std::fmt;
use vdg::graph::Graph;

/// Everything that can go wrong between source text and analysis results.
#[derive(Debug)]
pub enum AnalysisError {
    /// Lexing, parsing, or semantic errors.
    Frontend(cfront::FrontendError),
    /// Constructs outside the modeled subset discovered during lowering.
    Lowering(cfront::Diagnostic),
    /// The CS analysis exceeded its step budget.
    StepLimit(StepLimitExceeded),
    /// An underlying error annotated with *where* it happened — which
    /// solver, on which benchmark or fuzz seed — so engine and fuzz
    /// reports print actionable one-liners instead of a bare cause.
    Context {
        /// [`solver::Solver::name`] of the failing solver.
        solver: String,
        /// The benchmark name or fuzz-seed label being analyzed.
        job: String,
        /// The underlying failure.
        source: Box<AnalysisError>,
    },
}

impl AnalysisError {
    /// Wraps the error with the solver and benchmark/seed it came from.
    /// Layering a second context replaces the first instead of nesting.
    #[must_use]
    pub fn in_context(self, solver: &str, job: &str) -> AnalysisError {
        let source = match self {
            AnalysisError::Context { source, .. } => source,
            other => Box::new(other),
        };
        AnalysisError::Context {
            solver: solver.to_string(),
            job: job.to_string(),
            source,
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Frontend(e) => write!(f, "frontend: {e}"),
            AnalysisError::Lowering(e) => write!(f, "lowering: {e}"),
            AnalysisError::StepLimit(e) => write!(f, "{e}"),
            AnalysisError::Context {
                solver,
                job,
                source,
            } => write!(f, "{solver} on {job}: {source}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Context { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<cfront::FrontendError> for AnalysisError {
    fn from(e: cfront::FrontendError) -> Self {
        AnalysisError::Frontend(e)
    }
}

impl From<cfront::Diagnostic> for AnalysisError {
    fn from(e: cfront::Diagnostic) -> Self {
        AnalysisError::Lowering(e)
    }
}

impl From<StepLimitExceeded> for AnalysisError {
    fn from(e: StepLimitExceeded) -> Self {
        AnalysisError::StepLimit(e)
    }
}

/// A convenience bundle: compiled program, VDG, and the CI result.
///
/// Use [`Analysis::run_cs`] to additionally run the context-sensitive
/// analysis.
#[derive(Debug)]
pub struct Analysis {
    /// The checked program.
    pub program: cfront::Program,
    /// Its Value Dependence Graph.
    pub graph: Graph,
    /// The context-insensitive solution.
    pub ci: CiResult,
}

impl Analysis {
    /// Starts a configurable pipeline over `src`; call
    /// [`AnalysisBuilder::run`] to execute it.
    pub fn builder(src: &str) -> AnalysisBuilder<'_> {
        AnalysisBuilder {
            src,
            build: vdg::BuildOptions::default(),
            ci: CiConfig::default(),
        }
    }

    /// Compiles, lowers, and runs the CI analysis with default options.
    ///
    /// Thin legacy wrapper over [`Analysis::builder`]; prefer the
    /// builder when any option differs from the default.
    ///
    /// # Errors
    ///
    /// Returns frontend or lowering diagnostics.
    pub fn of_source(src: &str) -> Result<Analysis, AnalysisError> {
        Self::builder(src).run()
    }

    /// Runs the context-sensitive analysis on top of this CI result.
    ///
    /// # Errors
    ///
    /// Returns [`StepLimitExceeded`] if `cfg.max_steps` is exhausted.
    pub fn run_cs(&self, cfg: &CsConfig) -> Result<CsResult, StepLimitExceeded> {
        analyze_cs(&self.graph, &self.ci, cfg)
    }
}

/// Options for the source → [`Analysis`] pipeline.
///
/// ```
/// use alias::{Analysis, CiConfig, WorklistOrder};
///
/// # fn main() -> Result<(), alias::AnalysisError> {
/// let a = Analysis::builder("int g; int main(void) { int *p; p = &g; return *p; }")
///     .ci_config(CiConfig {
///         order: WorklistOrder::Lifo,
///         ..CiConfig::default()
///     })
///     .run()?;
/// assert!(a.ci.total_pairs() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisBuilder<'a> {
    src: &'a str,
    build: vdg::BuildOptions,
    ci: CiConfig,
}

impl AnalysisBuilder<'_> {
    /// Sets the VDG lowering options.
    pub fn build_options(mut self, build: vdg::BuildOptions) -> Self {
        self.build = build;
        self
    }

    /// Sets the context-insensitive solver options.
    pub fn ci_config(mut self, ci: CiConfig) -> Self {
        self.ci = ci;
        self
    }

    /// Compiles, lowers, and runs the CI analysis.
    ///
    /// # Errors
    ///
    /// Returns frontend or lowering diagnostics.
    pub fn run(self) -> Result<Analysis, AnalysisError> {
        let program = cfront::compile(self.src)?;
        let graph = vdg::lower(&program, &self.build)?;
        let ci = analyze_ci(&graph, &self.ci);
        Ok(Analysis { program, graph, ci })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_pipeline_end_to_end() {
        let a = Analysis::of_source("int g; int main(void) { int *p; p = &g; return *p; }")
            .expect("pipeline");
        let cs = a.run_cs(&CsConfig::default()).expect("cs");
        assert!(cs_subset_of_ci(&a.graph, &a.ci, &cs));
        assert!(stats::compare_at_indirect_refs(&a.graph, &a.ci, &cs).is_empty());
    }

    #[test]
    fn analysis_reports_frontend_errors() {
        assert!(matches!(
            Analysis::of_source("int main(void) { return x; }"),
            Err(AnalysisError::Frontend(_))
        ));
    }
}
